//! Tenant identity for multi-tenant simulations.
//!
//! A memory-semantic CXL-SSD is pooled capacity: several applications share
//! one device and contend for its DRAM cache, write log and flash channels.
//! The simulator expresses that by assigning every application thread to a
//! [`TenantId`]; a [`TenantMap`] records the thread → tenant partition a
//! trace source describes, and the engine attributes every access, squash
//! and latency sample to the issuing thread's tenant.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The identity of one tenant (co-located application) of the simulated
/// device. Tenant ids are dense and zero-based; a single-tenant run uses
/// [`TenantId::ZERO`] for every thread.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant every thread of a single-tenant run belongs to.
    pub const ZERO: TenantId = TenantId(0);

    /// The dense zero-based index of this tenant.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The thread → tenant partition of a set of per-thread access streams.
///
/// Built by asking a trace source which tenant each of its streams belongs
/// to; the engine reads it once at startup and uses it at every attribution
/// point. Tenant ids need not be contiguous in the map, but
/// [`tenant_count`](TenantMap::tenant_count) reports `max id + 1` so dense
/// per-tenant counter vectors can be indexed directly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantMap {
    tenants: Vec<TenantId>,
}

impl TenantMap {
    /// A map assigning every one of `threads` streams to [`TenantId::ZERO`]
    /// (the single-tenant default).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn single(threads: u32) -> Self {
        Self::from_fn(threads, |_| TenantId::ZERO)
    }

    /// Builds the map by asking `f` for each thread's tenant.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn from_fn(threads: u32, f: impl FnMut(u32) -> TenantId) -> Self {
        assert!(threads > 0, "a tenant map needs at least one thread");
        TenantMap {
            tenants: (0..threads).map(f).collect(),
        }
    }

    /// Number of threads covered by the map.
    pub fn threads(&self) -> u32 {
        self.tenants.len() as u32
    }

    /// The tenant of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn tenant_of(&self, thread: u32) -> TenantId {
        self.tenants[thread as usize]
    }

    /// Number of tenants the map can index (`max tenant id + 1`).
    pub fn tenant_count(&self) -> usize {
        self.tenants
            .iter()
            .map(|t| t.index() + 1)
            .max()
            .unwrap_or(1)
    }

    /// Number of threads assigned to `tenant`.
    pub fn threads_of(&self, tenant: TenantId) -> u32 {
        self.tenants.iter().filter(|&&t| t == tenant).count() as u32
    }

    /// Iterates `(thread, tenant)` pairs in thread order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, TenantId)> + '_ {
        self.tenants
            .iter()
            .enumerate()
            .map(|(t, &id)| (t as u32, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_display_and_index() {
        assert_eq!(TenantId(3).to_string(), "t3");
        assert_eq!(TenantId::ZERO.index(), 0);
        assert_eq!(TenantId::default(), TenantId::ZERO);
    }

    #[test]
    fn single_maps_every_thread_to_tenant_zero() {
        let m = TenantMap::single(4);
        assert_eq!(m.threads(), 4);
        assert_eq!(m.tenant_count(), 1);
        for t in 0..4 {
            assert_eq!(m.tenant_of(t), TenantId::ZERO);
        }
        assert_eq!(m.threads_of(TenantId::ZERO), 4);
    }

    #[test]
    fn from_fn_partitions_threads() {
        // Threads 0–1 → tenant 0, threads 2–4 → tenant 1.
        let m = TenantMap::from_fn(5, |t| TenantId(u32::from(t >= 2)));
        assert_eq!(m.tenant_count(), 2);
        assert_eq!(m.threads_of(TenantId(0)), 2);
        assert_eq!(m.threads_of(TenantId(1)), 3);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs[0], (0, TenantId(0)));
        assert_eq!(pairs[4], (4, TenantId(1)));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = TenantMap::single(0);
    }

    #[test]
    fn tenant_id_serialises_transparently() {
        let json = serde_json::to_string(&TenantId(7)).unwrap();
        assert_eq!(json, "7");
        let back: TenantId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TenantId(7));
    }
}
