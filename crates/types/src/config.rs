//! Simulator configuration.
//!
//! [`SimConfig`] mirrors Table II of the SkyByte paper (the default
//! configuration of the CXL-SSD simulator) and exposes the same knobs as the
//! original artifact's configuration files:
//!
//! | artifact knob | field |
//! |---|---|
//! | `promotion_enable` | [`SimConfig::promotion_enable`] |
//! | `write_log_enable` | [`SimConfig::write_log_enable`] |
//! | `device_triggered_ctx_swt` | [`SimConfig::device_triggered_ctx_swt`] |
//! | `cs_threshold` | [`SimConfig::cs_threshold`] |
//! | `ssd_cache_size_byte` | [`SsdDramConfig::data_cache_bytes`] |
//! | `ssd_cache_way` | [`SsdDramConfig::data_cache_ways`] |
//! | `host_dram_size_byte` | [`HostDramConfig::promotion_capacity_bytes`] |
//! | `t_policy` | [`SimConfig::sched_policy`] |

use crate::error::ConfigError;
use crate::policy::PolicyConfig;
use crate::time::{Freq, Nanos};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one kibibyte in bytes.
pub const KIB: u64 = 1 << 10;
/// Size of one mebibyte in bytes.
pub const MIB: u64 = 1 << 20;
/// Size of one gibibyte in bytes.
pub const GIB: u64 = 1 << 30;

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

/// Configuration of one level of the host cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Number of miss-status holding registers.
    pub mshrs: u32,
    /// Hit latency contributed by this level.
    pub hit_latency: Nanos,
}

impl CacheLevelConfig {
    /// Number of 64-byte cachelines this level can hold.
    pub fn capacity_lines(&self) -> u64 {
        self.size_bytes / crate::addr::CACHELINE_SIZE as u64
    }

    /// Number of sets for the given associativity.
    pub fn sets(&self) -> u64 {
        (self.capacity_lines() / self.ways as u64).max(1)
    }
}

/// Configuration of the data TLB shared by the simulated cores (modelled as
/// fully associative with LRU replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of translation entries (the paper's configuration models a
    /// 1536-entry second-level dTLB).
    pub entries: u32,
    /// Page-walk penalty charged on every TLB miss.
    pub miss_latency: Nanos,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 1536,
            miss_latency: Nanos::new(30),
        }
    }
}

/// Host CPU configuration (Table II, "CPU" block).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of physical cores.
    pub cores: u32,
    /// Core clock frequency.
    pub freq: Freq,
    /// Reorder-buffer entries per core; bounds how much latency the core can
    /// hide with out-of-order execution.
    pub rob_entries: u32,
    /// Per-core L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Per-core L2 cache.
    pub l2: CacheLevelConfig,
    /// Shared last-level cache.
    pub llc: CacheLevelConfig,
    /// Data TLB backing the page-table walks of off-chip accesses.
    pub tlb: TlbConfig,
    /// Fraction of a thread's issued instructions that are memory operations
    /// reaching the L1 (used to convert between instruction counts and
    /// memory-access counts when deriving MLP from the ROB size).
    pub mem_op_fraction: f64,
    /// Nominal instructions per cycle for the non-memory portion of the
    /// workload.
    pub base_ipc: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 8,
            freq: Freq::from_ghz(4.0),
            rob_entries: 256,
            l1d: CacheLevelConfig {
                size_bytes: 32 * KIB,
                ways: 8,
                mshrs: 8,
                hit_latency: Nanos::new(1),
            },
            l2: CacheLevelConfig {
                size_bytes: 512 * KIB,
                ways: 32,
                mshrs: 128,
                hit_latency: Nanos::new(4),
            },
            llc: CacheLevelConfig {
                size_bytes: 16 * MIB,
                ways: 16,
                mshrs: 1024,
                hit_latency: Nanos::new(12),
            },
            tlb: TlbConfig::default(),
            mem_op_fraction: 0.3,
            base_ipc: 2.0,
        }
    }
}

// ---------------------------------------------------------------------------
// Host DRAM
// ---------------------------------------------------------------------------

/// DRAM timing model (used both for host DDR5 and SSD-internal LPDDR4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTimingConfig {
    /// Average access latency for one cacheline.
    pub access_latency: Nanos,
    /// Number of channels (bandwidth scaling).
    pub channels: u32,
    /// Peak bandwidth per channel in bytes per second.
    pub channel_bandwidth_bps: u64,
}

impl DramTimingConfig {
    /// DDR5-4800, 8 channels (host memory in Table II). ~70 ns loaded latency.
    pub fn ddr5_host() -> Self {
        DramTimingConfig {
            access_latency: Nanos::new(70),
            channels: 8,
            channel_bandwidth_bps: 32 * GIB,
        }
    }

    /// LPDDR4-3200, 2 channels (SSD-internal DRAM in Table II).
    pub fn lpddr4_ssd() -> Self {
        DramTimingConfig {
            access_latency: Nanos::new(90),
            channels: 2,
            channel_bandwidth_bps: 12 * GIB,
        }
    }

    /// Aggregate peak bandwidth across all channels.
    pub fn total_bandwidth_bps(&self) -> u64 {
        self.channel_bandwidth_bps * self.channels as u64
    }
}

/// Host DRAM configuration, including the budget for pages promoted from the
/// CXL-SSD (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostDramConfig {
    /// Timing of the host DDR5 memory.
    pub timing: DramTimingConfig,
    /// Maximum total size of pages promoted from the SSD to host DRAM
    /// (2 GiB in Table II). Artifact knob `host_dram_size_byte`.
    pub promotion_capacity_bytes: u64,
}

impl Default for HostDramConfig {
    fn default() -> Self {
        HostDramConfig {
            timing: DramTimingConfig::ddr5_host(),
            promotion_capacity_bytes: 2 * GIB,
        }
    }
}

// ---------------------------------------------------------------------------
// Flash / SSD
// ---------------------------------------------------------------------------

/// NAND flash device families evaluated in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NandKind {
    /// Ultra-low-latency flash (Samsung Z-NAND): tR 3 µs, tProg 100 µs, tBERS 1 ms.
    Ull,
    /// Ultra-low-latency flash (Toshiba XL-Flash): tR 4 µs, tProg 75 µs, tBERS 850 µs.
    Ull2,
    /// Single-level-cell flash: tR 25 µs, tProg 200 µs, tBERS 1.5 ms.
    Slc,
    /// Multi-level-cell flash: tR 50 µs, tProg 600 µs, tBERS 3 ms.
    Mlc,
}

impl NandKind {
    /// All flash families in the order of Table IV.
    pub const ALL: [NandKind; 4] = [NandKind::Ull, NandKind::Ull2, NandKind::Slc, NandKind::Mlc];
}

impl fmt::Display for NandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NandKind::Ull => "ULL",
            NandKind::Ull2 => "ULL2",
            NandKind::Slc => "SLC",
            NandKind::Mlc => "MLC",
        };
        f.write_str(s)
    }
}

/// NAND flash timing parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashTimingConfig {
    /// Page read time (tR).
    pub read_latency: Nanos,
    /// Page program time (tProg).
    pub program_latency: Nanos,
    /// Block erase time (tBERS).
    pub erase_latency: Nanos,
}

impl FlashTimingConfig {
    /// Timing for the given NAND family.
    pub fn for_kind(kind: NandKind) -> Self {
        match kind {
            NandKind::Ull => FlashTimingConfig {
                read_latency: Nanos::from_micros(3),
                program_latency: Nanos::from_micros(100),
                erase_latency: Nanos::from_micros(1000),
            },
            NandKind::Ull2 => FlashTimingConfig {
                read_latency: Nanos::from_micros(4),
                program_latency: Nanos::from_micros(75),
                erase_latency: Nanos::from_micros(850),
            },
            NandKind::Slc => FlashTimingConfig {
                read_latency: Nanos::from_micros(25),
                program_latency: Nanos::from_micros(200),
                erase_latency: Nanos::from_micros(1500),
            },
            NandKind::Mlc => FlashTimingConfig {
                read_latency: Nanos::from_micros(50),
                program_latency: Nanos::from_micros(600),
                erase_latency: Nanos::from_micros(3000),
            },
        }
    }
}

impl Default for FlashTimingConfig {
    /// ULL (Z-NAND) timing, the default of Table II.
    fn default() -> Self {
        FlashTimingConfig::for_kind(NandKind::Ull)
    }
}

/// Physical organisation of the flash array (Table II, "Organization").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdGeometry {
    /// Number of flash channels.
    pub channels: u32,
    /// Chips per channel.
    pub chips_per_channel: u32,
    /// Dies per chip.
    pub dies_per_chip: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size_bytes: u32,
}

impl SsdGeometry {
    /// Total number of physical flash pages.
    pub fn total_pages(&self) -> u64 {
        self.channels as u64
            * self.chips_per_channel as u64
            * self.dies_per_chip as u64
            * self.planes_per_die as u64
            * self.blocks_per_plane as u64
            * self.pages_per_block as u64
    }

    /// Total number of erase blocks.
    pub fn total_blocks(&self) -> u64 {
        self.channels as u64
            * self.chips_per_channel as u64
            * self.dies_per_chip as u64
            * self.planes_per_die as u64
            * self.blocks_per_plane as u64
    }

    /// Total raw capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * self.page_size_bytes as u64
    }

    /// Number of planes ("LUNs") that can operate independently.
    pub fn total_planes(&self) -> u64 {
        self.total_blocks() / self.blocks_per_plane as u64
    }
}

impl Default for SsdGeometry {
    /// 16 channels × 8 chips × 8 dies × 1 plane × 128 blocks × 256 pages ×
    /// 4 KiB = 128 GiB (Table II).
    fn default() -> Self {
        SsdGeometry {
            channels: 16,
            chips_per_channel: 8,
            dies_per_chip: 8,
            planes_per_die: 1,
            blocks_per_plane: 128,
            pages_per_block: 256,
            page_size_bytes: 4096,
        }
    }
}

/// Configuration of the SSD-internal DRAM (write log + data cache).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdDramConfig {
    /// DRAM timing of the SSD-internal memory.
    pub timing: DramTimingConfig,
    /// Size of the page-granular read-write data cache, in bytes
    /// (448 MiB by default: 512 MiB SSD DRAM minus the 64 MiB write log).
    pub data_cache_bytes: u64,
    /// Associativity of the data cache. Artifact knob `ssd_cache_way`.
    pub data_cache_ways: u32,
    /// Size of the cacheline-granular write log, in bytes (64 MiB default).
    pub write_log_bytes: u64,
    /// Number of MSHRs in the SSD controller tracking in-flight flash reads.
    pub mshrs: u32,
    /// Average lookup latency of the write-log index (72 ns measured on the
    /// paper's FPGA prototype).
    pub write_log_index_latency: Nanos,
    /// Average lookup latency of the data-cache index (49 ns measured on the
    /// paper's FPGA prototype).
    pub data_cache_index_latency: Nanos,
    /// Load factor above which a second-level hash table of the write-log
    /// index doubles in size (0.75 default).
    pub index_resize_load_factor: f64,
}

impl SsdDramConfig {
    /// Total SSD DRAM devoted to caching (write log + data cache).
    pub fn total_bytes(&self) -> u64 {
        self.data_cache_bytes + self.write_log_bytes
    }
}

impl Default for SsdDramConfig {
    fn default() -> Self {
        SsdDramConfig {
            timing: DramTimingConfig::lpddr4_ssd(),
            data_cache_bytes: 448 * MIB,
            data_cache_ways: 16,
            write_log_bytes: 64 * MIB,
            mshrs: 2048,
            write_log_index_latency: Nanos::new(72),
            data_cache_index_latency: Nanos::new(49),
            index_resize_load_factor: 0.75,
        }
    }
}

/// Full SSD configuration: interface, geometry, timing, DRAM and GC policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Flash array organisation.
    pub geometry: SsdGeometry,
    /// NAND family used (determines default `flash` timing).
    pub nand_kind: NandKind,
    /// NAND timing parameters.
    pub flash: FlashTimingConfig,
    /// SSD-internal DRAM configuration.
    pub dram: SsdDramConfig,
    /// CXL.mem protocol latency added to every host↔SSD transaction
    /// (40 ns in Table II).
    pub cxl_protocol_latency: Nanos,
    /// Link bandwidth of the CXL/PCIe interface in bytes per second
    /// (PCIe 5.0 ×4 = 16 GB/s).
    pub link_bandwidth_bps: u64,
    /// Fraction of valid (mapped) pages above which garbage collection starts
    /// (0.80 in Table II).
    pub gc_threshold: f64,
    /// Number of blocks reclaimed by one GC campaign (19660 in Table II,
    /// scaled to the simulated geometry by the FTL).
    pub gc_blocks_per_campaign: u32,
    /// Over-provisioning factor: fraction of raw capacity hidden from the
    /// logical space so GC always has spare blocks.
    pub overprovisioning: f64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            geometry: SsdGeometry::default(),
            nand_kind: NandKind::Ull,
            flash: FlashTimingConfig::default(),
            dram: SsdDramConfig::default(),
            cxl_protocol_latency: Nanos::new(40),
            link_bandwidth_bps: 16 * GIB,
            gc_threshold: 0.80,
            gc_blocks_per_campaign: 19660,
            overprovisioning: 0.07,
        }
    }
}

impl SsdConfig {
    /// Replaces the NAND family and updates the timing accordingly.
    pub fn with_nand(mut self, kind: NandKind) -> Self {
        self.nand_kind = kind;
        self.flash = FlashTimingConfig::for_kind(kind);
        self
    }
}

// ---------------------------------------------------------------------------
// OS: scheduling and migration
// ---------------------------------------------------------------------------

/// Thread scheduling policy used by the OS when a context switch is triggered
/// (artifact knob `t_policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Threads take turns in round-robin order.
    RoundRobin,
    /// A runnable thread is chosen uniformly at random.
    Random,
    /// Completely Fair Scheduler: the runnable thread with the smallest
    /// received execution time (vruntime) runs next.
    Cfs,
}

impl Default for SchedPolicy {
    /// CFS, the default policy of SkyByte (§III-A).
    fn default() -> Self {
        SchedPolicy::Cfs
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchedPolicy::RoundRobin => "RR",
            SchedPolicy::Random => "Random",
            SchedPolicy::Cfs => "CFS",
        };
        f.write_str(s)
    }
}

/// Page-migration (promotion) policy between the SSD and host DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationPolicyKind {
    /// SkyByte's adaptive per-page access-count tracking in the SSD controller
    /// (§III-C).
    Adaptive,
    /// TPP-style OS-level periodic sampling of page hotness (§VI-H).
    Tpp,
    /// AstriFlash-style hardware-managed set-associative host-DRAM page cache
    /// with on-demand fills (§VI-H).
    AstriFlash,
    /// No migration at all.
    Disabled,
}

impl fmt::Display for MigrationPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MigrationPolicyKind::Adaptive => "adaptive",
            MigrationPolicyKind::Tpp => "tpp",
            MigrationPolicyKind::AstriFlash => "astriflash",
            MigrationPolicyKind::Disabled => "disabled",
        };
        f.write_str(s)
    }
}

/// Configuration of the adaptive page-migration mechanism (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Which policy selects pages to promote.
    pub policy: MigrationPolicyKind,
    /// Access count above which a page becomes a promotion candidate
    /// (adaptive policy).
    pub hotness_threshold: u32,
    /// Number of entries in the Promotion Look-aside Buffer in the host
    /// bridge (64 in the paper).
    pub plb_entries: u32,
    /// Cost of copying one 4 KiB page between SSD DRAM and host DRAM over the
    /// CXL link, including interrupt and PTE/TLB update overheads.
    pub page_copy_latency: Nanos,
    /// Sampling period of the TPP-style policy.
    pub tpp_sample_period: Nanos,
    /// Number of promotions allowed per sampling period for the TPP policy.
    pub tpp_promotions_per_period: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            policy: MigrationPolicyKind::Adaptive,
            hotness_threshold: 32,
            plb_entries: 64,
            page_copy_latency: Nanos::from_micros(2),
            tpp_sample_period: Nanos::from_millis(1),
            tpp_promotions_per_period: 64,
        }
    }
}

// ---------------------------------------------------------------------------
// Design variants
// ---------------------------------------------------------------------------

/// The design points compared in the paper's evaluation (§VI-A and §VI-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariantKind {
    /// State-of-the-art baseline CXL-SSD (page-granular DRAM cache only).
    BaseCssd,
    /// Baseline + coordinated context switch.
    SkyByteC,
    /// Baseline + adaptive page migration.
    SkyByteP,
    /// Baseline + CXL-aware SSD DRAM management (write log + data cache).
    SkyByteW,
    /// Context switch + page migration.
    SkyByteCP,
    /// Write log + page migration.
    SkyByteWP,
    /// Complete SkyByte: write log + page migration + context switch.
    SkyByteFull,
    /// Ideal case: unlimited host DRAM, no SSD accesses.
    DramOnly,
    /// Context switch + TPP software page migration (§VI-H).
    SkyByteCT,
    /// Write log + context switch + TPP software page migration (§VI-H).
    SkyByteWCT,
    /// AstriFlash applied to the baseline CXL-SSD (§VI-H).
    AstriFlashCxl,
}

impl VariantKind {
    /// Every design variant, in declaration order. Keep in sync when adding
    /// a variant — `variant_from_name`-style lookups iterate this list.
    pub const ALL: [VariantKind; 11] = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteC,
        VariantKind::SkyByteP,
        VariantKind::SkyByteW,
        VariantKind::SkyByteCP,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
        VariantKind::DramOnly,
        VariantKind::SkyByteCT,
        VariantKind::SkyByteWCT,
        VariantKind::AstriFlashCxl,
    ];

    /// The variants of the main ablation (Figure 14), in plot order.
    pub const MAIN_ABLATION: [VariantKind; 8] = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteP,
        VariantKind::SkyByteC,
        VariantKind::SkyByteW,
        VariantKind::SkyByteCP,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
        VariantKind::DramOnly,
    ];

    /// The variants of the migration-mechanism comparison (Figure 23).
    pub const MIGRATION_COMPARISON: [VariantKind; 6] = [
        VariantKind::SkyByteC,
        VariantKind::AstriFlashCxl,
        VariantKind::SkyByteCT,
        VariantKind::SkyByteCP,
        VariantKind::SkyByteWCT,
        VariantKind::SkyByteFull,
    ];

    /// Whether this variant enables the cacheline-granular write log.
    pub fn write_log(self) -> bool {
        matches!(
            self,
            VariantKind::SkyByteW
                | VariantKind::SkyByteWP
                | VariantKind::SkyByteFull
                | VariantKind::SkyByteWCT
        )
    }

    /// Whether this variant enables device-triggered context switches.
    pub fn context_switch(self) -> bool {
        matches!(
            self,
            VariantKind::SkyByteC
                | VariantKind::SkyByteCP
                | VariantKind::SkyByteFull
                | VariantKind::SkyByteCT
                | VariantKind::SkyByteWCT
                | VariantKind::AstriFlashCxl
        )
    }

    /// The page-migration policy used by this variant.
    pub fn migration_policy(self) -> MigrationPolicyKind {
        match self {
            VariantKind::SkyByteP
            | VariantKind::SkyByteCP
            | VariantKind::SkyByteWP
            | VariantKind::SkyByteFull => MigrationPolicyKind::Adaptive,
            VariantKind::SkyByteCT | VariantKind::SkyByteWCT => MigrationPolicyKind::Tpp,
            VariantKind::AstriFlashCxl => MigrationPolicyKind::AstriFlash,
            VariantKind::BaseCssd
            | VariantKind::SkyByteC
            | VariantKind::SkyByteW
            | VariantKind::DramOnly => MigrationPolicyKind::Disabled,
        }
    }

    /// Whether the workload data lives entirely in host DRAM (ideal case).
    pub fn dram_only(self) -> bool {
        matches!(self, VariantKind::DramOnly)
    }
}

impl fmt::Display for VariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VariantKind::BaseCssd => "Base-CSSD",
            VariantKind::SkyByteC => "SkyByte-C",
            VariantKind::SkyByteP => "SkyByte-P",
            VariantKind::SkyByteW => "SkyByte-W",
            VariantKind::SkyByteCP => "SkyByte-CP",
            VariantKind::SkyByteWP => "SkyByte-WP",
            VariantKind::SkyByteFull => "SkyByte-Full",
            VariantKind::DramOnly => "DRAM-Only",
            VariantKind::SkyByteCT => "SkyByte-CT",
            VariantKind::SkyByteWCT => "SkyByte-WCT",
            VariantKind::AstriFlashCxl => "AstriFlash-CXL",
        };
        f.write_str(s)
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Telemetry capture configuration: a periodic simulated-time metrics
/// sampler plus a span/instant timeline (Chrome trace-event JSON).
///
/// Telemetry is strictly observe-only: enabling it changes no simulated
/// outcome, and its [`Debug`] rendering is deliberately field-free so run
/// fingerprints (which are built from a config's `Debug` output) never
/// split a memoisation table on telemetry settings.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch. Off by default; when off, the engine allocates no
    /// telemetry state and the hot path pays a single `Option` check.
    pub enabled: bool,
    /// Simulated-time cadence of the periodic metrics sampler (10 µs by
    /// default). Must be nonzero when telemetry is enabled.
    pub sample_interval: Nanos,
    /// Capture span/instant events for the Chrome trace-event timeline in
    /// addition to the periodic metric samples.
    pub timeline: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_interval: Nanos::from_micros(10),
            timeline: true,
        }
    }
}

impl fmt::Debug for TelemetryConfig {
    /// Deliberately constant: the runner memoises runs keyed on the
    /// config's `Debug` rendering, and telemetry is observe-only, so two
    /// configs differing only in telemetry must share one fingerprint.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TelemetryConfig(observe-only)")
    }
}

// ---------------------------------------------------------------------------
// Top-level configuration
// ---------------------------------------------------------------------------

/// Complete simulator configuration (Table II defaults).
///
/// Use [`SimConfig::default`] for the paper's configuration and the artifact
/// knob setters (`with_*`) to customise experiments; call
/// [`SimConfig::validate`] before constructing a simulator.
///
/// # Example
///
/// ```
/// use skybyte_types::prelude::*;
///
/// let cfg = SimConfig::default()
///     .with_variant(VariantKind::SkyByteFull)
///     .with_threads(24)
///     .with_cs_threshold(Nanos::from_micros(2));
/// cfg.validate().unwrap();
/// assert!(cfg.write_log_enable);
/// assert!(cfg.device_triggered_ctx_swt);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Host CPU configuration.
    pub cpu: CpuConfig,
    /// Host DRAM configuration.
    pub host_dram: HostDramConfig,
    /// CXL-SSD configuration.
    pub ssd: SsdConfig,
    /// Page migration configuration.
    pub migration: MigrationConfig,
    /// Thread scheduling policy (artifact knob `t_policy`).
    pub sched_policy: SchedPolicy,
    /// Number of application threads to run.
    pub threads: u32,
    /// Enable adaptive page promotion (artifact knob `promotion_enable`).
    pub promotion_enable: bool,
    /// Enable the cacheline-granular write log (artifact knob
    /// `write_log_enable`).
    pub write_log_enable: bool,
    /// Enable SSD-triggered coordinated context switches (artifact knob
    /// `device_triggered_ctx_swt`).
    pub device_triggered_ctx_swt: bool,
    /// Context-switch trigger threshold (artifact knob `cs_threshold`,
    /// 2 µs in Table II).
    pub cs_threshold: Nanos,
    /// Cost of one context switch on the host CPU (2 µs in Table II).
    pub context_switch_overhead: Nanos,
    /// Place all data in host DRAM regardless of footprint (the DRAM-Only
    /// ideal configuration; artifact flag `-d`).
    pub infinite_host_dram: bool,
    /// The named design variant this configuration corresponds to (for
    /// reporting); the boolean knobs above are authoritative.
    pub variant: VariantKind,
    /// Pluggable policy selection for the seams lifted behind traits
    /// (data-cache eviction/admission, hotness tracking, tenant scheduling).
    /// The default reproduces the pre-policy-layer behaviour exactly.
    #[serde(default)]
    pub policy: PolicyConfig,
    /// Observe-only telemetry capture (periodic metric sampling and the
    /// Chrome trace-event timeline). Excluded from run fingerprints via its
    /// constant `Debug` rendering.
    #[serde(default)]
    pub telemetry: TelemetryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cpu: CpuConfig::default(),
            host_dram: HostDramConfig::default(),
            ssd: SsdConfig::default(),
            migration: MigrationConfig::default(),
            sched_policy: SchedPolicy::Cfs,
            threads: 8,
            promotion_enable: false,
            write_log_enable: false,
            device_triggered_ctx_swt: false,
            cs_threshold: Nanos::from_micros(2),
            context_switch_overhead: Nanos::from_micros(2),
            infinite_host_dram: false,
            variant: VariantKind::BaseCssd,
            policy: PolicyConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl SimConfig {
    /// Configures all knobs to match one of the paper's named design variants.
    ///
    /// Context-switch-enabled variants default to 24 threads on 8 cores and
    /// the others to 8 threads, following §VI-A.
    pub fn with_variant(mut self, variant: VariantKind) -> Self {
        self.variant = variant;
        self.write_log_enable = variant.write_log();
        self.device_triggered_ctx_swt = variant.context_switch();
        self.migration.policy = variant.migration_policy();
        self.promotion_enable = variant.migration_policy() != MigrationPolicyKind::Disabled;
        self.infinite_host_dram = variant.dram_only();
        self.threads = if variant.context_switch() {
            self.cpu.cores * 3
        } else {
            self.cpu.cores
        };
        self
    }

    /// Sets the number of application threads.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the context-switch trigger threshold (artifact knob `cs_threshold`).
    pub fn with_cs_threshold(mut self, threshold: Nanos) -> Self {
        self.cs_threshold = threshold;
        self
    }

    /// Sets the thread scheduling policy (artifact knob `t_policy`).
    pub fn with_sched_policy(mut self, policy: SchedPolicy) -> Self {
        self.sched_policy = policy;
        self
    }

    /// Sets the SSD DRAM data-cache size (artifact knob `ssd_cache_size_byte`).
    pub fn with_ssd_cache_size(mut self, bytes: u64) -> Self {
        self.ssd.dram.data_cache_bytes = bytes;
        self
    }

    /// Sets the write-log size.
    pub fn with_write_log_size(mut self, bytes: u64) -> Self {
        self.ssd.dram.write_log_bytes = bytes;
        self
    }

    /// Sets the host DRAM promotion budget (artifact knob
    /// `host_dram_size_byte`).
    pub fn with_host_dram_size(mut self, bytes: u64) -> Self {
        self.host_dram.promotion_capacity_bytes = bytes;
        self
    }

    /// Sets the NAND flash family (Table IV) and its timing.
    pub fn with_nand(mut self, kind: NandKind) -> Self {
        self.ssd = self.ssd.with_nand(kind);
        self
    }

    /// Sets the number of simulated cores.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cpu.cores = cores;
        self
    }

    /// Sets the TLB geometry (entry count and per-miss walk penalty).
    pub fn with_tlb(mut self, entries: u32, miss_latency: Nanos) -> Self {
        self.cpu.tlb = TlbConfig {
            entries,
            miss_latency,
        };
        self
    }

    /// Sets the observe-only telemetry capture configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Checks internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant:
    /// zero cores/threads, empty caches, a write log that does not hold at
    /// least one page worth of cachelines, GC thresholds outside `(0, 1]`,
    /// or zero-latency flash.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cpu.cores == 0 {
            return Err(ConfigError::new("cpu.cores must be at least 1"));
        }
        if self.threads == 0 {
            return Err(ConfigError::new("threads must be at least 1"));
        }
        if self.cpu.base_ipc <= 0.0 {
            return Err(ConfigError::new("cpu.base_ipc must be positive"));
        }
        if !(0.0..=1.0).contains(&self.cpu.mem_op_fraction) {
            return Err(ConfigError::new("cpu.mem_op_fraction must be in [0, 1]"));
        }
        for (name, lvl) in [
            ("l1d", &self.cpu.l1d),
            ("l2", &self.cpu.l2),
            ("llc", &self.cpu.llc),
        ] {
            if lvl.size_bytes == 0 || lvl.ways == 0 {
                return Err(ConfigError::new(format!(
                    "cache level {name} must have nonzero size and ways"
                )));
            }
            if lvl.capacity_lines() < lvl.ways as u64 {
                return Err(ConfigError::new(format!(
                    "cache level {name} smaller than one set"
                )));
            }
        }
        if self.cpu.tlb.entries == 0 {
            return Err(ConfigError::new("cpu.tlb.entries must be at least 1"));
        }
        if self.ssd.geometry.total_pages() == 0 {
            return Err(ConfigError::new("ssd geometry has zero pages"));
        }
        if self.ssd.geometry.page_size_bytes as usize != crate::addr::PAGE_SIZE {
            return Err(ConfigError::new("only 4 KiB flash pages are supported"));
        }
        if self.ssd.dram.write_log_bytes < crate::addr::PAGE_SIZE as u64 {
            return Err(ConfigError::new(
                "write log must hold at least one page worth of cachelines",
            ));
        }
        if self.ssd.dram.data_cache_bytes < crate::addr::PAGE_SIZE as u64 {
            return Err(ConfigError::new("data cache must hold at least one page"));
        }
        if !(0.0 < self.ssd.gc_threshold && self.ssd.gc_threshold <= 1.0) {
            return Err(ConfigError::new("gc_threshold must be in (0, 1]"));
        }
        if !(0.0..0.5).contains(&self.ssd.overprovisioning) {
            return Err(ConfigError::new("overprovisioning must be in [0, 0.5)"));
        }
        if self.ssd.flash.read_latency == Nanos::ZERO
            || self.ssd.flash.program_latency == Nanos::ZERO
        {
            return Err(ConfigError::new("flash latencies must be nonzero"));
        }
        if self.migration.plb_entries == 0 && self.promotion_enable {
            return Err(ConfigError::new(
                "promotion requires at least one PLB entry",
            ));
        }
        if self.telemetry.enabled && self.telemetry.sample_interval == Nanos::ZERO {
            return Err(ConfigError::new(
                "telemetry sample interval must be nonzero when telemetry is enabled",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.cpu.cores, 8);
        assert_eq!(cfg.cpu.rob_entries, 256);
        assert_eq!(cfg.cpu.llc.size_bytes, 16 * MIB);
        assert_eq!(cfg.cpu.llc.mshrs, 1024);
        assert_eq!(cfg.ssd.geometry.total_bytes(), 128 * GIB);
        assert_eq!(cfg.ssd.flash.read_latency, Nanos::from_micros(3));
        assert_eq!(cfg.ssd.flash.program_latency, Nanos::from_micros(100));
        assert_eq!(cfg.ssd.flash.erase_latency, Nanos::from_micros(1000));
        assert_eq!(cfg.ssd.cxl_protocol_latency, Nanos::new(40));
        assert_eq!(cfg.ssd.dram.write_log_bytes, 64 * MIB);
        assert_eq!(cfg.ssd.dram.data_cache_bytes, 448 * MIB);
        assert_eq!(cfg.host_dram.promotion_capacity_bytes, 2 * GIB);
        assert_eq!(cfg.cs_threshold, Nanos::from_micros(2));
        assert_eq!(cfg.context_switch_overhead, Nanos::from_micros(2));
        assert_eq!(cfg.sched_policy, SchedPolicy::Cfs);
        assert_eq!(cfg.cpu.tlb.entries, 1536);
        assert_eq!(cfg.cpu.tlb.miss_latency, Nanos::new(30));
        cfg.validate().unwrap();
    }

    #[test]
    fn telemetry_defaults_off_and_never_splits_fingerprints() {
        let cfg = SimConfig::default();
        assert!(!cfg.telemetry.enabled);
        assert_eq!(cfg.telemetry.sample_interval, Nanos::from_micros(10));
        // The Debug rendering — and therefore any fingerprint derived from
        // it — must be identical regardless of the telemetry settings.
        let mut on = cfg.clone();
        on.telemetry = TelemetryConfig {
            enabled: true,
            sample_interval: Nanos::from_micros(1),
            timeline: false,
        };
        assert_eq!(format!("{cfg:?}"), format!("{on:?}"));
        on.validate().unwrap();
        // A zero cadence with telemetry enabled is rejected.
        on.telemetry.sample_interval = Nanos::ZERO;
        assert!(on.validate().is_err());
        on.telemetry.enabled = false;
        on.validate().unwrap();
    }

    #[test]
    fn configs_without_a_telemetry_field_still_deserialize() {
        // Serialized configs predating the telemetry field (golden corpus
        // metadata included) must keep loading via the serde default.
        let json = serde_json::to_string(&SimConfig::default()).unwrap();
        let mut v: serde::Value = serde_json::from_str(&json).unwrap();
        match &mut v {
            serde::Value::Map(entries) => {
                let before = entries.len();
                entries.retain(|(k, _)| k != "telemetry");
                assert_eq!(entries.len(), before - 1, "telemetry must serialize");
            }
            other => panic!("a config must serialize as a map, got {other:?}"),
        }
        let stripped = serde_json::to_string(&v).unwrap();
        let cfg: SimConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(cfg.telemetry, TelemetryConfig::default());
    }

    #[test]
    fn geometry_counts() {
        let g = SsdGeometry::default();
        assert_eq!(g.total_blocks(), 16 * 8 * 8 * 128);
        assert_eq!(g.total_pages(), g.total_blocks() * 256);
        assert_eq!(g.total_bytes(), 128 * GIB);
    }

    #[test]
    fn nand_table4_values() {
        let slc = FlashTimingConfig::for_kind(NandKind::Slc);
        assert_eq!(slc.read_latency, Nanos::from_micros(25));
        assert_eq!(slc.program_latency, Nanos::from_micros(200));
        let mlc = FlashTimingConfig::for_kind(NandKind::Mlc);
        assert_eq!(mlc.read_latency, Nanos::from_micros(50));
        assert_eq!(mlc.erase_latency, Nanos::from_micros(3000));
        let ull2 = FlashTimingConfig::for_kind(NandKind::Ull2);
        assert_eq!(ull2.program_latency, Nanos::from_micros(75));
        assert_eq!(NandKind::ALL.len(), 4);
    }

    #[test]
    fn variant_knobs() {
        assert!(VariantKind::SkyByteFull.write_log());
        assert!(VariantKind::SkyByteFull.context_switch());
        assert_eq!(
            VariantKind::SkyByteFull.migration_policy(),
            MigrationPolicyKind::Adaptive
        );
        assert!(!VariantKind::BaseCssd.write_log());
        assert!(!VariantKind::BaseCssd.context_switch());
        assert_eq!(
            VariantKind::SkyByteCT.migration_policy(),
            MigrationPolicyKind::Tpp
        );
        assert_eq!(
            VariantKind::AstriFlashCxl.migration_policy(),
            MigrationPolicyKind::AstriFlash
        );
        assert!(VariantKind::DramOnly.dram_only());
        assert!(!VariantKind::SkyByteW.context_switch());
        assert!(VariantKind::SkyByteW.write_log());
    }

    #[test]
    fn all_variants_are_listed_once() {
        assert_eq!(VariantKind::ALL.len(), 11);
        for (i, v) in VariantKind::ALL.iter().enumerate() {
            assert!(
                !VariantKind::ALL[i + 1..].contains(v),
                "{v} listed twice in VariantKind::ALL"
            );
        }
        for v in VariantKind::MAIN_ABLATION {
            assert!(VariantKind::ALL.contains(&v));
        }
        for v in VariantKind::MIGRATION_COMPARISON {
            assert!(VariantKind::ALL.contains(&v));
        }
    }

    #[test]
    fn with_variant_sets_thread_count() {
        let full = SimConfig::default().with_variant(VariantKind::SkyByteFull);
        assert_eq!(full.threads, 24);
        assert!(full.write_log_enable && full.device_triggered_ctx_swt && full.promotion_enable);
        let wp = SimConfig::default().with_variant(VariantKind::SkyByteWP);
        assert_eq!(wp.threads, 8);
        assert!(!wp.device_triggered_ctx_swt);
        let dram = SimConfig::default().with_variant(VariantKind::DramOnly);
        assert!(dram.infinite_host_dram);
    }

    #[test]
    fn builder_setters() {
        let cfg = SimConfig::default()
            .with_threads(16)
            .with_cores(4)
            .with_cs_threshold(Nanos::from_micros(10))
            .with_sched_policy(SchedPolicy::RoundRobin)
            .with_ssd_cache_size(128 * MIB)
            .with_write_log_size(8 * MIB)
            .with_host_dram_size(GIB)
            .with_nand(NandKind::Slc)
            .with_tlb(64, Nanos::new(120));
        assert_eq!(cfg.threads, 16);
        assert_eq!(cfg.cpu.cores, 4);
        assert_eq!(cfg.cs_threshold, Nanos::from_micros(10));
        assert_eq!(cfg.sched_policy, SchedPolicy::RoundRobin);
        assert_eq!(cfg.ssd.dram.data_cache_bytes, 128 * MIB);
        assert_eq!(cfg.ssd.dram.write_log_bytes, 8 * MIB);
        assert_eq!(cfg.host_dram.promotion_capacity_bytes, GIB);
        assert_eq!(cfg.ssd.nand_kind, NandKind::Slc);
        assert_eq!(cfg.ssd.flash.read_latency, Nanos::from_micros(25));
        assert_eq!(cfg.cpu.tlb.entries, 64);
        assert_eq!(cfg.cpu.tlb.miss_latency, Nanos::new(120));
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SimConfig::default();
        cfg.cpu.cores = 0;
        assert!(cfg.validate().is_err());

        let cfg = SimConfig {
            threads: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.ssd.dram.write_log_bytes = 100;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.ssd.gc_threshold = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.ssd.geometry.page_size_bytes = 8192;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.cpu.mem_op_fraction = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::default();
        cfg.cpu.tlb.entries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(VariantKind::BaseCssd.to_string(), "Base-CSSD");
        assert_eq!(VariantKind::SkyByteFull.to_string(), "SkyByte-Full");
        assert_eq!(VariantKind::AstriFlashCxl.to_string(), "AstriFlash-CXL");
        assert_eq!(SchedPolicy::Cfs.to_string(), "CFS");
        assert_eq!(NandKind::Ull.to_string(), "ULL");
        assert_eq!(MigrationPolicyKind::Tpp.to_string(), "tpp");
    }

    #[test]
    fn cache_level_helpers() {
        let llc = CpuConfig::default().llc;
        assert_eq!(llc.capacity_lines(), 16 * MIB / 64);
        assert_eq!(llc.sets(), llc.capacity_lines() / 16);
    }

    #[test]
    fn dram_timing_presets() {
        let host = DramTimingConfig::ddr5_host();
        assert_eq!(host.channels, 8);
        assert!(host.total_bandwidth_bps() > host.channel_bandwidth_bps);
        let ssd = DramTimingConfig::lpddr4_ssd();
        assert_eq!(ssd.channels, 2);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = SimConfig::default().with_variant(VariantKind::SkyByteFull);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
