//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The engine's steady-state path hashes small integer keys (LPAs, page
//! numbers) several times per simulated access. The standard library's
//! SipHash is a measurable fraction of that path; this module provides the
//! well-known Fx multiply-rotate hash instead, which collapses a `u64` key
//! to two arithmetic instructions.
//!
//! Determinism matters here beyond speed: `FxBuildHasher` carries no
//! per-process random seed, so map layout — and therefore any accidental
//! dependence on iteration order — is identical across runs. The simulator
//! still forbids observable iteration-order dependence (every map that is
//! drained for output is sorted first), but a deterministic hasher turns a
//! would-be nondeterminism bug into a reproducible one.
//!
//! Only use this for trusted keys: Fx is trivially collision-attackable and
//! must not hash untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the deterministic [`FxHasher`].
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the deterministic [`FxHasher`].
pub type FastHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized, seedless builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox `FxHash` function: per 8-byte word,
/// `hash = (hash <<< 5 ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one(0xdead_beef_u64);
        let b = FxBuildHasher::default().hash_one(0xdead_beef_u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h = FxBuildHasher::default();
        assert_ne!(h.hash_one(1_u64), h.hash_one(2_u64));
        assert_ne!(h.hash_one(1_u64), h.hash_one(1_u64 << 32));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
    }
}
