//! Memory access records exchanged between the core model, the CXL port and
//! the SSD controller.

use crate::addr::VirtAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (read) of one cacheline.
    Read,
    /// A store (write) of one cacheline.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// Which physical memory served (or will serve) an access, as classified by
/// the OS memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTarget {
    /// The access targets host DRAM (including pages promoted from the SSD).
    HostDram,
    /// The access targets the CXL-SSD's host-managed device memory window.
    CxlSsd,
}

/// A single off-chip memory access as produced by a workload trace.
///
/// Workload generators emit cacheline-granular virtual addresses plus the
/// amount of computation that precedes the access; the core model converts the
/// computation to time and the memory system resolves the address.
///
/// # Example
///
/// ```
/// use skybyte_types::{AccessKind, MemAccess, VirtAddr};
/// let a = MemAccess::read(VirtAddr::new(0x1000));
/// assert!(a.kind.is_read());
/// assert_eq!(a.addr.page().index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual address of the accessed cacheline (need not be aligned; the
    /// memory system aligns it).
    pub addr: VirtAddr,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Creates a read access.
    pub const fn read(addr: VirtAddr) -> Self {
        MemAccess {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub const fn write(addr: VirtAddr) -> Self {
        MemAccess {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// Creates an access of the given kind.
    pub const fn new(addr: VirtAddr, kind: AccessKind) -> Self {
        MemAccess { addr, kind }
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn constructors_set_kind() {
        let r = MemAccess::read(VirtAddr::new(64));
        let w = MemAccess::write(VirtAddr::new(64));
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(r.addr, w.addr);
        assert_eq!(MemAccess::new(VirtAddr::new(64), AccessKind::Write), w);
    }

    #[test]
    fn display_contains_kind_and_addr() {
        let s = format!("{}", MemAccess::write(VirtAddr::new(0x40)));
        assert!(s.starts_with('W'));
        assert!(s.contains("0x40"));
    }
}
