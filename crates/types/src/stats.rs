//! Statistics primitives used to build the paper's figures.
//!
//! * [`Counter`] — a named monotonically increasing event counter.
//! * [`LatencyHistogram`] — log-scale latency histogram, used for the latency
//!   distribution plots (Figure 3) and average/percentile reporting.
//! * [`RatioBreakdown`] — a named set of parts reported as fractions of the
//!   total (used for boundedness, AMAT and request breakdowns).

use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A simple monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use skybyte_types::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A latency histogram with logarithmic buckets (powers of two nanoseconds).
///
/// Collects every completed memory access latency and answers the statistics
/// needed by Figures 3 and 17: mean, percentiles, and a CDF over the buckets.
///
/// # Example
///
/// ```
/// use skybyte_types::{LatencyHistogram, Nanos};
/// let mut h = LatencyHistogram::new();
/// for v in [100, 200, 3_000_000] {
///     h.record(Nanos::new(v));
/// }
/// assert_eq!(h.count(), 3);
/// assert!(h.mean() > Nanos::new(200));
/// assert!(h.percentile(0.5) <= Nanos::new(512));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// bucket i counts samples with latency in [2^i, 2^(i+1)) ns.
    buckets: Vec<u64>,
    count: u64,
    total_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

/// `Default` must construct exactly the same empty histogram as
/// [`LatencyHistogram::new`]: a derived `Default` would leave `buckets`
/// empty and `min_ns = 0`, making two sample-free histograms — and therefore
/// two otherwise identical `SimResult`s — compare unequal under the
/// trace-replay bit-identity keystone.
impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Nanos) {
        let ns = latency.as_nanos();
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        if self.buckets.is_empty() {
            self.buckets = vec![0; 64];
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency over all samples ([`Nanos::ZERO`] if empty).
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos::new((self.total_ns / self.count as u128) as u64)
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Nanos {
        Nanos::new(self.max_ns)
    }

    /// Smallest recorded latency ([`Nanos::ZERO`] if empty).
    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos::new(self.min_ns)
        }
    }

    /// Sum of all recorded latencies.
    pub fn total(&self) -> Nanos {
        Nanos::new(self.total_ns.min(u64::MAX as u128) as u64)
    }

    /// Approximate latency at the given quantile `q` in `[0, 1]`, using the
    /// upper edge of the histogram bucket containing that quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Nanos {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Nanos::new(1u64 << (i + 1).min(63));
            }
        }
        Nanos::new(self.max_ns)
    }

    /// Median latency: shorthand for [`percentile`](Self::percentile)`(0.5)`.
    pub fn p50(&self) -> Nanos {
        self.percentile(0.5)
    }

    /// 99th-percentile latency: shorthand for
    /// [`percentile`](Self::percentile)`(0.99)`.
    pub fn p99(&self) -> Nanos {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency: shorthand for
    /// [`percentile`](Self::percentile)`(0.999)`.
    pub fn p999(&self) -> Nanos {
        self.percentile(0.999)
    }

    /// Returns `(bucket_upper_bound_ns, cumulative_fraction)` pairs describing
    /// the CDF of the distribution — the data series plotted in Figure 3.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            out.push(((1u64 << (i + 1).min(63)), seen as f64 / self.count as f64));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 64];
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i] += n;
            }
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
        }
    }
}

/// A named breakdown of a quantity into parts, reported as fractions.
///
/// Used for the memory/compute boundedness of Figure 4, the request breakdown
/// of Figure 16 and the AMAT component breakdown of Figure 17.
///
/// # Example
///
/// ```
/// use skybyte_types::RatioBreakdown;
/// let mut b = RatioBreakdown::new();
/// b.add("memory", 750.0);
/// b.add("compute", 250.0);
/// assert!((b.fraction("memory") - 0.75).abs() < 1e-9);
/// assert_eq!(b.total(), 1000.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RatioBreakdown {
    parts: BTreeMap<String, f64>,
}

impl RatioBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the named part (creating it if needed).
    pub fn add(&mut self, part: &str, value: f64) {
        *self.parts.entry(part.to_string()).or_insert(0.0) += value;
    }

    /// Absolute value of a part (0 if absent).
    pub fn value(&self, part: &str) -> f64 {
        self.parts.get(part).copied().unwrap_or(0.0)
    }

    /// Sum over all parts.
    pub fn total(&self) -> f64 {
        self.parts.values().sum()
    }

    /// Fraction of the total contributed by a part (0 if the total is 0).
    pub fn fraction(&self, part: &str) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.value(part) / total
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.parts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Names of all parts.
    pub fn parts(&self) -> impl Iterator<Item = &str> {
        self.parts.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::new(100));
        h.record(Nanos::new(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Nanos::new(200));
        assert_eq!(h.min(), Nanos::new(100));
        assert_eq!(h.max(), Nanos::new(300));
        assert_eq!(h.total(), Nanos::new(400));
    }

    #[test]
    fn histogram_default_equals_new() {
        // The derived Default used to produce empty buckets and min_ns = 0,
        // breaking equality between sample-free histograms.
        assert_eq!(LatencyHistogram::default(), LatencyHistogram::new());
        // Recording into a default-built histogram lands in the same state
        // as recording into a new()-built one.
        let mut d = LatencyHistogram::default();
        let mut n = LatencyHistogram::new();
        d.record(Nanos::new(123));
        n.record(Nanos::new(123));
        assert_eq!(d, n);
    }

    #[test]
    fn histogram_serde_round_trip_preserves_equality() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::new(77));
        h.record(Nanos::new(1 << 20));
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        // An empty histogram round-trips to something equal to a fresh one.
        let empty_json = serde_json::to_string(&LatencyHistogram::new()).unwrap();
        let empty: LatencyHistogram = serde_json::from_str(&empty_json).unwrap();
        assert_eq!(empty, LatencyHistogram::default());
    }

    #[test]
    fn histogram_empty_is_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.min(), Nanos::ZERO);
        assert_eq!(h.percentile(0.99), Nanos::ZERO);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn histogram_percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Nanos::new(i * 17 % 100_000 + 1));
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn percentile_shorthands_match_the_general_form() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), Nanos::ZERO);
        for i in 1..=10_000u64 {
            h.record(Nanos::new(i * 31 % 1_000_000 + 1));
        }
        assert_eq!(h.p50(), h.percentile(0.5));
        assert_eq!(h.p99(), h.percentile(0.99));
        assert_eq!(h.p999(), h.percentile(0.999));
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
        assert!(h.p999() <= Nanos::new(h.max().as_nanos().next_power_of_two()));
    }

    #[test]
    fn histogram_cdf_reaches_one() {
        let mut h = LatencyHistogram::new();
        for v in [50u64, 100, 5_000, 3_000_000] {
            h.record(Nanos::new(v));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let last = cdf.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
        // monotonically nondecreasing
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Nanos::new(10));
        b.record(Nanos::new(1_000));
        b.record(Nanos::new(100));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Nanos::new(10));
        assert_eq!(a.max(), Nanos::new(1_000));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_rejects_bad_quantile() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(1.5);
    }

    #[test]
    fn breakdown_fractions() {
        let mut b = RatioBreakdown::new();
        b.add("flash", 900.0);
        b.add("dram", 100.0);
        b.add("flash", 100.0);
        assert_eq!(b.total(), 1100.0);
        assert!((b.fraction("flash") - 1000.0 / 1100.0).abs() < 1e-12);
        assert_eq!(b.value("missing"), 0.0);
        assert_eq!(b.fraction("missing"), 0.0);
        let parts: Vec<_> = b.parts().collect();
        assert_eq!(parts, vec!["dram", "flash"]);
        let total_from_iter: f64 = b.iter().map(|(_, v)| v).sum();
        assert_eq!(total_from_iter, b.total());
    }

    #[test]
    fn breakdown_empty_total_is_zero() {
        let b = RatioBreakdown::new();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.fraction("x"), 0.0);
    }
}
