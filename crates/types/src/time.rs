//! Simulated time.
//!
//! All timing in the simulator is expressed in integer nanoseconds via
//! [`Nanos`]. Sub-nanosecond quantities (e.g. cycle times of a 4 GHz core)
//! are handled by [`Freq::cycles_to_nanos`], which rounds up so that work is
//! never under-accounted.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or point in simulated time, in nanoseconds.
///
/// `Nanos` is used both as an absolute timestamp (nanoseconds since the start
/// of the simulation) and as a duration; the arithmetic is identical and the
/// simulator never needs calendar time.
///
/// # Example
///
/// ```
/// use skybyte_types::Nanos;
/// let flash_read = Nanos::from_micros(3);
/// let protocol = Nanos::new(40);
/// assert_eq!((flash_read + protocol).as_nanos(), 3_040);
/// assert_eq!(flash_read.as_micros_f64(), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration / simulation start.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time value from raw nanoseconds.
    #[inline]
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time value from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time value from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds, as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    ///
    /// Use this only where an earlier-than-`rhs` value is *expected* (e.g.
    /// windowing a busy interval against a horizon). Where time must be
    /// monotone — a completion never precedes its request — use
    /// [`Nanos::since`], which fails loudly instead of masking the bug as a
    /// zero latency.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Monotone elapsed time: `self - earlier`, panicking if time ran
    /// backwards. This is the audit-friendly replacement for the
    /// `saturating_sub` calls that used to silently clamp negative latencies
    /// to zero and mask accounting bugs.
    ///
    /// # Panics
    ///
    /// Panics if `earlier > self` (simulated time ran backwards).
    #[inline]
    #[track_caller]
    pub fn since(self, earlier: Nanos) -> Nanos {
        assert!(
            self.0 >= earlier.0,
            "simulated time ran backwards: {self} precedes {earlier}"
        );
        Nanos(self.0 - earlier.0)
    }

    /// Saturating addition, clamping at [`Nanos::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }

    /// Multiplies the duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> Nanos {
        Nanos(self.0 * factor)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl From<Nanos> for u64 {
    fn from(n: Nanos) -> u64 {
        n.0
    }
}

/// A clock frequency in hertz, used to convert instruction/cycle counts to
/// simulated time.
///
/// # Example
///
/// ```
/// use skybyte_types::{Freq, Nanos};
/// let f = Freq::from_ghz(4.0);
/// // 4 cycles at 4 GHz = 1 ns
/// assert_eq!(f.cycles_to_nanos(4), Nanos::new(1));
/// // rounding is upwards so work is never lost
/// assert_eq!(f.cycles_to_nanos(1), Nanos::new(1));
/// assert_eq!(f.nanos_to_cycles(Nanos::new(10)), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Freq {
    hz: f64,
}

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Freq { hz }
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz(mhz * 1e6)
    }

    /// Frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// Frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.hz / 1e9
    }

    /// Converts a cycle count to simulated time, rounding up to at least 1 ns
    /// for any non-zero cycle count.
    pub fn cycles_to_nanos(self, cycles: u64) -> Nanos {
        if cycles == 0 {
            return Nanos::ZERO;
        }
        let ns = (cycles as f64) * 1e9 / self.hz;
        Nanos::new(ns.ceil().max(1.0) as u64)
    }

    /// Converts a duration to a cycle count (rounded down).
    pub fn nanos_to_cycles(self, t: Nanos) -> u64 {
        ((t.as_nanos() as f64) * self.hz / 1e9).floor() as u64
    }
}

impl Default for Freq {
    /// 4 GHz, the core frequency of Table II.
    fn default() -> Self {
        Freq::from_ghz(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors() {
        assert_eq!(Nanos::from_micros(2).as_nanos(), 2_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::new(100);
        let b = Nanos::new(40);
        assert_eq!(a + b, Nanos::new(140));
        assert_eq!(a - b, Nanos::new(60));
        assert_eq!(a * 3, Nanos::new(300));
        assert_eq!(a / 4, Nanos::new(25));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(a), Nanos::MAX);
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos::new(140));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn since_measures_monotone_elapsed_time() {
        assert_eq!(Nanos::new(140).since(Nanos::new(40)), Nanos::new(100));
        assert_eq!(Nanos::new(7).since(Nanos::new(7)), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn since_panics_when_time_runs_backwards() {
        let _ = Nanos::new(40).since(Nanos::new(41));
    }

    #[test]
    fn nanos_sum_and_minmax() {
        let total: Nanos = [Nanos::new(1), Nanos::new(2), Nanos::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Nanos::new(6));
        assert_eq!(Nanos::new(5).max(Nanos::new(9)), Nanos::new(9));
        assert_eq!(Nanos::new(5).min(Nanos::new(9)), Nanos::new(5));
    }

    #[test]
    fn nanos_display_units() {
        assert_eq!(format!("{}", Nanos::new(999)), "999ns");
        assert_eq!(format!("{}", Nanos::new(1500)), "1.500us");
        assert_eq!(format!("{}", Nanos::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn freq_round_trip() {
        let f = Freq::from_ghz(4.0);
        assert_eq!(f.cycles_to_nanos(400), Nanos::new(100));
        assert_eq!(f.nanos_to_cycles(Nanos::new(100)), 400);
        assert_eq!(f.cycles_to_nanos(0), Nanos::ZERO);
        // sub-nanosecond work is rounded up to 1ns
        assert_eq!(f.cycles_to_nanos(1), Nanos::new(1));
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn freq_rejects_zero() {
        let _ = Freq::from_hz(0.0);
    }

    #[test]
    fn nanos_serde_round_trip() {
        let t = Nanos::from_micros(7);
        let s = serde_json::to_string(&t).unwrap();
        assert_eq!(s, "7000");
        let back: Nanos = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
