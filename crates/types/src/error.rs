//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid simulator configuration.
///
/// Returned by [`crate::config::SimConfig::validate`] and by constructors of
/// components that receive impossible parameters (zero-sized caches, a write
/// log larger than the SSD DRAM, and so on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The human-readable reason the configuration was rejected.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("write log larger than SSD DRAM");
        assert!(e.to_string().contains("write log larger than SSD DRAM"));
        assert_eq!(e.message(), "write log larger than SSD DRAM");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
