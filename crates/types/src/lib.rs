//! Common foundational types for the SkyByte CXL-SSD simulation stack.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`addr`] — strongly-typed addresses for each address space that appears in
//!   a memory-semantic SSD system (host virtual, host physical, SSD logical
//!   page, flash physical page, cacheline offsets, …).
//! * [`time`] — nanosecond-resolution simulated time ([`Nanos`]) and frequency
//!   helpers.
//! * [`access`] — the memory-access records exchanged between the host CPU
//!   model, the CXL port and the SSD controller.
//! * [`config`] — the full simulator configuration mirroring Table II of the
//!   SkyByte paper, including every knob exposed by the original artifact
//!   (`promotion_enable`, `write_log_enable`, `device_triggered_ctx_swt`,
//!   `cs_threshold`, `ssd_cache_size_byte`, `host_dram_size_byte`,
//!   `t_policy`, …).
//! * [`stats`] — latency histograms and counters used to build the paper's
//!   figures (latency distributions, AMAT breakdowns, boundedness).
//!
//! # Example
//!
//! ```
//! use skybyte_types::prelude::*;
//!
//! let cfg = SimConfig::default();
//! assert_eq!(cfg.ssd.flash.read_latency, Nanos::from_micros(3));
//! assert_eq!(cfg.ssd.geometry.total_bytes(), 128 * (1 << 30));
//!
//! let va = VirtAddr::new(0x1234_5678);
//! assert_eq!(va.page().index(), 0x1234_5678 / PAGE_SIZE as u64);
//! assert_eq!(va.cacheline_in_page(), (0x5678 % 4096) / 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod audit;
pub mod config;
pub mod error;
pub mod fasthash;
pub mod policy;
pub mod stats;
pub mod tenant;
pub mod time;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::access::{AccessKind, MemAccess, MemTarget};
    pub use crate::addr::{
        CachelineIndex, Lpa, PageNumber, PhysAddr, Ppa, VirtAddr, CACHELINES_PER_PAGE,
        CACHELINE_SIZE, PAGE_SIZE,
    };
    pub use crate::audit::{AuditReport, Violation};
    pub use crate::config::{
        CacheLevelConfig, CpuConfig, DramTimingConfig, FlashTimingConfig, HostDramConfig,
        MigrationConfig, MigrationPolicyKind, NandKind, SchedPolicy, SimConfig, SsdConfig,
        SsdDramConfig, SsdGeometry, TelemetryConfig, TlbConfig, VariantKind,
    };
    pub use crate::error::ConfigError;
    pub use crate::fasthash::{FastHashMap, FastHashSet, FxBuildHasher, FxHasher};
    pub use crate::policy::{
        apply_policy_name, AdmissionPolicyKind, EvictionPolicyKind, HotnessPolicyKind,
        PlacementPolicyKind, PolicyConfig, PolicyOverride, RebalancePolicyKind, TenantSchedKind,
    };
    pub use crate::stats::{Counter, LatencyHistogram, RatioBreakdown};
    pub use crate::tenant::{TenantId, TenantMap};
    pub use crate::time::{Freq, Nanos};
}

pub use access::{AccessKind, MemAccess, MemTarget};
pub use addr::{
    CachelineIndex, Lpa, PageNumber, PhysAddr, Ppa, VirtAddr, CACHELINES_PER_PAGE, CACHELINE_SIZE,
    PAGE_SIZE,
};
pub use audit::{AuditReport, Violation};
pub use config::{
    CacheLevelConfig, CpuConfig, DramTimingConfig, FlashTimingConfig, HostDramConfig,
    MigrationConfig, MigrationPolicyKind, NandKind, SchedPolicy, SimConfig, SsdConfig,
    SsdDramConfig, SsdGeometry, TelemetryConfig, TlbConfig, VariantKind, GIB, KIB, MIB,
};
pub use error::ConfigError;
pub use fasthash::{FastHashMap, FastHashSet, FxBuildHasher, FxHasher};
pub use policy::{
    apply_policy_name, AdmissionPolicyKind, EvictionPolicyKind, HotnessPolicyKind,
    PlacementPolicyKind, PolicyConfig, PolicyOverride, RebalancePolicyKind, TenantSchedKind,
};
pub use stats::{Counter, LatencyHistogram, RatioBreakdown};
pub use tenant::{TenantId, TenantMap};
pub use time::{Freq, Nanos};
