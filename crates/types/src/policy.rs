//! Pluggable policy selection.
//!
//! SkyByte's wins all come from *policy* choices — what the SSD DRAM caches,
//! which pages count as hot, when pages migrate, who gets scheduled. This
//! module names those choices so they can be swept like any other knob:
//!
//! * [`EvictionPolicyKind`] / [`AdmissionPolicyKind`] — the data-cache seam
//!   (`skybyte_cache::DataCache`),
//! * [`HotnessPolicyKind`] — the controller's hot-page tracking seam
//!   (`skybyte_ssd`),
//! * [`TenantSchedKind`] — the engine's tenant-aware scheduling hook,
//! * [`PlacementPolicyKind`] / [`RebalancePolicyKind`] — the fleet layer's
//!   tenant-placement and cross-device rebalance seams
//!   (`skybyte_sim::fleet`),
//! * plus the pre-existing [`MigrationPolicyKind`](crate::MigrationPolicyKind)
//!   and [`SchedPolicy`](crate::SchedPolicy), which the unified name registry
//!   ([`PolicyOverride`]) folds into the same `--policy <name>` namespace.
//!
//! [`PolicyConfig`] is the serializable block inside
//! [`SimConfig`](crate::SimConfig) that carries the four new dimensions. Its
//! `Default` is exactly the behaviour the simulator had before the seams were
//! lifted behind policies — the golden-trace corpus pins that equivalence bit
//! for bit.
//!
//! Every kind has a stable lowercase name (`Display`/`FromStr`), all names
//! across all eight dimensions are distinct, and [`PolicyOverride::from_str`]
//! rejects unknown names with the full valid list — one registry shared by
//! every CLI that takes `--policy`.

use crate::config::{MigrationPolicyKind, SchedPolicy, SimConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Case-insensitive lookup of a kind by its `Display` name.
fn lookup<T: Copy + fmt::Display>(all: &[T], name: &str) -> Option<T> {
    all.iter()
        .copied()
        .find(|k| k.to_string().eq_ignore_ascii_case(name))
}

// ---------------------------------------------------------------------------
// Parse paths for the pre-existing policy enums (satellite: one registry)
// ---------------------------------------------------------------------------

impl SchedPolicy {
    /// Every scheduling policy, in declaration order.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::RoundRobin,
        SchedPolicy::Random,
        SchedPolicy::Cfs,
    ];
}

impl FromStr for SchedPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown scheduling policy '{s}'"))
    }
}

impl MigrationPolicyKind {
    /// Every migration policy, in declaration order.
    pub const ALL: [MigrationPolicyKind; 4] = [
        MigrationPolicyKind::Adaptive,
        MigrationPolicyKind::Tpp,
        MigrationPolicyKind::AstriFlash,
        MigrationPolicyKind::Disabled,
    ];
}

impl FromStr for MigrationPolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown migration policy '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// Data-cache eviction
// ---------------------------------------------------------------------------

/// Which page the data cache evicts when a set is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicyKind {
    /// The original timestamp scan: evict the entry with the smallest
    /// last-access tick (first match wins on ties). The default.
    #[default]
    PseudoLru,
    /// True LRU via an explicit recency ordering. With the simulator's exact
    /// per-access ticks this selects the same victims as `PseudoLru` — it is
    /// kept as a distinct implementation of the seam so approximate variants
    /// can diverge from it.
    Lru,
    /// CLOCK (second chance): a per-set hand sweeps entries, clearing
    /// reference bits until it finds an unreferenced victim.
    Clock,
    /// 2Q/SLRU: entries enter a probationary segment and are promoted to a
    /// protected segment on re-reference; victims come from the
    /// probationary segment first.
    TwoQ,
    /// FIFO: evict the oldest-inserted entry regardless of use.
    Fifo,
}

impl EvictionPolicyKind {
    /// Every eviction policy, in declaration order.
    pub const ALL: [EvictionPolicyKind; 5] = [
        EvictionPolicyKind::PseudoLru,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Clock,
        EvictionPolicyKind::TwoQ,
        EvictionPolicyKind::Fifo,
    ];
}

impl fmt::Display for EvictionPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvictionPolicyKind::PseudoLru => "pseudo-lru",
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::Clock => "clock",
            EvictionPolicyKind::TwoQ => "2q",
            EvictionPolicyKind::Fifo => "fifo",
        };
        f.write_str(s)
    }
}

impl FromStr for EvictionPolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown eviction policy '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// Data-cache admission
// ---------------------------------------------------------------------------

/// Whether a page fetched from flash is admitted into the data cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdmissionPolicyKind {
    /// Admit every fetched page (the default, and the only behaviour the
    /// cache had before the seam existed).
    #[default]
    AdmitAll,
    /// Bypass pages that arrive as part of a long sequential scan: streaming
    /// reads would flush the cache without ever re-referencing the pages.
    BypassScan,
}

impl AdmissionPolicyKind {
    /// Every admission policy, in declaration order.
    pub const ALL: [AdmissionPolicyKind; 2] = [
        AdmissionPolicyKind::AdmitAll,
        AdmissionPolicyKind::BypassScan,
    ];
}

impl fmt::Display for AdmissionPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdmissionPolicyKind::AdmitAll => "admit-all",
            AdmissionPolicyKind::BypassScan => "bypass-scan",
        };
        f.write_str(s)
    }
}

impl FromStr for AdmissionPolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown admission policy '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// Hot-page tracking
// ---------------------------------------------------------------------------

/// How the SSD controller decides which pages are hot (promotion
/// candidates for the adaptive migration policy, §III-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HotnessPolicyKind {
    /// Exact per-page counters with a fixed nomination threshold (the
    /// paper's controller design and the default).
    #[default]
    Threshold,
    /// Exponentially decayed frequency counters: counts are halved
    /// periodically and decayed-to-zero pages are dropped, bounding the
    /// tracker's memory on long traces.
    Decay,
    /// Windowed top-k: pages are counted inside a fixed-size access window
    /// and only the k hottest re-referenced pages of each window are
    /// nominated; counts reset between windows.
    TopK,
}

impl HotnessPolicyKind {
    /// Every hotness policy, in declaration order.
    pub const ALL: [HotnessPolicyKind; 3] = [
        HotnessPolicyKind::Threshold,
        HotnessPolicyKind::Decay,
        HotnessPolicyKind::TopK,
    ];
}

impl fmt::Display for HotnessPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HotnessPolicyKind::Threshold => "threshold",
            HotnessPolicyKind::Decay => "decay",
            HotnessPolicyKind::TopK => "topk",
        };
        f.write_str(s)
    }
}

impl FromStr for HotnessPolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown hotness policy '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// Tenant-aware scheduling
// ---------------------------------------------------------------------------

/// The engine's tenant-aware scheduling hook: how the per-tenant attribution
/// feeds back into which thread a core runs next.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TenantSchedKind {
    /// No tenant awareness: delegate straight to the OS scheduler (the
    /// default, and the only behaviour the pipeline had before the hook).
    #[default]
    Passthrough,
    /// Fair share: prefer runnable threads of the tenants with the least
    /// attributed SSD traffic, falling back to any runnable thread when the
    /// preferred tenants have none (work conserving).
    FairShare,
    /// QoS by write-log pressure: prefer runnable threads of tenants within
    /// their write-log partition quota, deprioritising tenants whose recent
    /// log appends exceed their share (work conserving; partition
    /// bookkeeping lives in `skybyte_cache::WriteLogPartitions`).
    Qos,
}

impl TenantSchedKind {
    /// Every tenant-scheduler hook, in declaration order.
    pub const ALL: [TenantSchedKind; 3] = [
        TenantSchedKind::Passthrough,
        TenantSchedKind::FairShare,
        TenantSchedKind::Qos,
    ];
}

impl fmt::Display for TenantSchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TenantSchedKind::Passthrough => "passthrough",
            TenantSchedKind::FairShare => "fair-share",
            TenantSchedKind::Qos => "qos",
        };
        f.write_str(s)
    }
}

impl FromStr for TenantSchedKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown tenant scheduler '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// Fleet-level placement and rebalancing
// ---------------------------------------------------------------------------

/// How a fleet assigns tenants to devices before any simulation runs
/// (`skybyte_sim::fleet`).
///
/// Placement is a *fleet-level* dimension: it decides which device a tenant's
/// demand lands on, and only then does each device compile down to an
/// ordinary single-device run. It therefore never appears in a device
/// fingerprint — two placements that agree on a device's tenant composition
/// share that device's memoized result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicyKind {
    /// First-fit bin packing by footprint: scan devices in index order and
    /// place each tenant on the first device with enough remaining capacity.
    /// The default.
    #[default]
    FirstFit,
    /// Round-robin: tenant `i` goes to device `i mod devices`, ignoring
    /// footprints (capacity violations surface in the fleet audit).
    RoundRobin,
    /// Interference-aware: sort tenants by their measured solo-vs-co-located
    /// slowdown (the `--fig mt` probe) and greedily place the most
    /// interference-prone tenants onto the devices with the least accumulated
    /// interference score that still have capacity.
    InterferenceAware,
}

impl PlacementPolicyKind {
    /// Every placement policy, in declaration order.
    pub const ALL: [PlacementPolicyKind; 3] = [
        PlacementPolicyKind::FirstFit,
        PlacementPolicyKind::RoundRobin,
        PlacementPolicyKind::InterferenceAware,
    ];
}

impl fmt::Display for PlacementPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlacementPolicyKind::FirstFit => "first-fit",
            PlacementPolicyKind::RoundRobin => "round-robin",
            PlacementPolicyKind::InterferenceAware => "interference",
        };
        f.write_str(s)
    }
}

impl FromStr for PlacementPolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown placement policy '{s}'"))
    }
}

/// How a fleet migrates tenants between rounds once per-tenant slowdowns are
/// measured (`skybyte_sim::fleet`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RebalancePolicyKind {
    /// Never move a tenant after initial placement. The default.
    #[default]
    Pin,
    /// Each round, move the tenant with the worst measured slowdown to the
    /// device with the lowest mean slowdown that can hold it.
    SwapWorst,
}

impl RebalancePolicyKind {
    /// Every rebalance policy, in declaration order.
    pub const ALL: [RebalancePolicyKind; 2] =
        [RebalancePolicyKind::Pin, RebalancePolicyKind::SwapWorst];
}

impl fmt::Display for RebalancePolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RebalancePolicyKind::Pin => "pin",
            RebalancePolicyKind::SwapWorst => "swap-worst",
        };
        f.write_str(s)
    }
}

impl FromStr for RebalancePolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        lookup(&Self::ALL, s).ok_or_else(|| format!("unknown rebalance policy '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// The policy block of SimConfig
// ---------------------------------------------------------------------------

/// The pluggable-policy block of [`SimConfig`].
///
/// Carries the four policy dimensions the redesign lifted behind seams. The
/// two policy dimensions that predate the block keep their existing homes —
/// the migration policy in [`MigrationConfig`](crate::MigrationConfig)
/// `.policy` and the OS scheduling policy in `SimConfig::sched_policy` — and
/// join the shared name registry through [`PolicyOverride`].
///
/// `Default` reproduces the pre-policy-layer simulator exactly; the golden
/// corpus verifies that equivalence bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Data-cache eviction policy.
    #[serde(default)]
    pub eviction: EvictionPolicyKind,
    /// Data-cache admission policy.
    #[serde(default)]
    pub admission: AdmissionPolicyKind,
    /// Controller hot-page tracking policy.
    #[serde(default)]
    pub hotness: HotnessPolicyKind,
    /// Tenant-aware scheduling hook.
    #[serde(default)]
    pub tenant_sched: TenantSchedKind,
}

impl PolicyConfig {
    /// Whether every dimension is at its default (pre-redesign) setting.
    pub fn is_default(&self) -> bool {
        *self == PolicyConfig::default()
    }
}

// ---------------------------------------------------------------------------
// The unified name registry
// ---------------------------------------------------------------------------

/// One parsed `--policy <name>` override: a policy name resolved to the
/// dimension it belongs to.
///
/// This is the single name registry shared by every CLI: all eight policy
/// dimensions' names live in one flat, case-insensitive namespace (they are
/// pairwise distinct — a test pins that), so `figures --policy clock
/// --policy decay --policy tpp` needs no per-dimension flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyOverride {
    /// A data-cache eviction policy.
    Eviction(EvictionPolicyKind),
    /// A data-cache admission policy.
    Admission(AdmissionPolicyKind),
    /// A controller hotness policy.
    Hotness(HotnessPolicyKind),
    /// A tenant-scheduler hook.
    TenantSched(TenantSchedKind),
    /// A page-migration policy.
    Migration(MigrationPolicyKind),
    /// An OS thread-scheduling policy.
    Sched(SchedPolicy),
    /// A fleet tenant-placement policy.
    Placement(PlacementPolicyKind),
    /// A fleet rebalance policy.
    Rebalance(RebalancePolicyKind),
}

impl PolicyOverride {
    /// Applies the override to the corresponding configuration field.
    ///
    /// Note that, exactly like setting the field directly, an override can
    /// be inert for a given variant: a migration policy is only exercised
    /// when `promotion_enable` is set, and the tenant scheduler only matters
    /// for multi-tenant runs. The two fleet dimensions (placement and
    /// rebalance) live *above* the device — they are consumed by
    /// `skybyte_sim::fleet` when compiling a `FleetConfig`, never by a
    /// single-device `SimConfig`, so applying them here is a no-op by design
    /// (a device fingerprint must not depend on where the fleet placed it).
    pub fn apply(self, cfg: &mut SimConfig) {
        match self {
            PolicyOverride::Eviction(k) => cfg.policy.eviction = k,
            PolicyOverride::Admission(k) => cfg.policy.admission = k,
            PolicyOverride::Hotness(k) => cfg.policy.hotness = k,
            PolicyOverride::TenantSched(k) => cfg.policy.tenant_sched = k,
            PolicyOverride::Migration(k) => cfg.migration.policy = k,
            PolicyOverride::Sched(k) => cfg.sched_policy = k,
            PolicyOverride::Placement(_) | PolicyOverride::Rebalance(_) => {}
        }
    }

    /// Every valid policy name, grouped by dimension in registry order —
    /// the list CLIs print when rejecting an unknown name.
    pub fn all_names() -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        names.extend(EvictionPolicyKind::ALL.iter().map(|k| k.to_string()));
        names.extend(AdmissionPolicyKind::ALL.iter().map(|k| k.to_string()));
        names.extend(HotnessPolicyKind::ALL.iter().map(|k| k.to_string()));
        names.extend(TenantSchedKind::ALL.iter().map(|k| k.to_string()));
        names.extend(MigrationPolicyKind::ALL.iter().map(|k| k.to_string()));
        names.extend(SchedPolicy::ALL.iter().map(|k| k.to_string()));
        names.extend(PlacementPolicyKind::ALL.iter().map(|k| k.to_string()));
        names.extend(RebalancePolicyKind::ALL.iter().map(|k| k.to_string()));
        names
    }
}

impl fmt::Display for PolicyOverride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyOverride::Eviction(k) => k.fmt(f),
            PolicyOverride::Admission(k) => k.fmt(f),
            PolicyOverride::Hotness(k) => k.fmt(f),
            PolicyOverride::TenantSched(k) => k.fmt(f),
            PolicyOverride::Migration(k) => k.fmt(f),
            PolicyOverride::Sched(k) => k.fmt(f),
            PolicyOverride::Placement(k) => k.fmt(f),
            PolicyOverride::Rebalance(k) => k.fmt(f),
        }
    }
}

impl FromStr for PolicyOverride {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(k) = lookup(&EvictionPolicyKind::ALL, s) {
            return Ok(PolicyOverride::Eviction(k));
        }
        if let Some(k) = lookup(&AdmissionPolicyKind::ALL, s) {
            return Ok(PolicyOverride::Admission(k));
        }
        if let Some(k) = lookup(&HotnessPolicyKind::ALL, s) {
            return Ok(PolicyOverride::Hotness(k));
        }
        if let Some(k) = lookup(&TenantSchedKind::ALL, s) {
            return Ok(PolicyOverride::TenantSched(k));
        }
        if let Some(k) = lookup(&MigrationPolicyKind::ALL, s) {
            return Ok(PolicyOverride::Migration(k));
        }
        if let Some(k) = lookup(&SchedPolicy::ALL, s) {
            return Ok(PolicyOverride::Sched(k));
        }
        if let Some(k) = lookup(&PlacementPolicyKind::ALL, s) {
            return Ok(PolicyOverride::Placement(k));
        }
        if let Some(k) = lookup(&RebalancePolicyKind::ALL, s) {
            return Ok(PolicyOverride::Rebalance(k));
        }
        Err(format!(
            "unknown policy '{s}' (valid: {})",
            PolicyOverride::all_names().join(", ")
        ))
    }
}

/// Applies a `--policy` name to the configuration, resolving it through the
/// unified registry.
///
/// # Errors
///
/// Returns the registry's "unknown policy" message (including the full valid
/// list) when `name` matches no dimension.
pub fn apply_policy_name(cfg: &mut SimConfig, name: &str) -> Result<(), String> {
    let over: PolicyOverride = name.parse()?;
    over.apply(cfg);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_config_is_the_pre_redesign_behaviour() {
        let p = PolicyConfig::default();
        assert_eq!(p.eviction, EvictionPolicyKind::PseudoLru);
        assert_eq!(p.admission, AdmissionPolicyKind::AdmitAll);
        assert_eq!(p.hotness, HotnessPolicyKind::Threshold);
        assert_eq!(p.tenant_sched, TenantSchedKind::Passthrough);
        assert!(p.is_default());
    }

    #[test]
    fn every_name_round_trips_through_the_registry() {
        for name in PolicyOverride::all_names() {
            let over: PolicyOverride = name.parse().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(over.to_string(), name, "Display must match the registry");
            // Case-insensitive.
            let upper: PolicyOverride = name.to_uppercase().parse().unwrap();
            assert_eq!(upper, over);
        }
    }

    #[test]
    fn registry_names_are_pairwise_distinct() {
        let names = PolicyOverride::all_names();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert!(
                    !a.eq_ignore_ascii_case(b),
                    "policy name '{a}' is ambiguous across dimensions"
                );
            }
        }
    }

    #[test]
    fn unknown_names_list_the_valid_registry() {
        let err = "flush-always".parse::<PolicyOverride>().unwrap_err();
        assert!(err.contains("unknown policy 'flush-always'"));
        for name in PolicyOverride::all_names() {
            assert!(err.contains(&name), "error must list '{name}'");
        }
    }

    #[test]
    fn overrides_apply_to_the_right_config_field() {
        let mut cfg = SimConfig::default();
        apply_policy_name(&mut cfg, "clock").unwrap();
        apply_policy_name(&mut cfg, "bypass-scan").unwrap();
        apply_policy_name(&mut cfg, "decay").unwrap();
        apply_policy_name(&mut cfg, "fair-share").unwrap();
        apply_policy_name(&mut cfg, "tpp").unwrap();
        apply_policy_name(&mut cfg, "rr").unwrap();
        assert_eq!(cfg.policy.eviction, EvictionPolicyKind::Clock);
        assert_eq!(cfg.policy.admission, AdmissionPolicyKind::BypassScan);
        assert_eq!(cfg.policy.hotness, HotnessPolicyKind::Decay);
        assert_eq!(cfg.policy.tenant_sched, TenantSchedKind::FairShare);
        assert_eq!(cfg.migration.policy, MigrationPolicyKind::Tpp);
        assert_eq!(cfg.sched_policy, SchedPolicy::RoundRobin);
        assert!(apply_policy_name(&mut cfg, "nope").is_err());
    }

    #[test]
    fn fleet_dimensions_parse_but_leave_device_config_untouched() {
        // Placement and rebalance are fleet-level: they resolve through the
        // registry, but applying them to a SimConfig must be a no-op so a
        // device fingerprint never depends on where the fleet placed it.
        let mut cfg = SimConfig::default();
        let before = format!("{cfg:?}");
        apply_policy_name(&mut cfg, "interference").unwrap();
        apply_policy_name(&mut cfg, "swap-worst").unwrap();
        assert_eq!(format!("{cfg:?}"), before);
        assert_eq!(
            "round-robin".parse::<PolicyOverride>().unwrap(),
            PolicyOverride::Placement(PlacementPolicyKind::RoundRobin),
            "'round-robin' (placement) must stay distinct from 'rr' (OS sched)"
        );
        assert_eq!(
            "pin".parse::<RebalancePolicyKind>().unwrap(),
            RebalancePolicyKind::Pin
        );
        assert!("first-fit".parse::<PlacementPolicyKind>().is_ok());
        assert!("nope".parse::<PlacementPolicyKind>().is_err());
        assert!("nope".parse::<RebalancePolicyKind>().is_err());
    }

    #[test]
    fn policy_config_serde_round_trip() {
        let p = PolicyConfig {
            eviction: EvictionPolicyKind::TwoQ,
            admission: AdmissionPolicyKind::BypassScan,
            hotness: HotnessPolicyKind::TopK,
            tenant_sched: TenantSchedKind::FairShare,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: PolicyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn sched_and_migration_kinds_parse_from_display_names() {
        assert_eq!("cfs".parse::<SchedPolicy>().unwrap(), SchedPolicy::Cfs);
        assert_eq!(
            "RR".parse::<SchedPolicy>().unwrap(),
            SchedPolicy::RoundRobin
        );
        assert_eq!(
            "adaptive".parse::<MigrationPolicyKind>().unwrap(),
            MigrationPolicyKind::Adaptive
        );
        assert!("fifo".parse::<SchedPolicy>().is_err());
        assert!("clock".parse::<MigrationPolicyKind>().is_err());
    }
}
