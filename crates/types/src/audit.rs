//! Conservation-invariant auditing primitives.
//!
//! The most dangerous bugs in a full-system simulator are *silent accounting
//! drift*: a refactor changes the numbers without failing a single
//! shape-asserting test. The audit machinery turns "do the numbers even
//! conserve?" into a mechanically checked question: each layer's counters are
//! tied together by **named invariants** (e.g. every classified request plus
//! every squashed access must equal the raw SSD access count), and a run that
//! violates one fails loudly with the invariant's name.
//!
//! This module only defines the report type; the invariants themselves live
//! next to the metrics they check (`skybyte_sim::audit`).
//!
//! # Example
//!
//! ```
//! use skybyte_types::AuditReport;
//! let mut report = AuditReport::new();
//! report.check("apples-conserved", 2 + 2 == 4, || "unreachable".into());
//! report.check("oranges-conserved", 1 + 1 == 3, || {
//!     "1 picked + 1 bought != 3 in the basket".into()
//! });
//! assert!(!report.is_clean());
//! assert_eq!(report.violated_names(), vec!["oranges-conserved"]);
//! assert_eq!(report.checked(), 2);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// One violated invariant: its stable name plus a human-readable account of
/// the numbers that failed to conserve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The stable, kebab-case name of the invariant (what tests and CI grep
    /// for).
    pub invariant: String,
    /// The concrete numbers that violated it.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The outcome of evaluating a set of named conservation invariants.
///
/// A clean report means every checked invariant held; a dirty one lists each
/// violation by name. [`AuditReport::assert_clean`] is the loud-failure entry
/// point used by tests and the audited runner.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Names of every invariant evaluated, in evaluation order.
    checked: Vec<String>,
    /// The invariants that did not hold.
    violations: Vec<Violation>,
}

impl AuditReport {
    /// Creates an empty report (no invariants checked yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates one named invariant: records the check, and records a
    /// violation (with the lazily built detail message) when `holds` is
    /// false.
    pub fn check(&mut self, invariant: &str, holds: bool, detail: impl FnOnce() -> String) {
        self.checked.push(invariant.to_string());
        if !holds {
            self.violations.push(Violation {
                invariant: invariant.to_string(),
                detail: detail(),
            });
        }
    }

    /// Number of invariants evaluated.
    pub fn checked(&self) -> usize {
        self.checked.len()
    }

    /// Names of every invariant evaluated, in order.
    pub fn checked_names(&self) -> Vec<&str> {
        self.checked.iter().map(String::as_str).collect()
    }

    /// Whether every checked invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, in evaluation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Names of the violated invariants, in evaluation order.
    pub fn violated_names(&self) -> Vec<&str> {
        self.violations
            .iter()
            .map(|v| v.invariant.as_str())
            .collect()
    }

    /// Whether the named invariant was checked and found violated.
    pub fn violated(&self, invariant: &str) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }

    /// Merges another report into this one (used when auditing a batch of
    /// runs).
    pub fn merge(&mut self, other: AuditReport) {
        self.checked.extend(other.checked);
        self.violations.extend(other.violations);
    }

    /// Panics with every violated invariant's name and detail if the report
    /// is dirty. `context` identifies the audited run in the panic message.
    ///
    /// # Panics
    ///
    /// Panics if any checked invariant was violated.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "conservation audit failed for {context}:\n{self}"
        );
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean ({} invariants checked)", self.checked());
        }
        writeln!(
            f,
            "audit violated {} of {} invariants:",
            self.violations.len(),
            self.checked()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders_and_asserts() {
        let mut r = AuditReport::new();
        r.check("a", true, || unreachable!("detail must be lazy"));
        assert!(r.is_clean());
        assert_eq!(r.checked(), 1);
        assert_eq!(r.checked_names(), vec!["a"]);
        assert!(r.violated_names().is_empty());
        r.assert_clean("test run");
        assert!(r.to_string().contains("audit clean (1 invariants checked)"));
    }

    #[test]
    fn violations_carry_name_and_detail() {
        let mut r = AuditReport::new();
        r.check("pages-conserved", false, || "3 + 4 != 8".to_string());
        r.check("time-monotone", true, || unreachable!());
        assert!(!r.is_clean());
        assert!(r.violated("pages-conserved"));
        assert!(!r.violated("time-monotone"));
        assert_eq!(r.violated_names(), vec!["pages-conserved"]);
        let rendered = r.to_string();
        assert!(rendered.contains("[pages-conserved] 3 + 4 != 8"));
        assert!(rendered.contains("1 of 2"));
    }

    #[test]
    #[should_panic(expected = "pages-conserved")]
    fn assert_clean_panics_with_the_invariant_name() {
        let mut r = AuditReport::new();
        r.check("pages-conserved", false, || "counts diverged".to_string());
        r.assert_clean("unit test");
    }

    #[test]
    fn merge_combines_checks_and_violations() {
        let mut a = AuditReport::new();
        a.check("x", true, || unreachable!());
        let mut b = AuditReport::new();
        b.check("y", false, || "bad".to_string());
        a.merge(b);
        assert_eq!(a.checked(), 2);
        assert!(a.violated("y"));
    }

    #[test]
    fn report_serialises() {
        let mut r = AuditReport::new();
        r.check("z", false, || "1 != 2".to_string());
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
