//! Strongly-typed addresses for every address space in a CXL-SSD system.
//!
//! The SkyByte system spans four address spaces:
//!
//! * **Host virtual addresses** ([`VirtAddr`]) — what the application issues.
//! * **Host/system physical addresses** ([`PhysAddr`]) — host DRAM plus the
//!   host-managed device memory (HDM) window of the CXL-SSD.
//! * **SSD logical page addresses** ([`Lpa`]) — the page index within the
//!   SSD's exported memory space; the write log and data cache are indexed by
//!   LPA (they sit *above* the FTL).
//! * **Flash physical page addresses** ([`Ppa`]) — channel/chip/die/plane/
//!   block/page coordinates produced by the FTL.
//!
//! Using newtypes for each space prevents the classic simulator bug of mixing
//! up page indices from different spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a CXL.mem transfer / CPU cacheline, in bytes.
pub const CACHELINE_SIZE: usize = 64;
/// Size of a flash page (and OS page), in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Number of cachelines per page.
pub const CACHELINES_PER_PAGE: usize = PAGE_SIZE / CACHELINE_SIZE;

/// Index of a cacheline within a page (0..=63).
pub type CachelineIndex = u8;

/// A generic page number (address divided by [`PAGE_SIZE`]) used where the
/// address space is implied by context.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageNumber(pub u64);

impl PageNumber {
    /// Returns the raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this page.
    #[inline]
    pub const fn base_address(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

impl fmt::Display for PageNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PN({:#x})", self.0)
    }
}

macro_rules! byte_addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from a raw byte value.
            #[inline]
            pub const fn new(addr: u64) -> Self {
                Self(addr)
            }

            /// The raw byte address.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// The page containing this address.
            #[inline]
            pub const fn page(self) -> PageNumber {
                PageNumber(self.0 / PAGE_SIZE as u64)
            }

            /// Byte offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_SIZE as u64
            }

            /// Index of the cacheline containing this address within its page
            /// (0..=63 for 4 KiB pages).
            #[inline]
            pub const fn cacheline_in_page(self) -> u64 {
                (self.0 % PAGE_SIZE as u64) / CACHELINE_SIZE as u64
            }

            /// The address rounded down to its cacheline boundary.
            #[inline]
            pub const fn cacheline_aligned(self) -> Self {
                Self(self.0 - self.0 % CACHELINE_SIZE as u64)
            }

            /// The address rounded down to its page boundary.
            #[inline]
            pub const fn page_aligned(self) -> Self {
                Self(self.0 - self.0 % PAGE_SIZE as u64)
            }

            /// Builds an address from a page number and a byte offset within
            /// the page.
            ///
            /// # Panics
            ///
            /// Panics if `offset >= PAGE_SIZE`.
            #[inline]
            pub fn from_page_and_offset(page: PageNumber, offset: u64) -> Self {
                assert!(
                    (offset as usize) < PAGE_SIZE,
                    "page offset {offset} out of range"
                );
                Self(page.base_address() + offset)
            }

            /// Returns the address advanced by `bytes`.
            #[inline]
            pub const fn offset(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(addr: u64) -> Self {
                Self(addr)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

byte_addr_type!(
    /// A host **virtual** byte address issued by an application thread.
    VirtAddr
);
byte_addr_type!(
    /// A host/system **physical** byte address. Depending on the memory map it
    /// refers either to host DRAM or to the HDM window of the CXL-SSD.
    PhysAddr
);

/// A **logical page address** inside the SSD: the page index within the SSD's
/// exported memory space, before FTL translation.
///
/// The write log and data cache of SkyByte are indexed by LPA because they sit
/// on top of the FTL (§III-B of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Lpa(pub u64);

impl Lpa {
    /// Creates a logical page address from a raw page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Lpa(index)
    }

    /// The raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Logical page that contains the given byte offset into the SSD memory
    /// space.
    #[inline]
    pub const fn containing(device_byte_offset: u64) -> Self {
        Lpa(device_byte_offset / PAGE_SIZE as u64)
    }

    /// Byte offset of the start of this logical page within the SSD memory
    /// space.
    #[inline]
    pub const fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

impl fmt::Display for Lpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LPA({:#x})", self.0)
    }
}

/// A **physical page address** in flash: the coordinates of a page inside the
/// channel/chip/die/plane/block/page hierarchy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ppa {
    /// Flash channel index.
    pub channel: u16,
    /// Chip index within the channel.
    pub chip: u16,
    /// Die index within the chip.
    pub die: u16,
    /// Plane index within the die.
    pub plane: u16,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Creates a physical page address from explicit coordinates.
    pub const fn new(channel: u16, chip: u16, die: u16, plane: u16, block: u32, page: u32) -> Self {
        Ppa {
            channel,
            chip,
            die,
            plane,
            block,
            page,
        }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PPA(ch{} chip{} die{} pl{} blk{} pg{})",
            self.channel, self.chip, self.die, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert_eq!(CACHELINES_PER_PAGE, 64);
        assert_eq!(PAGE_SIZE % CACHELINE_SIZE, 0);
    }

    #[test]
    fn virt_addr_decomposition() {
        let a = VirtAddr::new(3 * PAGE_SIZE as u64 + 2 * CACHELINE_SIZE as u64 + 7);
        assert_eq!(a.page().index(), 3);
        assert_eq!(a.page_offset(), 2 * 64 + 7);
        assert_eq!(a.cacheline_in_page(), 2);
        assert_eq!(a.cacheline_aligned().as_u64() % 64, 0);
        assert_eq!(a.page_aligned().as_u64(), 3 * 4096);
    }

    #[test]
    fn from_page_and_offset_round_trips() {
        let p = PageNumber(42);
        let a = PhysAddr::from_page_and_offset(p, 100);
        assert_eq!(a.page(), p);
        assert_eq!(a.page_offset(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_page_and_offset_rejects_large_offset() {
        let _ = VirtAddr::from_page_and_offset(PageNumber(1), PAGE_SIZE as u64);
    }

    #[test]
    fn lpa_containing() {
        assert_eq!(Lpa::containing(0), Lpa::new(0));
        assert_eq!(Lpa::containing(4095), Lpa::new(0));
        assert_eq!(Lpa::containing(4096), Lpa::new(1));
        assert_eq!(Lpa::new(5).byte_offset(), 5 * 4096);
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert!(!format!("{}", VirtAddr::new(1)).is_empty());
        assert!(!format!("{}", PhysAddr::new(1)).is_empty());
        assert!(!format!("{}", Lpa::new(1)).is_empty());
        assert!(!format!("{}", Ppa::new(1, 2, 3, 0, 4, 5)).is_empty());
        assert!(!format!("{}", PageNumber(9)).is_empty());
    }

    #[test]
    fn conversions_to_and_from_u64() {
        let a: VirtAddr = 12345u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 12345);
    }

    #[test]
    fn ppa_ordering_and_hashing() {
        use std::collections::HashSet;
        let a = Ppa::new(0, 0, 0, 0, 1, 2);
        let b = Ppa::new(0, 0, 0, 0, 1, 3);
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
    }
}
