//! Flash command descriptors.

use serde::{Deserialize, Serialize};
use skybyte_types::{FlashTimingConfig, Nanos, Ppa};
use std::fmt;

/// The three NAND operations and their Table IV timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashCommandKind {
    /// Page read (tR).
    Read,
    /// Page program (tProg).
    Program,
    /// Block erase (tBERS).
    Erase,
}

impl FlashCommandKind {
    /// Latency of this command under the given NAND timing.
    pub fn latency(self, timing: &FlashTimingConfig) -> Nanos {
        match self {
            FlashCommandKind::Read => timing.read_latency,
            FlashCommandKind::Program => timing.program_latency,
            FlashCommandKind::Erase => timing.erase_latency,
        }
    }
}

impl fmt::Display for FlashCommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlashCommandKind::Read => "read",
            FlashCommandKind::Program => "program",
            FlashCommandKind::Erase => "erase",
        };
        f.write_str(s)
    }
}

/// A flash command in flight: what, where, and when it will finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashCommand {
    /// Operation type.
    pub kind: FlashCommandKind,
    /// Target physical page (for erases, the page field is ignored).
    pub target: Ppa,
    /// Time the command was submitted to the channel queue.
    pub submitted_at: Nanos,
    /// Time the command starts occupying the channel.
    pub starts_at: Nanos,
    /// Time the command completes.
    pub completes_at: Nanos,
}

impl FlashCommand {
    /// Time spent waiting in the queue before service began.
    pub fn queueing_delay(&self) -> Nanos {
        self.starts_at.saturating_sub(self.submitted_at)
    }

    /// Total latency from submission to completion.
    pub fn total_latency(&self) -> Nanos {
        self.completes_at.saturating_sub(self.submitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::NandKind;

    #[test]
    fn latencies_follow_table4() {
        let t = FlashTimingConfig::for_kind(NandKind::Ull);
        assert_eq!(FlashCommandKind::Read.latency(&t), Nanos::from_micros(3));
        assert_eq!(
            FlashCommandKind::Program.latency(&t),
            Nanos::from_micros(100)
        );
        assert_eq!(
            FlashCommandKind::Erase.latency(&t),
            Nanos::from_micros(1000)
        );
    }

    #[test]
    fn command_delays() {
        let c = FlashCommand {
            kind: FlashCommandKind::Read,
            target: Ppa::default(),
            submitted_at: Nanos::new(100),
            starts_at: Nanos::new(250),
            completes_at: Nanos::new(3_250),
        };
        assert_eq!(c.queueing_delay(), Nanos::new(150));
        assert_eq!(c.total_latency(), Nanos::new(3_150));
    }

    #[test]
    fn display_names() {
        assert_eq!(FlashCommandKind::Read.to_string(), "read");
        assert_eq!(FlashCommandKind::Program.to_string(), "program");
        assert_eq!(FlashCommandKind::Erase.to_string(), "erase");
    }
}
