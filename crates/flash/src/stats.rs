//! Aggregate flash-array statistics.

use serde::{Deserialize, Serialize};
use skybyte_types::{Nanos, PAGE_SIZE};

/// Counters describing all traffic that has reached the flash chips.
///
/// `pages_programmed` is the quantity plotted in Figure 18 / Figure 20 of the
/// paper ("flash write traffic"); the read/erase counters feed the AMAT and
/// GC analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Number of page reads issued to flash chips.
    pub pages_read: u64,
    /// Number of page programs issued to flash chips.
    pub pages_programmed: u64,
    /// Number of block erases issued to flash chips.
    pub blocks_erased: u64,
    /// Sum of end-to-end latencies (queueing + service) of all page reads.
    pub total_read_latency: Nanos,
    /// Sum of end-to-end latencies of all page programs.
    pub total_program_latency: Nanos,
}

impl FlashStats {
    /// Bytes written to the flash chips so far.
    pub fn bytes_programmed(&self) -> u64 {
        self.pages_programmed * PAGE_SIZE as u64
    }

    /// Bytes read from the flash chips so far.
    pub fn bytes_read(&self) -> u64 {
        self.pages_read * PAGE_SIZE as u64
    }

    /// Average end-to-end flash read latency (Table III of the paper).
    pub fn avg_read_latency(&self) -> Nanos {
        if self.pages_read == 0 {
            Nanos::ZERO
        } else {
            self.total_read_latency / self.pages_read
        }
    }

    /// Average end-to-end flash program latency.
    pub fn avg_program_latency(&self) -> Nanos {
        if self.pages_programmed == 0 {
            Nanos::ZERO
        } else {
            self.total_program_latency / self.pages_programmed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversions() {
        let s = FlashStats {
            pages_read: 3,
            pages_programmed: 2,
            ..Default::default()
        };
        assert_eq!(s.bytes_read(), 3 * 4096);
        assert_eq!(s.bytes_programmed(), 2 * 4096);
    }

    #[test]
    fn averages_handle_zero() {
        let s = FlashStats::default();
        assert_eq!(s.avg_read_latency(), Nanos::ZERO);
        assert_eq!(s.avg_program_latency(), Nanos::ZERO);
    }

    #[test]
    fn averages_divide_totals() {
        let s = FlashStats {
            pages_read: 4,
            total_read_latency: Nanos::from_micros(20),
            pages_programmed: 2,
            total_program_latency: Nanos::from_micros(300),
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), Nanos::from_micros(5));
        assert_eq!(s.avg_program_latency(), Nanos::from_micros(150));
    }
}
