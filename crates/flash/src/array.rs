//! The flash array: geometry plus one [`ChannelQueue`] per channel.

use crate::channel::{ChannelQueue, QueueCounters};
use crate::command::{FlashCommand, FlashCommandKind};
use crate::stats::FlashStats;
use serde::{Deserialize, Serialize};
use skybyte_types::{FlashTimingConfig, Nanos, Ppa, SsdGeometry};

/// A timing model of the whole NAND flash array.
///
/// The array owns one FIFO [`ChannelQueue`] per channel. Commands addressed to
/// the same channel are serialised; different channels proceed in parallel,
/// which is how SkyByte's log compaction exploits channel parallelism when
/// flushing coalesced pages (§III-B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashArray {
    geometry: SsdGeometry,
    timing: FlashTimingConfig,
    channels: Vec<ChannelQueue>,
    stats: FlashStats,
}

impl FlashArray {
    /// Creates an idle flash array with the given geometry and NAND timing.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has zero channels.
    pub fn new(geometry: SsdGeometry, timing: FlashTimingConfig) -> Self {
        assert!(
            geometry.channels > 0,
            "flash array needs at least 1 channel"
        );
        FlashArray {
            geometry,
            timing,
            channels: (0..geometry.channels)
                .map(|_| ChannelQueue::new())
                .collect(),
            stats: FlashStats::default(),
        }
    }

    /// The flash geometry this array models.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// The NAND timing parameters in use.
    pub fn timing(&self) -> &FlashTimingConfig {
        &self.timing
    }

    /// Submits a command to the channel named by `ppa.channel` at time `now`
    /// and returns its completion time.
    ///
    /// # Panics
    ///
    /// Panics if `ppa.channel` is outside the configured geometry.
    pub fn submit(&mut self, kind: FlashCommandKind, ppa: Ppa, now: Nanos) -> Nanos {
        self.submit_command(kind, ppa, now).completes_at
    }

    /// Submits a command and returns the full [`FlashCommand`] record
    /// (submission, start, completion times).
    pub fn submit_command(&mut self, kind: FlashCommandKind, ppa: Ppa, now: Nanos) -> FlashCommand {
        let ch = ppa.channel as usize;
        assert!(
            ch < self.channels.len(),
            "channel {ch} out of range ({} channels)",
            self.channels.len()
        );
        let cmd = self.channels[ch].submit(kind, ppa, now, &self.timing);
        match kind {
            FlashCommandKind::Read => {
                self.stats.pages_read += 1;
                self.stats.total_read_latency += cmd.total_latency();
            }
            FlashCommandKind::Program => {
                self.stats.pages_programmed += 1;
                self.stats.total_program_latency += cmd.total_latency();
            }
            FlashCommandKind::Erase => self.stats.blocks_erased += 1,
        }
        cmd
    }

    /// Retires completed commands on every channel up to time `now`.
    pub fn retire_completed(&mut self, now: Nanos) -> Vec<FlashCommand> {
        let mut out = Vec::new();
        for ch in &mut self.channels {
            out.extend(ch.retire_completed(now));
        }
        out
    }

    /// Queue counters of the channel that `ppa` maps to — the input to the
    /// context-switch trigger policy (Algorithm 1, line 4).
    pub fn channel_counters(&self, ppa: Ppa) -> QueueCounters {
        self.channels[ppa.channel as usize].counters()
    }

    /// Estimated latency of a new read issued to the channel of `ppa`,
    /// per Algorithm 1 lines 5–6.
    pub fn estimate_read_latency(&self, ppa: Ppa) -> Nanos {
        self.channel_counters(ppa)
            .estimate_read_latency(&self.timing)
    }

    /// The channel with the shortest backlog at time `now`; used by log
    /// compaction to spread page flushes across channels.
    pub fn least_busy_channel(&self) -> u16 {
        self.channels
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| q.busy_until())
            .map(|(i, _)| i as u16)
            .expect("at least one channel")
    }

    /// Aggregate busy time across all channels (for bandwidth utilisation).
    pub fn total_busy_time(&self) -> Nanos {
        self.channels.iter().map(|c| c.busy_time()).sum()
    }

    /// Aggregate busy time attributable to the window `[0, horizon]` (see
    /// [`ChannelQueue::busy_time_within`]). Bounded by
    /// `horizon * channel_count` by construction, which the cross-layer
    /// conservation audit asserts.
    pub fn busy_time_within(&self, horizon: Nanos) -> Nanos {
        self.channels
            .iter()
            .map(|c| c.busy_time_within(horizon))
            .sum()
    }

    /// Time at which every channel is idle.
    pub fn all_idle_at(&self) -> Nanos {
        self.channels
            .iter()
            .map(|c| c.busy_until())
            .fold(Nanos::ZERO, Nanos::max)
    }

    /// Whether every channel queue is empty.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(ChannelQueue::is_idle)
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Per-channel queue depths (commands accepted but not yet retired),
    /// indexed by channel. A read-only telemetry probe: retirement is lazy,
    /// so this reflects the backlog as of the last `retire_completed` call.
    pub fn channel_depths(&self) -> Vec<usize> {
        self.channels.iter().map(ChannelQueue::depth).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::{NandKind, SsdConfig};

    fn small_array() -> FlashArray {
        let geometry = SsdGeometry {
            channels: 4,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_size_bytes: 4096,
        };
        FlashArray::new(geometry, FlashTimingConfig::for_kind(NandKind::Ull))
    }

    #[test]
    fn default_geometry_matches_table2() {
        let cfg = SsdConfig::default();
        let arr = FlashArray::new(cfg.geometry, cfg.flash);
        assert_eq!(arr.channel_count(), 16);
        assert_eq!(arr.geometry().total_bytes(), 128 << 30);
    }

    #[test]
    fn channels_are_independent() {
        let mut arr = small_array();
        let a = arr.submit(
            FlashCommandKind::Read,
            Ppa::new(0, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        let b = arr.submit(
            FlashCommandKind::Read,
            Ppa::new(1, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        // Different channels: both finish after one tR.
        assert_eq!(a, Nanos::from_micros(3));
        assert_eq!(b, Nanos::from_micros(3));
        // Same channel: serialised.
        let c = arr.submit(
            FlashCommandKind::Read,
            Ppa::new(0, 0, 0, 0, 0, 1),
            Nanos::ZERO,
        );
        assert_eq!(c, Nanos::from_micros(6));
    }

    #[test]
    fn stats_accumulate() {
        let mut arr = small_array();
        arr.submit(
            FlashCommandKind::Read,
            Ppa::new(0, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        arr.submit(
            FlashCommandKind::Program,
            Ppa::new(1, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        arr.submit(
            FlashCommandKind::Erase,
            Ppa::new(2, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        let s = arr.stats();
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.pages_programmed, 1);
        assert_eq!(s.blocks_erased, 1);
        assert_eq!(s.avg_read_latency(), Nanos::from_micros(3));
        assert_eq!(s.avg_program_latency(), Nanos::from_micros(100));
    }

    #[test]
    fn estimate_tracks_queue_contents() {
        let mut arr = small_array();
        let target = Ppa::new(2, 0, 0, 0, 0, 0);
        assert_eq!(arr.estimate_read_latency(target), Nanos::from_micros(3));
        arr.submit(FlashCommandKind::Program, target, Nanos::ZERO);
        assert_eq!(arr.estimate_read_latency(target), Nanos::from_micros(103));
        arr.submit(FlashCommandKind::Erase, target, Nanos::ZERO);
        assert_eq!(arr.estimate_read_latency(target), Nanos::from_micros(1103));
        // Other channels are unaffected.
        assert_eq!(
            arr.estimate_read_latency(Ppa::new(3, 0, 0, 0, 0, 0)),
            Nanos::from_micros(3)
        );
        // After retirement the estimate drops back.
        arr.retire_completed(Nanos::from_secs(1));
        assert_eq!(arr.estimate_read_latency(target), Nanos::from_micros(3));
    }

    #[test]
    fn least_busy_channel_prefers_idle() {
        let mut arr = small_array();
        arr.submit(
            FlashCommandKind::Erase,
            Ppa::new(0, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        arr.submit(
            FlashCommandKind::Program,
            Ppa::new(1, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        let ch = arr.least_busy_channel();
        assert!(ch == 2 || ch == 3, "expected an idle channel, got {ch}");
    }

    #[test]
    fn idle_tracking() {
        let mut arr = small_array();
        assert!(arr.is_idle());
        arr.submit(
            FlashCommandKind::Read,
            Ppa::new(0, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
        assert!(!arr.is_idle());
        assert_eq!(arr.all_idle_at(), Nanos::from_micros(3));
        arr.retire_completed(Nanos::from_micros(3));
        assert!(arr.is_idle());
        assert_eq!(arr.total_busy_time(), Nanos::from_micros(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_channel() {
        let mut arr = small_array();
        arr.submit(
            FlashCommandKind::Read,
            Ppa::new(99, 0, 0, 0, 0, 0),
            Nanos::ZERO,
        );
    }
}
