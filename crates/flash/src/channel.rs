//! Per-channel command queue with read priority.
//!
//! The paper's latency-estimation policy (Algorithm 1) inspects the number of
//! queued reads, programs and erases on the channel a request maps to, and
//! estimates the request's delay as the sum of the service times of everything
//! ahead of it. [`ChannelQueue`] maintains exactly that state: the set of
//! in-flight commands, the time the channel becomes idle, and per-kind
//! counters of queued commands.
//!
//! Service order is **read-prioritised**: reads serialise only behind other
//! reads, while programs and erases queue behind all previously accepted
//! work. This models the program/erase suspension that ultra-low-latency
//! NAND (e.g. Z-NAND, Table II's default flash) provides, and it is what
//! keeps the average flash read latency in the few-microsecond range of the
//! paper's Table III even while background compaction or GC streams 100 µs
//! programs to the same channel. Algorithm 1's estimate deliberately still
//! counts queued programs/erases, making it a conservative upper bound —
//! exactly the role it plays as the context-switch trigger heuristic.

use crate::command::{FlashCommand, FlashCommandKind};
use serde::{Deserialize, Serialize};
use skybyte_types::{FlashTimingConfig, Nanos, Ppa};
use std::collections::VecDeque;

/// Counts of commands currently queued or in service on one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Queued/in-service page reads.
    pub reads: u32,
    /// Queued/in-service page programs.
    pub writes: u32,
    /// Queued/in-service block erases.
    pub erases: u32,
}

impl QueueCounters {
    /// Total number of commands outstanding.
    pub fn total(&self) -> u32 {
        self.reads + self.writes + self.erases
    }

    /// Implements line 5–6 of Algorithm 1: the estimated latency of a *new*
    /// read arriving behind the queued work.
    ///
    /// `est = read_lat * (num_read + 1) + write_lat * num_write + erase_lat * num_erase`
    pub fn estimate_read_latency(&self, timing: &FlashTimingConfig) -> Nanos {
        timing.read_latency.scaled(self.reads as u64 + 1)
            + timing.program_latency.scaled(self.writes as u64)
            + timing.erase_latency.scaled(self.erases as u64)
    }
}

/// A read-prioritised command queue for a single flash channel.
///
/// Reads serialise behind previously accepted reads only (suspending any
/// program/erase in service); programs and erases serialise behind all
/// previously accepted work.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChannelQueue {
    /// In-flight reads in submission order. Each read waits for every earlier
    /// read (`read_busy_until` only grows), so completion times are monotone
    /// within this queue and retirement is a pop-front loop.
    inflight_reads: VecDeque<(u64, FlashCommand)>,
    /// In-flight programs/erases in submission order. They serialise behind
    /// all previously accepted work (`busy_until` is non-decreasing), so this
    /// queue is completion-monotone too. The `u64` on both queues is a
    /// submission sequence number used to break completion-time ties exactly
    /// as a stable sort over one combined submission-ordered queue would.
    inflight_writes: VecDeque<(u64, FlashCommand)>,
    /// Next submission sequence number.
    seq: u64,
    /// Time at which the channel finishes its last accepted command.
    busy_until: Nanos,
    /// Time at which the last accepted *read* completes (the priority lane).
    read_busy_until: Nanos,
    /// Earliest completion time among in-flight commands (`Nanos::MAX` when
    /// idle); lets [`ChannelQueue::retire_completed`] exit in O(1) when
    /// nothing is done.
    earliest_completion: Nanos,
    /// Cumulative busy time of the channel (for bandwidth-utilisation stats).
    busy_time: Nanos,
    counters: QueueCounters,
}

impl ChannelQueue {
    /// Creates an idle channel queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a command at time `now` and returns the full command record,
    /// including its completion time.
    pub fn submit(
        &mut self,
        kind: FlashCommandKind,
        target: Ppa,
        now: Nanos,
        timing: &FlashTimingConfig,
    ) -> FlashCommand {
        let service = kind.latency(timing);
        let starts_at = match kind {
            // Reads pre-empt programs/erases (suspension) and wait only for
            // earlier reads.
            FlashCommandKind::Read => now.max(self.read_busy_until),
            FlashCommandKind::Program | FlashCommandKind::Erase => now.max(self.busy_until),
        };
        let completes_at = starts_at + service;
        match kind {
            FlashCommandKind::Read => {
                self.read_busy_until = completes_at;
                // A read landing inside pending program/erase work suspends
                // it: the channel loses the read's service time, so the
                // suspended work (and anything accepted after it) resumes
                // that much later. This keeps total service per wall-clock
                // within the channel's physical capacity.
                self.busy_until = if self.busy_until > starts_at {
                    self.busy_until + service
                } else {
                    completes_at
                };
            }
            FlashCommandKind::Program | FlashCommandKind::Erase => {
                self.busy_until = completes_at;
            }
        }
        self.busy_time += service;
        match kind {
            FlashCommandKind::Read => self.counters.reads += 1,
            FlashCommandKind::Program => self.counters.writes += 1,
            FlashCommandKind::Erase => self.counters.erases += 1,
        }
        let cmd = FlashCommand {
            kind,
            target,
            submitted_at: now,
            starts_at,
            completes_at,
        };
        self.earliest_completion = self.earliest_completion.min(completes_at);
        let seq = self.seq;
        self.seq += 1;
        match kind {
            FlashCommandKind::Read => self.inflight_reads.push_back((seq, cmd)),
            FlashCommandKind::Program | FlashCommandKind::Erase => {
                self.inflight_writes.push_back((seq, cmd))
            }
        }
        cmd
    }

    /// Earliest completion among the in-flight queues (`Nanos::MAX` when
    /// idle). Both queues are completion-monotone, so only the fronts matter.
    fn next_completion(&self) -> Nanos {
        let r = self
            .inflight_reads
            .front()
            .map_or(Nanos::MAX, |&(_, c)| c.completes_at);
        let w = self
            .inflight_writes
            .front()
            .map_or(Nanos::MAX, |&(_, c)| c.completes_at);
        r.min(w)
    }

    /// Retires every command that has completed by `now`, updating the queue
    /// counters, and returns the retired commands in completion order.
    ///
    /// Because reads overtake programs/erases, completion times are not
    /// monotone in submission order; every completed command is retired, not
    /// just a completed prefix.
    pub fn retire_completed(&mut self, now: Nanos) -> Vec<FlashCommand> {
        // Fast path: this runs on every SSD access; skip the pops when the
        // earliest outstanding completion is still in the future.
        if now < self.earliest_completion {
            return Vec::new();
        }
        // Both queues are completion-monotone, so every completed command sits
        // at a front; merging the fronts by (completion, submission seq)
        // reproduces the completion order a stable sort over one combined
        // submission-ordered queue would give.
        let mut done = Vec::new();
        loop {
            let r = self
                .inflight_reads
                .front()
                .filter(|&&(_, c)| c.completes_at <= now);
            let w = self
                .inflight_writes
                .front()
                .filter(|&&(_, c)| c.completes_at <= now);
            let take_read = match (r, w) {
                (Some(&(rs, rc)), Some(&(ws, wc))) => (rc.completes_at, rs) < (wc.completes_at, ws),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (_, cmd) = if take_read {
                self.inflight_reads.pop_front().expect("front checked")
            } else {
                self.inflight_writes.pop_front().expect("front checked")
            };
            match cmd.kind {
                FlashCommandKind::Read => self.counters.reads -= 1,
                FlashCommandKind::Program => self.counters.writes -= 1,
                FlashCommandKind::Erase => self.counters.erases -= 1,
            }
            done.push(cmd);
        }
        self.earliest_completion = self.next_completion();
        done
    }

    /// Current per-kind counters of queued/in-service commands.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Number of commands still queued or in service.
    pub fn depth(&self) -> usize {
        self.inflight_reads.len() + self.inflight_writes.len()
    }

    /// Time at which the channel becomes idle given everything submitted so
    /// far.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Total time this channel has spent (or is committed to spend) servicing
    /// commands.
    pub fn busy_time(&self) -> Nanos {
        self.busy_time
    }

    /// Busy time attributable to the window `[0, horizon]`.
    ///
    /// [`busy_time`](Self::busy_time) charges the full service time of every
    /// accepted command, including work committed beyond `horizon` (a backlog
    /// still draining when the measured run ends). Because the channel works
    /// without gaps while backlogged, the service committed past `horizon` is
    /// exactly `busy_until - horizon`, so subtracting it yields the busy time
    /// that actually falls inside the window — guaranteed `<= horizon`, which
    /// is what makes bandwidth-utilisation ratios genuinely `<= 1` instead of
    /// needing a clamp.
    pub fn busy_time_within(&self, horizon: Nanos) -> Nanos {
        let overhang = self.busy_until.saturating_sub(horizon);
        self.busy_time.saturating_sub(overhang)
    }

    /// Whether no commands are outstanding.
    pub fn is_idle(&self) -> bool {
        self.inflight_reads.is_empty() && self.inflight_writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::NandKind;

    fn timing() -> FlashTimingConfig {
        FlashTimingConfig::for_kind(NandKind::Ull)
    }

    #[test]
    fn back_to_back_reads_serialise() {
        let mut q = ChannelQueue::new();
        let t = timing();
        let a = q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        let b = q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        assert_eq!(a.completes_at, Nanos::from_micros(3));
        assert_eq!(b.starts_at, a.completes_at);
        assert_eq!(b.completes_at, Nanos::from_micros(6));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.counters().reads, 2);
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut q = ChannelQueue::new();
        let t = timing();
        let a = q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        // Submit long after the first finished: starts immediately.
        let late = Nanos::from_micros(50);
        let b = q.submit(FlashCommandKind::Read, Ppa::default(), late, &t);
        assert_eq!(b.starts_at, late);
        assert_eq!(b.queueing_delay(), Nanos::ZERO);
        assert!(a.completes_at < b.starts_at);
    }

    #[test]
    fn retire_updates_counters() {
        let mut q = ChannelQueue::new();
        let t = timing();
        q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        q.submit(FlashCommandKind::Program, Ppa::default(), Nanos::ZERO, &t);
        q.submit(FlashCommandKind::Erase, Ppa::default(), Nanos::ZERO, &t);
        assert_eq!(q.counters().total(), 3);

        // After tR the read is done.
        let retired = q.retire_completed(Nanos::from_micros(3));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].kind, FlashCommandKind::Read);
        assert_eq!(q.counters().reads, 0);
        assert_eq!(q.counters().total(), 2);

        // Far in the future everything drains.
        let retired = q.retire_completed(Nanos::from_secs(1));
        assert_eq!(retired.len(), 2);
        assert!(q.is_idle());
        assert_eq!(q.counters().total(), 0);
    }

    #[test]
    fn estimate_matches_algorithm1() {
        let t = timing();
        let c = QueueCounters {
            reads: 2,
            writes: 1,
            erases: 1,
        };
        // 3us * (2+1) + 100us * 1 + 1000us * 1 = 1109us
        assert_eq!(c.estimate_read_latency(&t), Nanos::from_micros(1109));
        let empty = QueueCounters::default();
        assert_eq!(empty.estimate_read_latency(&t), Nanos::from_micros(3));
    }

    #[test]
    fn busy_time_accumulates_service_only() {
        let mut q = ChannelQueue::new();
        let t = timing();
        q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        q.submit(
            FlashCommandKind::Program,
            Ppa::default(),
            Nanos::from_micros(500),
            &t,
        );
        assert_eq!(q.busy_time(), Nanos::from_micros(103));
        assert_eq!(q.busy_until(), Nanos::from_micros(600));
    }

    #[test]
    fn windowed_busy_time_excludes_the_draining_backlog() {
        let mut q = ChannelQueue::new();
        let t = timing();
        // A program committed at t=0 runs 0..100us.
        q.submit(FlashCommandKind::Program, Ppa::default(), Nanos::ZERO, &t);
        // Another queues behind it: 100..200us.
        q.submit(FlashCommandKind::Program, Ppa::default(), Nanos::ZERO, &t);
        assert_eq!(q.busy_time(), Nanos::from_micros(200));
        // A horizon mid-way through the second program only counts the part
        // of the committed service that falls inside the window.
        assert_eq!(
            q.busy_time_within(Nanos::from_micros(150)),
            Nanos::from_micros(150)
        );
        // A horizon past the drain sees the full busy time.
        assert_eq!(
            q.busy_time_within(Nanos::from_micros(500)),
            Nanos::from_micros(200)
        );
        // Windowed busy time never exceeds the horizon.
        for h in [0u64, 1, 50, 99, 100, 199] {
            assert!(q.busy_time_within(Nanos::from_micros(h)) <= Nanos::from_micros(h));
        }
    }

    #[test]
    fn reads_preempt_erases_but_the_estimate_still_counts_them() {
        // A read arriving behind a GC erase suspends it and is serviced at
        // tR, while Algorithm 1's estimate still charges the queued erase —
        // the interference signal the trigger policy keys on.
        let mut q = ChannelQueue::new();
        let t = timing();
        q.submit(FlashCommandKind::Erase, Ppa::default(), Nanos::ZERO, &t);
        let r = q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        assert_eq!(r.starts_at, Nanos::ZERO);
        assert_eq!(r.total_latency(), Nanos::from_micros(3));
        // tR * (1 queued read + 1) + tBERS * 1 erase.
        assert_eq!(
            q.counters().estimate_read_latency(&t),
            Nanos::from_micros(6) + Nanos::from_micros(1000)
        );
    }

    #[test]
    fn reads_serialise_behind_reads_and_delay_later_programs() {
        let mut q = ChannelQueue::new();
        let t = timing();
        let a = q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        let b = q.submit(FlashCommandKind::Read, Ppa::default(), Nanos::ZERO, &t);
        assert_eq!(a.completes_at, Nanos::from_micros(3));
        assert_eq!(b.starts_at, a.completes_at);
        // A program accepted afterwards waits for the channel, reads included.
        let p = q.submit(FlashCommandKind::Program, Ppa::default(), Nanos::ZERO, &t);
        assert_eq!(p.starts_at, b.completes_at);
    }
}
