//! NAND flash array timing model.
//!
//! This crate is the lowest substrate of the SkyByte stack: it models the
//! physical flash array of the CXL-SSD described in Table II of the paper —
//! 16 channels × 8 chips/channel × 8 dies/chip × 1 plane/die × 128
//! blocks/plane × 256 pages/block of 4 KiB pages (128 GiB) — together with the
//! per-channel FIFO command queues whose occupancy drives the latency
//! estimation of the coordinated context-switch trigger policy (Algorithm 1).
//!
//! The model is *timing only*: page payloads are carried by upper layers
//! (write log / data cache); this crate answers "when will this flash command
//! complete and how busy is each channel".
//!
//! # Example
//!
//! ```
//! use skybyte_flash::{FlashArray, FlashCommandKind};
//! use skybyte_types::prelude::*;
//!
//! let cfg = SsdConfig::default();
//! let mut flash = FlashArray::new(cfg.geometry, cfg.flash);
//! let ppa = Ppa::new(0, 0, 0, 0, 0, 0);
//! let done = flash.submit(FlashCommandKind::Read, ppa, Nanos::ZERO);
//! assert_eq!(done, Nanos::from_micros(3)); // tR of Z-NAND
//! // A second read on the same channel queues behind the first.
//! let done2 = flash.submit(FlashCommandKind::Read, ppa, Nanos::ZERO);
//! assert_eq!(done2, Nanos::from_micros(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod channel;
mod command;
mod stats;

pub use array::FlashArray;
pub use channel::{ChannelQueue, QueueCounters};
pub use command::{FlashCommand, FlashCommandKind};
pub use stats::FlashStats;
