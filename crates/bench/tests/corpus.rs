//! Integration tests of the golden-trace regression corpus.

use skybyte_bench::corpus::{entries, pin, pin_entries, verify, CORPUS_VARIANTS};
use skybyte_sim::audit::audit_with_telemetry;
use skybyte_sim::SimResult;
use skybyte_types::{Nanos, TelemetryConfig};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skybyte-corpus-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The checked-in corpus at the repository root.
fn repo_corpus() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("corpus")
}

#[test]
fn checked_in_corpus_verifies_clean() {
    let report = verify(&repo_corpus(), 2).expect("verify must run");
    assert_eq!(
        report.pairs,
        entries().len() * CORPUS_VARIANTS.len(),
        "every trace x variant pair must be covered"
    );
    assert!(
        report.is_clean(),
        "checked-in corpus diverged:\n{}",
        report.render_failures()
    );
}

#[test]
fn corpus_replays_bit_identically_with_telemetry_enabled() {
    // Telemetry is observe-only: replaying every corpus pair with the
    // sampler and timeline enabled must still reproduce the pinned goldens
    // field by field, and each run's final cumulative sample must tie to its
    // layer counters (the `telemetry-final-agreement` invariant).
    let corpus = repo_corpus();
    let telemetry = TelemetryConfig {
        enabled: true,
        sample_interval: Nanos::from_micros(10),
        timeline: true,
    };
    for entry in entries() {
        for variant in CORPUS_VARIANTS {
            let (result, output) = entry
                .replay_with_telemetry(&corpus, variant, telemetry)
                .expect("corpus replay with telemetry");
            let output = output.expect("telemetry was enabled");
            let golden_json = std::fs::read_to_string(entry.golden_path(&corpus, variant)).unwrap();
            let golden: SimResult = serde_json::from_str(&golden_json).unwrap();
            let diff = result.diff_fields(&golden);
            assert!(
                diff.is_empty(),
                "{} under {variant}: telemetry perturbed the replay:\n{}",
                entry.name,
                diff.join("\n")
            );
            audit_with_telemetry(&result, Some(&output.final_sample))
                .assert_clean(&format!("{} under {variant} with telemetry", entry.name));
        }
    }
}

#[test]
fn filtered_pin_writes_only_the_named_entries() {
    let full = scratch("pin-full");
    pin(&full, 2).unwrap();
    let filtered = scratch("pin-one");
    pin_entries(&filtered, 2, Some(&["hot-page".to_string()])).unwrap();
    // Only hot-page's trace and goldens exist in the filtered pin…
    let names: Vec<String> = std::fs::read_dir(filtered.join("traces"))
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, vec!["hot-page.sbt"]);
    let goldens = std::fs::read_dir(filtered.join("golden")).unwrap().count();
    assert_eq!(goldens, CORPUS_VARIANTS.len());
    // …and they are byte-identical to a full pin's (the filter changes
    // which files are written, never their contents).
    for sub in ["traces", "golden"] {
        for f in std::fs::read_dir(filtered.join(sub)).unwrap() {
            let name = f.unwrap().file_name();
            assert_eq!(
                std::fs::read(filtered.join(sub).join(&name)).unwrap(),
                std::fs::read(full.join(sub).join(&name)).unwrap(),
                "{sub}/{name:?}"
            );
        }
    }
    std::fs::remove_dir_all(&full).ok();
    std::fs::remove_dir_all(&filtered).ok();
}

#[test]
fn pinning_is_byte_identical_across_job_counts() {
    let a = scratch("pin-j1");
    let b = scratch("pin-j4");
    pin(&a, 1).unwrap();
    pin(&b, 4).unwrap();
    for sub in ["traces", "golden"] {
        let mut names: Vec<_> = std::fs::read_dir(a.join(sub))
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names.sort();
        assert!(!names.is_empty());
        for name in names {
            let x = std::fs::read(a.join(sub).join(&name)).unwrap();
            let y = std::fs::read(b.join(sub).join(&name)).unwrap();
            assert_eq!(x, y, "{sub}/{name:?} differs between --jobs 1 and 4");
        }
    }
    // And a freshly pinned corpus trivially verifies.
    let report = verify(&a, 4).unwrap();
    assert!(report.is_clean(), "{}", report.render_failures());
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn verification_reports_the_divergent_fields() {
    let dir = scratch("tamper");
    pin(&dir, 2).unwrap();
    // Tamper with one golden's exec_time: the diff must name the field and
    // only that pair may fail.
    let victim = entries()[0].golden_path(&dir, CORPUS_VARIANTS[0]);
    let json = std::fs::read_to_string(&victim).unwrap();
    let tampered = json.replacen("\"exec_time\": ", "\"exec_time\": 1", 1);
    assert_ne!(json, tampered, "tampering must change the golden");
    std::fs::write(&victim, tampered).unwrap();
    let report = verify(&dir, 2).unwrap();
    assert_eq!(report.failures.len(), 1, "{}", report.render_failures());
    let failure = &report.failures[0];
    assert!(
        failure.contains("exec_time:"),
        "diff must name the field: {failure}"
    );
    assert!(
        failure.contains(entries()[0].name),
        "diff must name the pair: {failure}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_goldens_point_at_pin() {
    let dir = scratch("missing");
    pin(&dir, 2).unwrap();
    std::fs::remove_file(entries()[1].golden_path(&dir, CORPUS_VARIANTS[1])).unwrap();
    let report = verify(&dir, 2).unwrap();
    assert_eq!(report.failures.len(), 1);
    assert!(
        report.failures[0].contains("--pin"),
        "{}",
        report.failures[0]
    );
    std::fs::remove_dir_all(&dir).ok();
}
