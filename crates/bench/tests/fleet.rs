//! Integration tests of the fleet layer: the multi-device placement sweep
//! as the `figures` CLI drives it (`--fig fleet`), plus the cross-runner
//! memoization and policy-registry seams the unit tests cannot cover from
//! inside `skybyte-sim`.

use skybyte_sim::fleet::{fleet_population, FLEET_PLACEMENTS};
use skybyte_sim::{audit_fleet, figure_table_named, run_fleet, FleetConfig};
use skybyte_sim::{ExperimentScale, Runner};
use skybyte_types::{PlacementPolicyKind, PolicyOverride, SimConfig, VariantKind};

/// The whole figure, exactly as `figures --fig fleet --audit` resolves it,
/// must render byte-identically for any worker count: placement, rebalance
/// and the percentile reductions are all deterministic, and the runner's
/// memo table only changes *when* a simulation executes, never its result.
#[test]
fn fleet_figure_is_byte_identical_across_job_counts() {
    let scale = ExperimentScale::tiny();
    let csvs: Vec<String> = [1usize, 4]
        .into_iter()
        .map(|jobs| {
            let runner = Runner::new(jobs).with_audit(true);
            figure_table_named(&runner, "fleet", &scale)
                .expect("'fleet' is a registered figure name")
                .to_csv()
        })
        .collect();
    assert_eq!(csvs[0], csvs[1], "--jobs must not change the table");
    let header = csvs[0].lines().next().unwrap();
    for column in ["p99_slowdown", "p999_slowdown", "jain_fairness"] {
        assert!(header.contains(column), "missing column {column}: {header}");
    }
}

/// Placements that compose the same tenant sets onto devices (regardless of
/// which device index hosts them) share memoized simulations: running the
/// same fleet twice — and under a second placement that produces the same
/// per-device compositions — executes zero new simulations.
#[test]
fn equal_compositions_share_the_memo_table_across_fleet_runs() {
    let scale = ExperimentScale::tiny();
    let runner = Runner::new(2).with_audit(true);
    let mut cfg = FleetConfig::new(2, VariantKind::SkyByteFull, scale);
    // A homogeneous population: every placement yields identical devices.
    cfg.tenants = fleet_population(&cfg.scale, 2, 8)
        .into_iter()
        .map(|mut t| {
            t.workload = skybyte_workloads::WorkloadKind::Ycsb;
            t
        })
        .collect();
    let first = run_fleet(&runner, &cfg);
    audit_fleet(&first).assert_clean("fleet first-fit");
    let executed_after_first = runner.runs_executed();
    assert!(executed_after_first > 0);
    // Round-robin re-distributes the same homogeneous tenants, so every
    // per-device simulation is already memoized. (Interference-aware
    // placement is excluded here: its probe co-runs are extra simulations
    // by design.)
    cfg.placement = PlacementPolicyKind::RoundRobin;
    let again = run_fleet(&runner, &cfg);
    audit_fleet(&again).assert_clean("fleet re-placement");
    assert_eq!(again.slowdowns.len(), first.slowdowns.len());
    assert_eq!(
        runner.runs_executed(),
        executed_after_first,
        "re-placing a homogeneous population must be pure memo hits"
    );
    assert!(runner.memo_hits() > 0);
}

/// Every placement policy produces a clean, conserving fleet at tiny scale,
/// and the per-tenant slowdown vector is strictly positive with a sane
/// fairness index.
#[test]
fn every_placement_policy_runs_a_clean_fleet() {
    let scale = ExperimentScale::tiny();
    let runner = Runner::new(2).with_audit(true);
    for placement in FLEET_PLACEMENTS {
        let mut cfg = FleetConfig::new(2, VariantKind::SkyByteFull, scale);
        cfg.tenants = fleet_population(&cfg.scale, 2, 8);
        cfg.placement = placement;
        let result = run_fleet(&runner, &cfg);
        audit_fleet(&result).assert_clean(&format!("fleet {placement}"));
        assert_eq!(result.tenant_count(), 8);
        assert!(result.slowdowns.iter().all(|&s| s > 0.0), "{placement}");
        let jain = result.jain_fairness();
        assert!(jain > 0.0 && jain <= 1.0 + 1e-12, "{placement}: {jain}");
        assert!(result.slowdown_percentile(0.99) >= result.slowdown_percentile(0.50));
    }
}

/// The fleet dimensions ride the same `--policy` registry as the device
/// dimensions, and applying them to a device config is a no-op — that
/// no-op is what keeps single-device goldens (and the memo table) unaware
/// of placement.
#[test]
fn fleet_policy_names_resolve_and_leave_device_configs_untouched() {
    let placement: PolicyOverride = "round-robin".parse().unwrap();
    assert!(matches!(placement, PolicyOverride::Placement(_)));
    let rebalance: PolicyOverride = "swap-worst".parse().unwrap();
    assert!(matches!(rebalance, PolicyOverride::Rebalance(_)));
    // "rr" still names the per-device OS scheduling policy.
    let sched: PolicyOverride = "rr".parse().unwrap();
    assert!(!matches!(sched, PolicyOverride::Placement(_)));

    let base = SimConfig::default();
    let mut cfg = base.clone();
    placement.apply(&mut cfg);
    rebalance.apply(&mut cfg);
    assert_eq!(
        format!("{base:?}"),
        format!("{cfg:?}"),
        "fleet dimensions must not touch the device fingerprint"
    );
}
