//! Microbenchmarks of the SkyByte building blocks.
//!
//! These measure the data structures on the critical path of the SSD
//! controller (write-log append/lookup/compaction, data-cache access, FTL
//! writes under GC pressure, MSHR churn, scheduler picks, flash-queue
//! estimation). They correspond to the FPGA prototype measurements of §V
//! (index lookup latencies) and to the ablation knobs called out in
//! DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skybyte_cache::{DataCache, MshrFile, WriteLog};
use skybyte_flash::{FlashArray, FlashCommandKind};
use skybyte_ftl::Ftl;
use skybyte_os::{BlockReason, Scheduler};
use skybyte_ssd::SsdController;
use skybyte_types::prelude::*;
use skybyte_types::SsdGeometry;
use std::time::Duration;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name.to_string());
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1500));
    g
}

fn bench_write_log(c: &mut Criterion) {
    let mut g = group(c, "write_log");
    g.bench_function("append_lookup_1k", |b| {
        b.iter(|| {
            let mut log = WriteLog::new(1 << 20, 0.75);
            for i in 0..1_000u64 {
                log.append(Lpa::new(i % 64), (i % 64) as u8, i);
            }
            for i in 0..1_000u64 {
                black_box(log.lookup(Lpa::new(i % 64), (i % 64) as u8));
            }
        })
    });
    g.bench_function("compaction_plan_4k_entries", |b| {
        b.iter(|| {
            let mut log = WriteLog::new(1 << 20, 0.75);
            for i in 0..4_000u64 {
                log.append(Lpa::new(i % 128), (i % 64) as u8, i);
            }
            let plan = log.start_compaction().expect("plan");
            log.finish_compaction();
            black_box(plan.page_count())
        })
    });
    g.finish();
}

fn bench_data_cache(c: &mut Criterion) {
    let mut g = group(c, "data_cache");
    g.bench_function("insert_access_evict_4k", |b| {
        b.iter(|| {
            let mut cache = DataCache::new(256 * 4096, 16);
            for i in 0..4_000u64 {
                cache.insert(Lpa::new(i % 1024));
                cache.access(Lpa::new(i % 1024), (i % 64) as u8);
            }
            black_box(cache.stats().evictions)
        })
    });
    g.finish();
}

fn bench_ftl_and_flash(c: &mut Criterion) {
    let mut g = group(c, "ftl_flash");
    let geometry = SsdGeometry {
        channels: 8,
        chips_per_channel: 2,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_size_bytes: 4096,
    };
    g.bench_function("ftl_writes_with_gc_8k", |b| {
        b.iter(|| {
            let cfg = SsdConfig {
                geometry,
                ..SsdConfig::default()
            };
            let mut flash = FlashArray::new(cfg.geometry, cfg.flash);
            let mut ftl = Ftl::new(&cfg);
            let mut now = Nanos::ZERO;
            for i in 0..8_000u64 {
                ftl.write_page(Lpa::new(i % 4_096), now, &mut flash);
                now += Nanos::new(500);
            }
            black_box(ftl.stats().gc_campaigns)
        })
    });
    g.bench_function("flash_queue_estimation_10k", |b| {
        let cfg = SsdConfig::default();
        let mut flash = FlashArray::new(geometry, cfg.flash);
        for i in 0..64u32 {
            flash.submit(
                FlashCommandKind::Program,
                Ppa::new((i % 8) as u16, 0, 0, 0, 0, i),
                Nanos::ZERO,
            );
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u32 {
                acc += flash
                    .estimate_read_latency(Ppa::new((i % 8) as u16, 0, 0, 0, 0, 0))
                    .as_nanos();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_mshr_and_scheduler(c: &mut Criterion) {
    let mut g = group(c, "host_side");
    g.bench_function("mshr_allocate_complete_4k", |b| {
        b.iter(|| {
            let mut mshrs: MshrFile<u64, u32> = MshrFile::new(1024);
            for i in 0..4_000u64 {
                mshrs.allocate(i % 512, i as u32);
                if i % 3 == 0 {
                    mshrs.complete(&(i % 512));
                }
            }
            black_box(mshrs.occupancy())
        })
    });
    g.bench_function("cfs_schedule_yield_4k", |b| {
        b.iter(|| {
            let mut sched = Scheduler::new(SchedPolicy::Cfs, Nanos::from_micros(2), 1);
            for _ in 0..24 {
                sched.spawn();
            }
            let mut now = Nanos::ZERO;
            for core in 0..8u32 {
                sched.schedule_on(core, now);
            }
            for i in 0..4_000u64 {
                let core = (i % 8) as u32;
                if let Some(t) = sched.running_on(core) {
                    sched.account_runtime(t, Nanos::new(200));
                }
                sched.yield_current(
                    core,
                    now,
                    now + Nanos::from_micros(3),
                    BlockReason::LongSsdAccess,
                );
                sched.schedule_on(core, now);
                now += Nanos::new(500);
            }
            black_box(sched.stats().context_switches)
        })
    });
    g.finish();
}

fn bench_ssd_controller(c: &mut Criterion) {
    let mut g = group(c, "ssd_controller");
    let mut cfg = SimConfig::default().with_variant(VariantKind::SkyByteFull);
    cfg.ssd.geometry = SsdGeometry {
        channels: 8,
        chips_per_channel: 2,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_size_bytes: 4096,
    };
    cfg.ssd.dram.data_cache_bytes = 2 << 20;
    cfg.ssd.dram.write_log_bytes = 256 << 10;
    g.bench_function("mixed_requests_10k", |b| {
        b.iter(|| {
            let mut ssd = SsdController::new(&cfg);
            ssd.precondition((0..2_048).map(Lpa::new));
            let mut now = Nanos::ZERO;
            for i in 0..10_000u64 {
                let lpa = Lpa::new((i * 7) % 2_048);
                let cl = (i % 64) as u8;
                if i % 4 == 0 {
                    black_box(ssd.handle_write(lpa, cl, now));
                } else {
                    black_box(ssd.handle_read(lpa, cl, now));
                }
                now += Nanos::new(300);
            }
            black_box(ssd.stats().total_accesses())
        })
    });
    g.finish();
}

criterion_group!(
    components,
    bench_write_log,
    bench_data_cache,
    bench_ftl_and_flash,
    bench_mshr_and_scheduler,
    bench_ssd_controller
);
criterion_main!(components);
