//! Criterion benchmarks that regenerate each data-carrying figure and table
//! of the SkyByte paper.
//!
//! Every benchmark iteration executes the corresponding experiment of
//! [`skybyte_sim::experiments`] end to end (all simulations behind that
//! figure) at a micro scale, so `cargo bench` both exercises the full harness
//! and reports how long each figure takes to regenerate. Use the `figures`
//! binary for larger, more faithful scales.

use criterion::{criterion_group, criterion_main, Criterion};
use skybyte_sim::experiments as exp;
use skybyte_sim::{ExperimentScale, Runner};
use std::time::Duration;

/// A deliberately small scale so each figure regenerates in well under a
/// second per iteration in release mode.
fn micro_scale() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(120)
}

/// A fresh sequential runner per iteration: memoization would otherwise turn
/// every iteration after the first into a cache lookup, and a single worker
/// keeps the timings comparable across hosts.
fn fresh_runner() -> Runner {
    Runner::new(1)
}

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group
}

fn bench_motivation_figures(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = configure(c);
    group.bench_function("figure_02_dram_vs_cssd", |b| {
        b.iter(|| exp::fig02_dram_vs_cssd(&fresh_runner(), &scale))
    });
    group.bench_function("figure_03_latency_distribution", |b| {
        b.iter(|| exp::fig03_latency_distribution(&fresh_runner(), &scale))
    });
    group.bench_function("figure_04_boundedness", |b| {
        b.iter(|| exp::fig04_boundedness(&fresh_runner(), &scale))
    });
    group.bench_function("figure_05_read_locality_cdf", |b| {
        b.iter(|| exp::fig05_06_locality_cdf(&scale, false))
    });
    group.bench_function("figure_06_write_locality_cdf", |b| {
        b.iter(|| exp::fig05_06_locality_cdf(&scale, true))
    });
    group.finish();
}

fn bench_design_figures(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = configure(c);
    group.bench_function("figure_09_threshold_sweep", |b| {
        b.iter(|| exp::fig09_threshold_sweep(&fresh_runner(), &scale))
    });
    group.bench_function("figure_10_sched_policies", |b| {
        b.iter(|| exp::fig10_sched_policies(&fresh_runner(), &scale))
    });
    group.finish();
}

fn bench_main_evaluation_figures(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = configure(c);
    group.bench_function("figure_14_main_ablation", |b| {
        b.iter(|| exp::fig14_main_ablation(&fresh_runner(), &scale))
    });
    group.bench_function("figure_15_thread_scaling", |b| {
        b.iter(|| exp::fig15_thread_scaling(&fresh_runner(), &scale))
    });
    group.bench_function("figure_16_request_breakdown", |b| {
        b.iter(|| exp::fig16_request_breakdown(&fresh_runner(), &scale))
    });
    group.bench_function("figure_17_amat", |b| {
        b.iter(|| exp::fig17_amat(&fresh_runner(), &scale))
    });
    group.bench_function("figure_18_write_traffic", |b| {
        b.iter(|| exp::fig18_write_traffic(&fresh_runner(), &scale))
    });
    group.finish();
}

fn bench_sensitivity_figures(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = configure(c);
    group.bench_function("figure_19_20_write_log_sweep", |b| {
        b.iter(|| exp::fig19_20_write_log_sweep(&fresh_runner(), &scale))
    });
    group.bench_function("figure_21_dram_size_sweep", |b| {
        b.iter(|| exp::fig21_dram_size_sweep(&fresh_runner(), &scale))
    });
    group.bench_function("figure_22_flash_latency_sweep", |b| {
        b.iter(|| exp::fig22_flash_latency_sweep(&fresh_runner(), &scale))
    });
    group.bench_function("figure_23_migration_mechanisms", |b| {
        b.iter(|| exp::fig23_migration_mechanisms(&fresh_runner(), &scale))
    });
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = configure(c);
    group.bench_function("table_1_workloads", |b| b.iter(exp::table1_workloads));
    group.bench_function("table_2_parameters", |b| b.iter(exp::table2_parameters));
    group.bench_function("table_3_flash_read_latency", |b| {
        b.iter(|| exp::table3_flash_read_latency(&fresh_runner(), &scale))
    });
    group.bench_function("table_4_nand_parameters", |b| {
        b.iter(exp::table4_nand_parameters)
    });
    group.finish();
}

criterion_group!(
    paper_figures,
    bench_motivation_figures,
    bench_design_figures,
    bench_main_evaluation_figures,
    bench_sensitivity_figures,
    bench_tables
);
criterion_main!(paper_figures);
