//! Shared helpers for the SkyByte benchmark harness.
//!
//! The actual deliverables of this crate are:
//!
//! * `cargo run -p skybyte-bench --bin figures [-- --fig N | --table N |
//!   --all] [--jobs N]` — regenerates the data series of every table and
//!   figure of the paper's evaluation section on a parallel, memoizing
//!   [`Runner`] and prints them as plain-text tables;
//! * `cargo bench -p skybyte-bench` — Criterion benchmarks: one group per
//!   headline evaluation figure (at a reduced scale so the suite finishes on
//!   a laptop) plus microbenchmarks of the core data structures (write-log
//!   append/lookup/compaction, FTL writes with GC, data-cache operations,
//!   scheduler picks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use skybyte_sim::runner::default_parallelism;
use skybyte_sim::{ExperimentScale, Runner};

/// The scale used by the Criterion figure benchmarks: small enough that one
/// simulation takes well under a second.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::bench().with_accesses_per_thread(1_500)
}

/// The scale used by the `figures` binary by default (can be overridden with
/// `--scale tiny|bench|default`).
pub fn figures_scale(name: &str) -> Option<ExperimentScale> {
    match name {
        "tiny" => Some(ExperimentScale::tiny()),
        "bench" => Some(ExperimentScale::bench()),
        "default" | "paper" => Some(ExperimentScale::default_scale()),
        _ => None,
    }
}

/// Builds the memoizing simulation runner shared by everything one harness
/// invocation regenerates: `jobs == None` sizes the worker pool to the
/// host's available parallelism (the `--jobs` default).
pub fn harness_runner(jobs: Option<usize>) -> Runner {
    Runner::new(jobs.unwrap_or_else(default_parallelism))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve_by_name() {
        assert!(figures_scale("tiny").is_some());
        assert!(figures_scale("bench").is_some());
        assert!(figures_scale("default").is_some());
        assert!(figures_scale("paper").is_some());
        assert!(figures_scale("bogus").is_none());
        assert!(bench_scale().accesses_per_thread <= 2_000);
    }

    #[test]
    fn harness_runner_resolves_jobs() {
        assert_eq!(harness_runner(Some(3)).jobs(), 3);
        assert!(harness_runner(None).jobs() >= 1);
    }
}
