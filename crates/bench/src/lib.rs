//! Shared helpers for the SkyByte benchmark harness.
//!
//! The actual deliverables of this crate are:
//!
//! * `cargo run -p skybyte-bench --bin figures [-- --fig N | --table N | --all]`
//!   — regenerates the data series of every table and figure of the paper's
//!   evaluation section and prints them as plain-text tables (optionally as
//!   JSON with `--json`);
//! * `cargo bench -p skybyte-bench` — Criterion benchmarks: one group per
//!   headline evaluation figure (at a reduced scale so the suite finishes on
//!   a laptop) plus microbenchmarks of the core data structures (write-log
//!   append/lookup/compaction, FTL writes with GC, data-cache operations,
//!   scheduler picks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use skybyte_sim::ExperimentScale;

/// The scale used by the Criterion figure benchmarks: small enough that one
/// simulation takes well under a second.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::bench().with_accesses_per_thread(1_500)
}

/// The scale used by the `figures` binary by default (can be overridden with
/// `--scale tiny|bench|default`).
pub fn figures_scale(name: &str) -> Option<ExperimentScale> {
    match name {
        "tiny" => Some(ExperimentScale::tiny()),
        "bench" => Some(ExperimentScale::bench()),
        "default" | "paper" => Some(ExperimentScale::default_scale()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve_by_name() {
        assert!(figures_scale("tiny").is_some());
        assert!(figures_scale("bench").is_some());
        assert!(figures_scale("default").is_some());
        assert!(figures_scale("paper").is_some());
        assert!(figures_scale("bogus").is_none());
        assert!(bench_scale().accesses_per_thread <= 2_000);
    }
}
