//! Shared helpers for the SkyByte benchmark harness.
//!
//! The actual deliverables of this crate are:
//!
//! * `cargo run -p skybyte-bench --bin figures [-- --fig N | --table N |
//!   --all] [--jobs N] [--out DIR] [--record-dir DIR | --replay-dir DIR]` —
//!   regenerates the data series of every table and figure of the paper's
//!   evaluation section on a parallel, memoizing [`Runner`], prints them as
//!   plain-text tables, optionally exports them as CSV, and can record or
//!   replay the underlying workload traces;
//! * `cargo run -p skybyte-bench --bin trace -- <record|replay|stat|mix>` —
//!   the standalone trace toolbox over `.sbt` files (see `skybyte-trace`);
//! * `cargo bench -p skybyte-bench` — Criterion benchmarks: one group per
//!   headline evaluation figure (at a reduced scale so the suite finishes on
//!   a laptop) plus microbenchmarks of the core data structures (write-log
//!   append/lookup/compaction, FTL writes with GC, data-cache operations,
//!   scheduler picks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;

use skybyte_sim::runner::default_parallelism;
use skybyte_sim::{ExperimentScale, Runner, SimResult, Simulation, TelemetryOutput};
use skybyte_trace::TraceHeader;
use skybyte_types::{PolicyOverride, SimConfig, TelemetryConfig, VariantKind};
use skybyte_workloads::WorkloadKind;
use std::path::Path;

/// The scale used by the Criterion figure benchmarks: small enough that one
/// simulation takes well under a second.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::bench().with_accesses_per_thread(1_500)
}

/// The scale used by the `figures` binary by default (can be overridden with
/// `--scale tiny|bench|default`).
pub fn figures_scale(name: &str) -> Option<ExperimentScale> {
    match name {
        "tiny" => Some(ExperimentScale::tiny()),
        "bench" => Some(ExperimentScale::bench()),
        "default" | "paper" => Some(ExperimentScale::default_scale()),
        _ => None,
    }
}

/// Builds the memoizing simulation runner shared by everything one harness
/// invocation regenerates: `jobs == None` sizes the worker pool to the
/// host's available parallelism (the `--jobs` default).
pub fn harness_runner(jobs: Option<usize>) -> Runner {
    Runner::new(jobs.unwrap_or_else(default_parallelism))
}

/// Parses a design-variant name as printed by the paper (case-insensitive),
/// e.g. `"SkyByte-Full"` or `"base-cssd"`.
pub fn variant_from_name(name: &str) -> Option<VariantKind> {
    VariantKind::ALL
        .into_iter()
        .find(|v| v.to_string().eq_ignore_ascii_case(name))
}

/// Replays an `.sbt` trace file as one full simulation: the trace (via its
/// `header`) defines the footprint, thread count and amount of work, `scale`
/// defines the simulated device around it, `policies` selects off-default
/// policies (empty for the pinned defaults — what the golden corpus passes),
/// and `workload` is the label the result carries.
///
/// This is the single replay-configuration path shared by `trace replay` and
/// the golden corpus ([`corpus`]), so the two can never drift apart. It
/// enforces the capacity guard: composed/shifted traces can outgrow the
/// chosen device, and every built-in scale keeps footprint ≤ flash/2 for GC
/// headroom — failing with a hint beats an FTL panic mid-simulation.
pub fn replay_trace_file(
    path: &Path,
    header: &TraceHeader,
    variant: VariantKind,
    workload: WorkloadKind,
    scale: ExperimentScale,
    policies: &[PolicyOverride],
) -> Result<SimResult, String> {
    replay_trace_file_with_telemetry(
        path,
        header,
        variant,
        workload,
        scale,
        policies,
        TelemetryConfig::default(),
    )
    .map(|(result, _)| result)
}

/// [`replay_trace_file`] with telemetry riding along: when
/// `telemetry.enabled` the returned [`TelemetryOutput`] carries the sampled
/// metrics and (optionally) the Chrome-trace timeline of the replay.
/// Telemetry is observe-only, so the [`SimResult`] is bit-identical to the
/// plain path — the golden corpus verifies against either.
pub fn replay_trace_file_with_telemetry(
    path: &Path,
    header: &TraceHeader,
    variant: VariantKind,
    workload: WorkloadKind,
    scale: ExperimentScale,
    policies: &[PolicyOverride],
    telemetry: TelemetryConfig,
) -> Result<(SimResult, Option<TelemetryOutput>), String> {
    let scale = scale.with_footprint(header.footprint_bytes);
    if header.footprint_bytes.saturating_mul(2) > scale.flash_bytes() {
        return Err(format!(
            "trace footprint ({} bytes) needs a flash device of at least 2x \
             that size, but this scale provides {} bytes; pick a larger \
             --scale (tiny|bench|default)",
            header.footprint_bytes,
            scale.flash_bytes()
        ));
    }
    let mut cfg = scale
        .apply(SimConfig::default().with_variant(variant))
        .with_threads(header.threads);
    for p in policies {
        p.apply(&mut cfg);
    }
    cfg = cfg.with_telemetry(telemetry);
    Simulation::with_config(cfg, workload, &scale)
        .run_trace_file_with_telemetry(path)
        .map_err(|e| format!("replay failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve_by_name() {
        assert!(figures_scale("tiny").is_some());
        assert!(figures_scale("bench").is_some());
        assert!(figures_scale("default").is_some());
        assert!(figures_scale("paper").is_some());
        assert!(figures_scale("bogus").is_none());
        assert!(bench_scale().accesses_per_thread <= 2_000);
    }

    #[test]
    fn harness_runner_resolves_jobs() {
        assert_eq!(harness_runner(Some(3)).jobs(), 3);
        assert!(harness_runner(None).jobs() >= 1);
    }

    #[test]
    fn variants_resolve_by_paper_name() {
        for v in VariantKind::ALL {
            assert_eq!(variant_from_name(&v.to_string()), Some(v));
            assert_eq!(variant_from_name(&v.to_string().to_lowercase()), Some(v));
        }
        assert_eq!(variant_from_name("SkyByte-Turbo"), None);
    }
}
