//! Regenerates the data series of every table and figure of the SkyByte
//! paper's evaluation section.
//!
//! ```text
//! cargo run --release -p skybyte-bench --bin figures -- --all
//! cargo run --release -p skybyte-bench --bin figures -- --fig 14 --scale bench
//! cargo run --release -p skybyte-bench --bin figures -- --fig mt --audit
//! cargo run --release -p skybyte-bench --bin figures -- --all --jobs 8
//! cargo run --release -p skybyte-bench --bin figures -- --all --out results/
//! cargo run --release -p skybyte-bench --bin figures -- --fig 14 --record-dir traces/
//! cargo run --release -p skybyte-bench --bin figures -- --fig 14 --replay-dir traces/
//! ```
//!
//! All simulations of one invocation run on a shared parallel, memoizing
//! runner (`--jobs N` workers, defaulting to the host's available
//! parallelism), so baselines needed by several figures are simulated once.
//! `--out DIR` additionally writes each regenerated table as `DIR/<id>.csv`
//! for plotting. `--record-dir DIR` tees every simulation's consumed
//! workload stream to an `.sbt` trace in `DIR`; `--replay-dir DIR` drives
//! the simulations from those traces instead of the live generators —
//! replayed output is bit-identical to the recorded run.
//!
//! Figures 1, 7, 8, 11, 12 and 13 are architecture diagrams without data
//! series and are therefore not listed.

use skybyte_bench::{figures_scale, harness_runner};
use skybyte_sim::report::{figure_table_named, paper_table, render, DATA_FIGURES};
use skybyte_sim::{chrome_trace_json, metrics_csv, ExperimentScale, TraceDrive};
use skybyte_types::{Nanos, PolicyOverride, TelemetryConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    /// Requested figures: paper figure numbers (`"14"`) or named
    /// repository experiments (`"mt"`, `"policy"`).
    figures: Vec<String>,
    tables: Vec<u32>,
    scale: ExperimentScale,
    all: bool,
    jobs: Option<usize>,
    out: Option<PathBuf>,
    drive: TraceDrive,
    audit: bool,
    /// Write a machine-readable engine-throughput report (`--perf`,
    /// optionally `--perf PATH`; defaults to `perf.json`).
    perf: Option<PathBuf>,
    /// Policy names applied to every simulation (`--policy <name>`,
    /// repeatable), resolved through the unified registry.
    policies: Vec<PolicyOverride>,
    /// Write the merged telemetry time series of every executed run as CSV
    /// (`--metrics PATH`).
    metrics: Option<PathBuf>,
    /// Write the merged Chrome trace-event timeline of every executed run
    /// (`--timeline PATH`).
    timeline: Option<PathBuf>,
    /// Telemetry sampling cadence in microseconds of simulated time
    /// (`--sample-us N`, default 10).
    sample_us: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        figures: Vec::new(),
        tables: Vec::new(),
        scale: ExperimentScale::bench(),
        all: false,
        jobs: None,
        out: None,
        drive: TraceDrive::Synthetic,
        audit: false,
        perf: None,
        policies: Vec::new(),
        metrics: None,
        timeline: None,
        sample_us: 10,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => opts.all = true,
            "--fig" | "--figure" => {
                i += 1;
                let name = args
                    .get(i)
                    .ok_or("--fig requires a number, 'mt', 'policy' or 'fleet'")?;
                if name != "mt" && name != "policy" && name != "fleet" {
                    name.parse::<u32>()
                        .map_err(|e| format!("invalid figure number: {e}"))?;
                }
                opts.figures.push(name.clone());
            }
            "--policy" => {
                i += 1;
                let name = args.get(i).ok_or("--policy requires a policy name")?;
                opts.policies.push(name.parse::<PolicyOverride>()?);
            }
            "--table" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or("--table requires a number")?
                    .parse::<u32>()
                    .map_err(|e| format!("invalid table number: {e}"))?;
                opts.tables.push(n);
            }
            "--scale" => {
                i += 1;
                let name = args.get(i).ok_or("--scale requires a name")?;
                opts.scale = figures_scale(name)
                    .ok_or_else(|| format!("unknown scale '{name}' (tiny|bench|default)"))?;
            }
            "--jobs" | "-j" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or("--jobs requires a number")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid job count: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(n);
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).ok_or("--out requires a directory")?;
                opts.out = Some(PathBuf::from(dir));
            }
            "--record-dir" => {
                i += 1;
                let dir = args.get(i).ok_or("--record-dir requires a directory")?;
                if opts.drive != TraceDrive::Synthetic {
                    return Err("--record-dir and --replay-dir are mutually exclusive".into());
                }
                opts.drive = TraceDrive::Record {
                    dir: PathBuf::from(dir),
                };
            }
            "--replay-dir" => {
                i += 1;
                let dir = args.get(i).ok_or("--replay-dir requires a directory")?;
                if opts.drive != TraceDrive::Synthetic {
                    return Err("--record-dir and --replay-dir are mutually exclusive".into());
                }
                opts.drive = TraceDrive::Replay {
                    dir: PathBuf::from(dir),
                };
            }
            "--audit" => opts.audit = true,
            "--metrics" => {
                i += 1;
                let path = args.get(i).ok_or("--metrics requires a path")?;
                opts.metrics = Some(PathBuf::from(path));
            }
            "--timeline" => {
                i += 1;
                let path = args.get(i).ok_or("--timeline requires a path")?;
                opts.timeline = Some(PathBuf::from(path));
            }
            "--sample-us" => {
                i += 1;
                let us = args
                    .get(i)
                    .ok_or("--sample-us requires a number")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid sample interval: {e}"))?;
                if us == 0 {
                    return Err("--sample-us must be at least 1".to_string());
                }
                opts.sample_us = us;
            }
            "--perf" => {
                // An optional path may follow; anything starting with `--`
                // is the next flag, not a path.
                let path = match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        PathBuf::from(next)
                    }
                    _ => PathBuf::from("perf.json"),
                };
                opts.perf = Some(path);
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--all] [--fig N|mt|policy|fleet]... [--table N]... \
                     [--scale tiny|bench|default] [--jobs N] [--out DIR] \
                     [--record-dir DIR | --replay-dir DIR] [--audit] [--policy NAME]...\n\n\
                     --fig mt           the multi-tenant interference experiment\n\
                     \u{20}                  (ycsb + tpcc co-located, per-tenant slowdown vs solo)\n\
                     --fig policy       the pluggable-policy ablation (eviction x hotness,\n\
                     \u{20}                  plus admission and tenant-scheduling contenders)\n\
                     --fig fleet        the multi-device fleet sweep (placement policy x\n\
                     \u{20}                  fleet size, per-tenant tail slowdown + fairness)\n\
                     --policy NAME      apply a policy to every simulation (repeatable;\n\
                     \u{20}                  e.g. clock, 2q, bypass-scan, decay, topk,\n\
                     \u{20}                  fair-share, tpp, rr — unified name registry)\n\
                     --out DIR          also write each regenerated table as DIR/<id>.csv\n\
                     --record-dir DIR   tee every simulation's workload stream to .sbt traces\n\
                     --replay-dir DIR   drive the simulations from recorded .sbt traces\n\
                     --audit            run the cross-layer conservation audit on every\n\
                     \u{20}                  simulation and fail on any violated invariant\n\
                     --perf [PATH]      write a machine-readable engine-throughput report\n\
                     \u{20}                  (per-run wall clock + accesses/sec; default perf.json)\n\
                     --metrics PATH     write the telemetry time series of every executed\n\
                     \u{20}                  simulation as one merged CSV (observe-only)\n\
                     --timeline PATH    write a merged Chrome trace-event timeline of every\n\
                     \u{20}                  executed simulation (open in Perfetto)\n\
                     --sample-us N      telemetry sampling cadence in simulated microseconds\n\
                     \u{20}                  (default 10)\n\
                     (see the `trace` binary for standalone record/replay/stat/mix)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if !opts.all && opts.figures.is_empty() && opts.tables.is_empty() {
        // Default: the headline results.
        opts.figures = vec!["14".into(), "18".into()];
        opts.tables = vec![1, 3];
    }
    Ok(opts)
}

/// Regenerates, prints and (optionally) CSV-exports every requested table
/// and figure; returns the number of CSV files written.
fn regenerate(
    runner: &skybyte_sim::Runner,
    opts: &Options,
    tables: Vec<u32>,
    figures: Vec<String>,
) -> Result<usize, String> {
    let mut exported = 0usize;
    let all = tables
        .into_iter()
        .map(|n| (n.to_string(), true))
        .chain(figures.into_iter().map(|n| (n, false)));
    for (n, is_table) in all {
        let table = if is_table {
            paper_table(runner, n.parse().expect("table numbers"), &opts.scale)
        } else {
            figure_table_named(runner, &n, &opts.scale)?
        };
        println!("{}", render(&table));
        if let Some(dir) = &opts.out {
            let path = dir.join(format!("{}.csv", table.id));
            std::fs::write(&path, table.to_csv())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            exported += 1;
        }
    }
    Ok(exported)
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("simulation panicked")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (figures, tables) = if opts.all {
        // `--all` regenerates every paper figure plus the repository's own
        // multi-tenant experiments. Trace drives are single-tenant
        // (multi-tenant runs compose their sources live), so recording or
        // replaying `--all` skips them.
        let mut figs: Vec<String> = DATA_FIGURES.iter().map(|n| n.to_string()).collect();
        if opts.drive == TraceDrive::Synthetic {
            figs.push("mt".into());
            figs.push("policy".into());
            figs.push("fleet".into());
        } else {
            eprintln!(
                "[figures] note: skipping figures mt/policy/fleet under --record-dir/--replay-dir"
            );
        }
        (figs, vec![1, 2, 3, 4])
    } else {
        (opts.figures.clone(), opts.tables.clone())
    };
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "error: cannot create --out directory {}: {e}",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    }
    let telemetry = TelemetryConfig {
        enabled: opts.metrics.is_some() || opts.timeline.is_some(),
        sample_interval: Nanos::from_micros(opts.sample_us),
        timeline: opts.timeline.is_some(),
    };
    let runner = harness_runner(opts.jobs)
        .with_drive(opts.drive.clone())
        .with_policy_overrides(opts.policies.clone())
        .with_audit(opts.audit)
        .with_telemetry(telemetry);
    // Harness panics (a missing trace under --replay-dir, an invalid figure
    // number) should read as CLI errors, not backtraces: silence the hook,
    // catch the unwind, and report the payload on the binary's error path.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        regenerate(&runner, &opts, tables, figures)
    }));
    std::panic::set_hook(default_hook);
    let exported = match outcome {
        Ok(Ok(n)) => n,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        Err(payload) => {
            eprintln!("error: {}", panic_message(payload.as_ref()));
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[figures] {} unique simulations on {} worker thread(s)",
        runner.runs_executed(),
        runner.jobs()
    );
    match runner.drive() {
        TraceDrive::Record { dir } => {
            eprintln!("[figures] recorded workload traces to {}", dir.display());
        }
        TraceDrive::Replay { dir } => {
            eprintln!("[figures] replayed workload traces from {}", dir.display());
        }
        TraceDrive::Synthetic => {}
    }
    if let Some(dir) = &opts.out {
        eprintln!(
            "[figures] wrote {exported} CSV file(s) to {}",
            dir.display()
        );
    }
    if telemetry.enabled {
        let outputs = runner.telemetry_outputs();
        if let Some(path) = &opts.metrics {
            let csv = metrics_csv(
                outputs
                    .iter()
                    .map(|(label, o)| (label.as_str(), &o.metrics)),
            );
            if let Err(e) = std::fs::write(path, csv) {
                eprintln!("error: cannot write --metrics CSV {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[figures] metrics: {} run(s) sampled into {}",
                outputs.len(),
                path.display()
            );
        }
        if let Some(path) = &opts.timeline {
            let json = chrome_trace_json(
                outputs
                    .iter()
                    .map(|(label, o)| (label.as_str(), &o.timeline)),
            );
            if let Err(e) = std::fs::write(path, json) {
                eprintln!(
                    "error: cannot write --timeline JSON {}: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[figures] timeline: {} run(s) written to {} (open in Perfetto)",
                outputs.len(),
                path.display()
            );
        }
    }
    if let Some(path) = &opts.perf {
        let report = skybyte_sim::PerfReport::from_runner(&runner);
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: cannot write --perf report {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                for run in &report.runs {
                    eprintln!(
                        "[figures] perf: {}/{} — {:.3}s wall, {} work units \
                         ({:.0} accesses/sec), p50/p99/p999 {}/{}/{} ns",
                        run.variant,
                        run.workload,
                        run.wall_nanos as f64 / 1e9,
                        run.work_units,
                        run.units_per_sec,
                        run.p50_ns,
                        run.p99_ns,
                        run.p999_ns
                    );
                }
                eprintln!(
                    "[figures] perf: {} work units in {:.3}s wall ({:.0} accesses/sec \
                     aggregate) across {} run(s), {} memo hit(s); report written to {}",
                    report.total_work_units,
                    report.total_wall_nanos as f64 / 1e9,
                    report.aggregate_units_per_sec,
                    report.runs.len(),
                    runner.memo_hits(),
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("error: cannot serialise --perf report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if runner.truncated_runs() > 0 {
        eprintln!(
            "[figures] warning: {} simulation(s) hit the engine step limit; \
             the corresponding series describe truncated executions",
            runner.truncated_runs()
        );
    }
    if opts.audit {
        let failures = runner.audit_failures();
        if failures.is_empty() {
            eprintln!(
                "[figures] conservation audit clean across {} simulation(s)",
                runner.runs_executed()
            );
        } else {
            for f in &failures {
                eprintln!("[figures] audit violation: {f}");
            }
            eprintln!(
                "[figures] conservation audit FAILED for {} simulation(s)",
                failures.len()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
