//! Regenerates the data series of every table and figure of the SkyByte
//! paper's evaluation section.
//!
//! ```text
//! cargo run --release -p skybyte-bench --bin figures -- --all
//! cargo run --release -p skybyte-bench --bin figures -- --fig 14 --scale bench
//! cargo run --release -p skybyte-bench --bin figures -- --all --jobs 8
//! ```
//!
//! All simulations of one invocation run on a shared parallel, memoizing
//! runner (`--jobs N` workers, defaulting to the host's available
//! parallelism), so baselines needed by several figures are simulated once.
//!
//! Figures 1, 7, 8, 11, 12 and 13 are architecture diagrams without data
//! series and are therefore not listed.

use skybyte_bench::{figures_scale, harness_runner};
use skybyte_sim::report::{render_figure, render_table, DATA_FIGURES};
use skybyte_sim::ExperimentScale;
use std::process::ExitCode;

struct Options {
    figures: Vec<u32>,
    tables: Vec<u32>,
    scale: ExperimentScale,
    all: bool,
    jobs: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        figures: Vec::new(),
        tables: Vec::new(),
        scale: ExperimentScale::bench(),
        all: false,
        jobs: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => opts.all = true,
            "--fig" | "--figure" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or("--fig requires a number")?
                    .parse::<u32>()
                    .map_err(|e| format!("invalid figure number: {e}"))?;
                opts.figures.push(n);
            }
            "--table" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or("--table requires a number")?
                    .parse::<u32>()
                    .map_err(|e| format!("invalid table number: {e}"))?;
                opts.tables.push(n);
            }
            "--scale" => {
                i += 1;
                let name = args.get(i).ok_or("--scale requires a name")?;
                opts.scale = figures_scale(name)
                    .ok_or_else(|| format!("unknown scale '{name}' (tiny|bench|default)"))?;
            }
            "--jobs" | "-j" => {
                i += 1;
                let n = args
                    .get(i)
                    .ok_or("--jobs requires a number")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid job count: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--all] [--fig N]... [--table N]... \
                     [--scale tiny|bench|default] [--jobs N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if !opts.all && opts.figures.is_empty() && opts.tables.is_empty() {
        // Default: the headline results.
        opts.figures = vec![14, 18];
        opts.tables = vec![1, 3];
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (figures, tables) = if opts.all {
        (DATA_FIGURES.to_vec(), vec![1, 2, 3, 4])
    } else {
        (opts.figures, opts.tables)
    };
    let runner = harness_runner(opts.jobs);
    for t in tables {
        println!("{}", render_table(&runner, t, &opts.scale));
    }
    for f in figures {
        println!("{}", render_figure(&runner, f, &opts.scale));
    }
    eprintln!(
        "[figures] {} unique simulations on {} worker thread(s)",
        runner.runs_executed(),
        runner.jobs()
    );
    if runner.truncated_runs() > 0 {
        eprintln!(
            "[figures] warning: {} simulation(s) hit the engine step limit; \
             the corresponding series describe truncated executions",
            runner.truncated_runs()
        );
    }
    ExitCode::SUCCESS
}
