//! The standalone trace toolbox over `.sbt` files.
//!
//! ```text
//! trace record --workload ycsb --out ycsb.sbt [--scale tiny] [--threads N]
//!              [--accesses N] [--seed N]
//! trace replay --trace ycsb.sbt [--variant SkyByte-Full] [--workload ycsb]
//!              [--scale tiny]
//! trace stat   --trace ycsb.sbt
//! trace mix    --out mixed.sbt A.sbt[:WEIGHT] B.sbt[:WEIGHT] ...
//!              [--mode mix|concat|stack] [--shift-stride BYTES] [--loop N]
//! ```
//!
//! `record` writes the synthetic workload stream the simulator would
//! consume (without simulating), `replay` drives a full simulation from a
//! trace (the trace defines footprint, thread count and the amount of
//! work), `stat` streams the Table I / Figures 5–6 characteristics of a
//! trace, and `mix` composes new traces out of existing ones — proportional
//! interleave, concatenation, or tenant stacking, with optional per-tenant
//! address shifting and looping. A multi-tenant composition records its
//! thread → tenant table in the output header (`.sbt` format version 2), so
//! replay reproduces the partition; single-tenant outputs stay at format
//! version 1, byte-identical to earlier releases.

use skybyte_bench::{figures_scale, variant_from_name};
use skybyte_sim::{
    chrome_trace_json, metrics_csv, ExperimentScale, PerfReport, RunTiming, SimResult, Simulation,
};
use skybyte_trace::{
    record_to_file, BoxedSource, Concat, LoopN, Mix, Shift, Tenants, TraceFileSource, TraceHeader,
    TraceReader, TraceSource, TraceStats, TraceWriter,
};
use skybyte_types::{Nanos, PolicyOverride, SimConfig, TelemetryConfig, VariantKind};
use skybyte_workloads::{WorkloadKind, WorkloadSource};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: trace <record|replay|stat|mix|verify-corpus> [options]

  record --workload NAME --out FILE [--scale tiny|bench|default]
         [--threads N] [--accesses N] [--seed N]
      Write the synthetic .sbt trace the simulator would consume.

  replay --trace FILE [--variant NAME] [--workload NAME] [--scale ...]
         [--policy NAME]... [--perf [PATH]]
         [--metrics PATH] [--timeline PATH] [--sample-us N]
      Run a full simulation driven by FILE and print its metrics. The
      trace defines footprint, thread count and the amount of work; the
      scale defines the device. The workload label defaults to the one
      named in the trace's provenance header. --policy applies an
      off-default policy (repeatable; e.g. clock, 2q, bypass-scan, decay,
      topk, fair-share, tpp, rr — same name registry as `figures`).
      --perf additionally writes a machine-readable engine-throughput
      report (wall clock + accesses/sec; default PATH: perf.json).
      --metrics samples telemetry every --sample-us microseconds of
      simulated time (default 10) into a CSV time series; --timeline
      writes a Chrome trace-event JSON timeline (load it in Perfetto).
      Telemetry is observe-only: the simulation result is bit-identical
      with or without it.

  stat --trace FILE
      Stream the trace once and print footprint / write ratio / per-page
      cacheline coverage (comparable to Table I and Figures 5-6).

  mix --out FILE INPUT[:WEIGHT]... [--mode mix|concat|stack]
      [--shift-stride BYTES] [--loop N]
      Compose INPUTs into a new trace: proportional interleave (mix),
      back-to-back (concat), or side-by-side on the thread axis with one
      tenant per input (stack); --shift-stride re-bases input i by
      i*BYTES; --loop repeats each input N times. Multi-tenant outputs
      carry their thread->tenant table in the header (format version 2)
      so replay keeps the partition.

  verify-corpus [--dir DIR] [--jobs N] [--pin [--entry NAME]...]
                [--diff-out FILE]
      Replay the golden-trace regression corpus (default DIR: corpus/) and
      verify every trace x variant pair field-by-field against its pinned
      golden result, plus the cross-layer conservation audit. --pin
      re-records the traces and re-pins the goldens instead (byte-identical
      for any --jobs value); --entry restricts the pin to the named entries
      (how new entries are added without rewriting existing goldens);
      --diff-out additionally writes the field-level diff to FILE on
      mismatch (what CI uploads as an artifact).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "stat" => cmd_stat(rest),
        "mix" => cmd_mix(rest),
        "verify-corpus" => cmd_verify_corpus(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value following a flag.
fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|e| format!("invalid {what}: {e}"))
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let mut workload: Option<WorkloadKind> = None;
    let mut out: Option<PathBuf> = None;
    let mut scale = ExperimentScale::tiny();
    let mut threads: Option<u32> = None;
    let mut accesses: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                let name = value(args, &mut i, "--workload")?;
                workload = Some(
                    WorkloadKind::from_name(name)
                        .ok_or_else(|| format!("unknown workload '{name}'"))?,
                );
            }
            "--out" => out = Some(PathBuf::from(value(args, &mut i, "--out")?)),
            "--scale" => {
                let name = value(args, &mut i, "--scale")?;
                scale = figures_scale(name)
                    .ok_or_else(|| format!("unknown scale '{name}' (tiny|bench|default)"))?;
            }
            "--threads" => {
                let t = parse_u64(value(args, &mut i, "--threads")?, "thread count")?;
                if t == 0 || t > u32::MAX as u64 {
                    return Err("--threads must be between 1 and 2^32-1".into());
                }
                threads = Some(t as u32);
            }
            "--accesses" => {
                accesses = Some(parse_u64(
                    value(args, &mut i, "--accesses")?,
                    "access count",
                )?)
            }
            "--seed" => seed = Some(parse_u64(value(args, &mut i, "--seed")?, "seed")?),
            other => return Err(format!("unknown record argument '{other}'")),
        }
        i += 1;
    }
    let workload = workload.ok_or("record needs --workload")?;
    let out = out.ok_or("record needs --out")?;
    if let Some(a) = accesses {
        scale = scale.with_accesses_per_thread(a);
    }
    if let Some(s) = seed {
        scale.seed = s;
    }
    // Mirror the engine's budget arithmetic exactly, so a standalone
    // recording is interchangeable with a `figures --record-dir` one.
    let mut cfg = scale.apply(SimConfig::default());
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let sim = Simulation::with_config(cfg.clone(), workload, &scale);
    let budget = sim.per_thread_budget();
    let spec = scale.workload_spec(workload);
    let mut source = WorkloadSource::new(&spec, cfg.threads, scale.seed);
    let header = TraceHeader {
        threads: cfg.threads,
        footprint_bytes: spec.footprint_bytes,
        seed: scale.seed,
        source: source.identity(),
        tenant_of_thread: None,
    };
    let written = record_to_file(&mut source, &out, &header, budget)
        .map_err(|e| format!("recording failed: {e}"))?;
    println!(
        "recorded {written} records ({} thread(s) x {budget}) of {workload} to {}",
        cfg.threads,
        out.display()
    );
    Ok(())
}

/// Picks the workload label for a replayed trace: an explicit `--workload`,
/// else the workload named in the trace's provenance header.
fn workload_for_replay(
    explicit: Option<WorkloadKind>,
    header: &TraceHeader,
) -> Result<WorkloadKind, String> {
    if let Some(w) = explicit {
        return Ok(w);
    }
    // Source identities delimit the workload name with colons
    // ("synthetic:ycsb:fp..."); matching the delimited form keeps file-path
    // fragments (e.g. "/home/abc/" containing "bc") from mislabelling.
    WorkloadKind::ALL
        .into_iter()
        .find(|k| header.source.contains(&format!(":{}:", k.name())))
        .ok_or_else(|| {
            format!(
                "cannot infer the workload from the trace's source identity \
                 ('{}'); pass --workload",
                header.source
            )
        })
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut trace: Option<PathBuf> = None;
    let mut variant = VariantKind::SkyByteFull;
    let mut workload: Option<WorkloadKind> = None;
    let mut scale = ExperimentScale::tiny();
    let mut policies: Vec<PolicyOverride> = Vec::new();
    let mut perf: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut timeline: Option<PathBuf> = None;
    let mut sample_us: u64 = 10;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace = Some(PathBuf::from(value(args, &mut i, "--trace")?)),
            "--metrics" => metrics = Some(PathBuf::from(value(args, &mut i, "--metrics")?)),
            "--timeline" => timeline = Some(PathBuf::from(value(args, &mut i, "--timeline")?)),
            "--sample-us" => {
                let us = parse_u64(value(args, &mut i, "--sample-us")?, "sample interval")?;
                if us == 0 {
                    return Err("--sample-us must be at least 1".into());
                }
                sample_us = us;
            }
            "--perf" => {
                // An optional path may follow; anything starting with `--`
                // is the next flag, not a path.
                perf = Some(match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        PathBuf::from(next)
                    }
                    _ => PathBuf::from("perf.json"),
                });
            }
            "--policy" => policies.push(value(args, &mut i, "--policy")?.parse()?),
            "--variant" => {
                let name = value(args, &mut i, "--variant")?;
                variant =
                    variant_from_name(name).ok_or_else(|| format!("unknown variant '{name}'"))?;
            }
            "--workload" => {
                let name = value(args, &mut i, "--workload")?;
                workload = Some(
                    WorkloadKind::from_name(name)
                        .ok_or_else(|| format!("unknown workload '{name}'"))?,
                );
            }
            "--scale" => {
                let name = value(args, &mut i, "--scale")?;
                scale = figures_scale(name)
                    .ok_or_else(|| format!("unknown scale '{name}' (tiny|bench|default)"))?;
            }
            other => return Err(format!("unknown replay argument '{other}'")),
        }
        i += 1;
    }
    let trace = trace.ok_or("replay needs --trace")?;
    let header = TraceReader::open(&trace)
        .map_err(|e| format!("cannot open {}: {e}", trace.display()))?
        .header()
        .clone();
    let workload = workload_for_replay(workload, &header)?;
    // The trace defines the footprint and thread count; the scale defines
    // the simulated device around it (shared with the golden corpus via
    // `replay_trace_file`, capacity guard included).
    let telemetry = TelemetryConfig {
        enabled: metrics.is_some() || timeline.is_some(),
        sample_interval: Nanos::from_micros(sample_us),
        timeline: timeline.is_some(),
    };
    let started = std::time::Instant::now();
    let (result, telemetry_out) = skybyte_bench::replay_trace_file_with_telemetry(
        &trace, &header, variant, workload, scale, &policies, telemetry,
    )?;
    let wall = started.elapsed();
    println!("replayed {} as {variant} ({workload})", trace.display());
    print_summary(&result);
    if let Some(output) = &telemetry_out {
        let label = format!("{variant}/{workload}");
        if let Some(path) = &metrics {
            let csv = metrics_csv([(label.as_str(), &output.metrics)]);
            std::fs::write(path, csv)
                .map_err(|e| format!("cannot write --metrics CSV {}: {e}", path.display()))?;
            println!(
                "metrics: {} samples written to {}",
                output.metrics.samples.len(),
                path.display()
            );
        }
        if let Some(path) = &timeline {
            let tl = &output.timeline;
            let json = chrome_trace_json([(label.as_str(), tl)]);
            std::fs::write(path, json)
                .map_err(|e| format!("cannot write --timeline JSON {}: {e}", path.display()))?;
            println!(
                "timeline: {} events written to {} (open in Perfetto / chrome://tracing)",
                tl.events().len(),
                path.display()
            );
        }
    }
    if let Some(path) = perf {
        let work_units = result.requests.total() + result.squashed_accesses;
        let wall_nanos = wall.as_nanos() as u64;
        let units_per_sec = if wall_nanos == 0 {
            0.0
        } else {
            work_units as f64 / (wall_nanos as f64 / 1e9)
        };
        let report = PerfReport {
            jobs: 1,
            runs: vec![RunTiming {
                variant: variant.to_string(),
                workload: workload.to_string(),
                wall_nanos,
                work_units,
                simulated_nanos: result.exec_time.as_nanos(),
                units_per_sec,
                p50_ns: result.latency_hist.p50().as_nanos(),
                p99_ns: result.latency_hist.p99().as_nanos(),
                p999_ns: result.latency_hist.p999().as_nanos(),
            }],
            total_work_units: work_units,
            total_wall_nanos: wall_nanos,
            aggregate_units_per_sec: units_per_sec,
        };
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("cannot serialise --perf report: {e}"))?;
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write --perf report {}: {e}", path.display()))?;
        println!(
            "perf: {work_units} work units in {:.3}s wall ({units_per_sec:.0} accesses/sec); \
             report written to {}",
            wall_nanos as f64 / 1e9,
            path.display()
        );
    }
    Ok(())
}

fn print_summary(r: &SimResult) {
    println!("exec time             {}", r.exec_time);
    println!("instructions          {}", r.instructions);
    println!(
        "accesses              {} classified ({} host, {} ssd-hit, {} ssd-miss, {} ssd-write)",
        r.total_accesses(),
        r.requests.host,
        r.requests.ssd_read_hit,
        r.requests.ssd_read_miss,
        r.requests.ssd_write
    );
    println!("amat                  {}", r.amat.amat());
    println!(
        "latency p50/p99/p999  {} / {} / {}",
        r.latency_hist.p50(),
        r.latency_hist.p99(),
        r.latency_hist.p999()
    );
    println!("context switches      {}", r.context_switches);
    println!("pages promoted        {}", r.pages_promoted);
    println!("flash pages programmed {}", r.flash_pages_programmed);
    if r.truncated {
        println!("WARNING: the run hit the engine step limit (truncated)");
    }
}

fn cmd_stat(args: &[String]) -> Result<(), String> {
    let mut trace: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace = Some(PathBuf::from(value(args, &mut i, "--trace")?)),
            other => return Err(format!("unknown stat argument '{other}'")),
        }
        i += 1;
    }
    let trace = trace.ok_or("stat needs --trace")?;
    let (header, stats) = TraceStats::scan_file(&trace)
        .map_err(|e| format!("cannot stat {}: {e}", trace.display()))?;
    print!("{}", stats.render(&header));
    Ok(())
}

fn cmd_verify_corpus(args: &[String]) -> Result<(), String> {
    let mut dir = PathBuf::from("corpus");
    // Output is byte-identical for any job count (locked by
    // crates/bench/tests/corpus.rs), so default to full parallelism.
    let mut jobs: usize = skybyte_sim::runner::default_parallelism();
    let mut pin = false;
    let mut entries_filter: Vec<String> = Vec::new();
    let mut diff_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => dir = PathBuf::from(value(args, &mut i, "--dir")?),
            "--jobs" | "-j" => {
                let n = parse_u64(value(args, &mut i, "--jobs")?, "job count")? as usize;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                jobs = n;
            }
            "--pin" => pin = true,
            "--entry" => entries_filter.push(value(args, &mut i, "--entry")?.to_string()),
            "--diff-out" => diff_out = Some(PathBuf::from(value(args, &mut i, "--diff-out")?)),
            other => return Err(format!("unknown verify-corpus argument '{other}'")),
        }
        i += 1;
    }
    if !entries_filter.is_empty() && !pin {
        return Err("--entry only applies to --pin (verification always covers \
                    the whole corpus)"
            .into());
    }
    if pin {
        let only = (!entries_filter.is_empty()).then_some(entries_filter.as_slice());
        let pairs = skybyte_bench::corpus::pin_entries(&dir, jobs, only)?;
        println!(
            "pinned {pairs} golden results ({} of {} traces x {} variants) under {}",
            pairs / skybyte_bench::corpus::CORPUS_VARIANTS.len(),
            skybyte_bench::corpus::entries().len(),
            skybyte_bench::corpus::CORPUS_VARIANTS.len(),
            dir.display()
        );
        return Ok(());
    }
    let report = skybyte_bench::corpus::verify(&dir, jobs)?;
    if report.is_clean() {
        println!(
            "verified {} trace x variant pairs against {}: all golden results \
             reproduced, conservation audit clean",
            report.pairs,
            dir.display()
        );
        return Ok(());
    }
    let rendered = report.render_failures();
    if let Some(path) = &diff_out {
        std::fs::write(path, rendered.clone() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote field-level diff to {}", path.display());
    }
    Err(format!(
        "{} of {} corpus pairs diverged:\n{rendered}",
        report.failures.len(),
        report.pairs
    ))
}

/// Parses `FILE[:WEIGHT]` (the weight defaults to 1).
fn parse_input(spec: &str) -> Result<(PathBuf, u64), String> {
    match spec.rsplit_once(':') {
        Some((path, weight))
            if weight.chars().all(|c| c.is_ascii_digit()) && !weight.is_empty() =>
        {
            let w = parse_u64(weight, "mix weight")?;
            if w == 0 {
                return Err(format!("weight of '{path}' must be positive"));
            }
            Ok((PathBuf::from(path), w))
        }
        _ => Ok((PathBuf::from(spec), 1)),
    }
}

fn open_input(path: &Path) -> Result<TraceFileSource, String> {
    TraceFileSource::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))
}

fn cmd_mix(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut mode = "mix".to_string();
    let mut shift_stride: u64 = 0;
    let mut loop_times: u32 = 1;
    let mut inputs: Vec<(PathBuf, u64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out = Some(PathBuf::from(value(args, &mut i, "--out")?)),
            "--mode" => mode = value(args, &mut i, "--mode")?.to_string(),
            "--shift-stride" => {
                shift_stride = parse_u64(value(args, &mut i, "--shift-stride")?, "shift stride")?
            }
            "--loop" => {
                loop_times = parse_u64(value(args, &mut i, "--loop")?, "loop count")? as u32
            }
            flag if flag.starts_with("--") => return Err(format!("unknown mix argument '{flag}'")),
            input => inputs.push(parse_input(input)?),
        }
        i += 1;
    }
    let out = out.ok_or("mix needs --out")?;
    if inputs.is_empty() {
        return Err("mix needs at least one input trace".into());
    }
    if mode != "mix" && mode != "concat" && mode != "stack" {
        return Err(format!("unknown --mode '{mode}' (mix|concat|stack)"));
    }

    let mut sources: Vec<(BoxedSource, u64)> = Vec::new();
    let mut footprint = 0u64;
    let mut seed = 0u64;
    for (idx, (path, weight)) in inputs.iter().enumerate() {
        let file = open_input(path)?;
        let header = file.header().clone();
        let shift = shift_stride * idx as u64;
        footprint = footprint.max(header.footprint_bytes.saturating_add(shift));
        seed ^= header.seed.rotate_left(idx as u32);
        let mut source: BoxedSource = Box::new(file);
        if shift > 0 {
            source = Box::new(Shift::new(source, shift));
        }
        if loop_times != 1 {
            source = Box::new(LoopN::new(source, loop_times));
        }
        sources.push((source, *weight));
    }
    let mut composite: BoxedSource = match mode.as_str() {
        "concat" => Box::new(Concat::new(sources.into_iter().map(|(s, _)| s).collect())),
        "stack" => Box::new(Tenants::new(sources.into_iter().map(|(s, _)| s).collect())),
        _ => Box::new(Mix::new(sources)),
    };
    let threads = composite.threads();
    // A genuinely multi-tenant composition (tenant stacking, or inputs that
    // already carry tenant tables) records its partition in the header;
    // single-tenant outputs stay at format version 1.
    let tenant_of_thread = (composite.tenant_map().tenant_count() > 1)
        .then(|| (0..threads).map(|t| composite.tenant_of(t).0).collect());
    let header = TraceHeader {
        threads,
        footprint_bytes: footprint,
        seed,
        source: composite.identity(),
        tenant_of_thread,
    };
    let mut writer =
        TraceWriter::create(&out, &header).map_err(|e| format!("cannot create output: {e}"))?;
    let mut total = 0u64;
    for t in 0..threads {
        while let Some(record) = composite
            .next_record(t)
            .map_err(|e| format!("compose failed on thread {t}: {e}"))?
        {
            writer
                .push(t, &record)
                .map_err(|e| format!("write failed: {e}"))?;
            total += 1;
        }
    }
    writer.finish().map_err(|e| format!("write failed: {e}"))?;
    println!(
        "composed {total} records ({threads} thread(s), mode {mode}) into {}",
        out.display()
    );
    Ok(())
}
