//! The per-thread trace generator.
//!
//! A trace is a stream of [`WorkUnit`]s: a burst of non-stalled instructions
//! followed by one off-chip memory access. The burst length is derived from
//! the workload's LLC MPKI (Table I), the read/write mix from its write
//! ratio, and the address from its access-pattern model (hot-set Zipf plus a
//! per-pattern cold component). Every thread of a workload shares the hot
//! set (graph vertices, database rows, embedding rows are shared) and owns a
//! private partition of the cold region, as in the original multi-threaded
//! benchmarks.

use crate::spec::{AccessPattern, WorkloadSpec};
use crate::zipf::Zipf;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use skybyte_types::{AccessKind, MemAccess, VirtAddr, CACHELINES_PER_PAGE, PAGE_SIZE};

/// One unit of work: compute, then a single off-chip memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Number of non-stalled instructions executed before the access.
    pub instructions: u64,
    /// The off-chip (post-LLC) memory access.
    pub access: MemAccess,
}

/// Deterministic, seedable generator of one thread's trace.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: ChaCha12Rng,
    hot_pages: u64,
    hot_zipf: Zipf,
    /// Private cold partition of this thread: [cold_start, cold_start + cold_len).
    cold_start: u64,
    cold_len: u64,
    /// Streaming cursor within the cold partition.
    cursor_page: u64,
    /// Cachelines still to touch on the cursor page before advancing.
    cursor_remaining: u32,
    units_generated: u64,
}

impl TraceGenerator {
    /// Creates the generator for `thread` of `threads` total, with a
    /// deterministic seed.
    ///
    /// # Determinism
    ///
    /// The same `(spec, thread, threads, seed)` tuple yields an **identical
    /// [`WorkUnit`] stream** on every construction: the generator's only
    /// state is a [`ChaCha12Rng`] seeded from `seed ^ f(thread)` plus
    /// counters derived from the spec, and no global or ambient state is
    /// consulted. This is the contract that makes trace recording/replay
    /// bit-exact and the memoizing parallel runner sound — harness output
    /// is identical across `--jobs` values because each thread's stream
    /// never depends on who pulls it or when
    /// (`generator_stream_is_a_pure_function_of_its_inputs` locks this).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `thread >= threads`.
    pub fn new(spec: &WorkloadSpec, thread: u32, threads: u32, seed: u64) -> Self {
        assert!(threads > 0, "at least one thread required");
        assert!(thread < threads, "thread index out of range");
        let total_pages = spec.footprint_pages();
        let hot_pages = ((total_pages as f64 * spec.hot_page_fraction) as u64).max(1);
        let cold_pages = total_pages.saturating_sub(hot_pages).max(1);
        let per_thread = (cold_pages / threads as u64).max(1);
        let cold_start = hot_pages + per_thread * thread as u64;
        // The Zipf table is capped to keep setup cheap for huge hot sets; the
        // cap is far above the scaled experiment sizes.
        let zipf_n = hot_pages.min(1 << 20);
        let mut rng =
            ChaCha12Rng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let coverage_cls = Self::coverage_cachelines(spec);
        let cursor_page = cold_start + rng.gen_range(0..per_thread);
        TraceGenerator {
            spec: *spec,
            rng,
            hot_pages,
            hot_zipf: Zipf::new(zipf_n, spec.zipf_exponent.max(0.0)),
            cold_start,
            cold_len: per_thread,
            cursor_page,
            cursor_remaining: coverage_cls,
            units_generated: 0,
        }
    }

    fn coverage_cachelines(spec: &WorkloadSpec) -> u32 {
        ((CACHELINES_PER_PAGE as f64 * spec.page_cacheline_coverage).round() as u32)
            .clamp(1, CACHELINES_PER_PAGE as u32)
    }

    /// The workload spec driving this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of work units generated so far.
    pub fn units_generated(&self) -> u64 {
        self.units_generated
    }

    /// Produces the next work unit.
    pub fn next_unit(&mut self) -> WorkUnit {
        self.units_generated += 1;
        let base = self.spec.instructions_per_miss();
        // ±50 % jitter around the MPKI-derived mean keeps bursts irregular
        // while preserving the average.
        let instructions = if base <= 1 {
            1
        } else {
            self.rng.gen_range(base / 2..=base + base / 2)
        };
        let is_write = self.rng.gen_bool(self.spec.write_ratio.clamp(0.0, 1.0));
        let (page, cl) = self.pick_location(is_write);
        let addr = VirtAddr::new(page * PAGE_SIZE as u64 + cl as u64 * 64);
        WorkUnit {
            instructions,
            access: MemAccess::new(
                addr,
                if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            ),
        }
    }

    /// Generates `n` work units into a vector.
    pub fn generate(&mut self, n: usize) -> Vec<WorkUnit> {
        (0..n).map(|_| self.next_unit()).collect()
    }

    fn pick_location(&mut self, is_write: bool) -> (u64, u8) {
        let hot = self
            .rng
            .gen_bool(self.spec.hot_access_fraction.clamp(0.0, 1.0));
        let page = if hot {
            self.pick_hot_page()
        } else {
            self.pick_cold_page(is_write)
        };
        let cl = self.pick_cacheline(page, is_write);
        (page, cl)
    }

    fn pick_hot_page(&mut self) -> u64 {
        let rank = self.hot_zipf.sample(&mut self.rng);
        // Spread ranks over the hot region if it is larger than the table.
        if self.hot_pages > self.hot_zipf.n() {
            rank * (self.hot_pages / self.hot_zipf.n()).max(1)
        } else {
            rank
        }
    }

    fn pick_cold_page(&mut self, is_write: bool) -> u64 {
        match self.spec.pattern {
            AccessPattern::StreamingSort | AccessPattern::StridedStencil => {
                if self.cursor_remaining == 0 {
                    let stride = self.spec.sequential_run_pages.max(1) as u64;
                    let step = if self.spec.pattern == AccessPattern::StridedStencil {
                        stride
                    } else {
                        1
                    };
                    self.cursor_page = self.cold_start
                        + (self.cursor_page - self.cold_start + step) % self.cold_len;
                    self.cursor_remaining = Self::coverage_cachelines(&self.spec);
                }
                self.cursor_remaining -= 1;
                self.cursor_page
            }
            AccessPattern::EmbeddingGather if is_write => {
                // Gradient/output region: a small dense area at the start of
                // the thread's partition.
                let dense = (self.cold_len / 64).max(1);
                self.cold_start + self.rng.gen_range(0..dense)
            }
            _ => self.cold_start + self.rng.gen_range(0..self.cold_len),
        }
    }

    fn pick_cacheline(&mut self, page: u64, _is_write: bool) -> u8 {
        let coverage = Self::coverage_cachelines(&self.spec);
        // Each page exposes only `coverage` cachelines, starting at a
        // page-dependent offset, so the per-page coverage CDF of Figures 5–6
        // is reproduced by construction.
        let offset = (page.wrapping_mul(0x9E37_79B9) % CACHELINES_PER_PAGE as u64) as u32;
        let pick = self.rng.gen_range(0..coverage);
        ((offset + pick) % CACHELINES_PER_PAGE as u32) as u8
    }
}

impl Iterator for TraceGenerator {
    type Item = WorkUnit;

    fn next(&mut self) -> Option<WorkUnit> {
        Some(self.next_unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;
    use std::collections::HashSet;

    fn scaled(kind: WorkloadKind) -> WorkloadSpec {
        kind.spec().scaled_to(32 << 20) // 32 MiB
    }

    #[test]
    fn addresses_stay_inside_footprint() {
        for kind in WorkloadKind::ALL {
            let spec = scaled(kind);
            let mut g = TraceGenerator::new(&spec, 0, 4, 1);
            for _ in 0..2_000 {
                let u = g.next_unit();
                assert!(
                    u.access.addr.as_u64() < spec.footprint_bytes,
                    "{kind}: address out of range"
                );
                assert!(u.instructions >= 1);
            }
            assert_eq!(g.units_generated(), 2_000);
        }
    }

    #[test]
    fn write_ratio_matches_table1() {
        for kind in WorkloadKind::ALL {
            let spec = scaled(kind);
            let mut g = TraceGenerator::new(&spec, 0, 4, 7);
            let n = 20_000;
            let writes = g
                .generate(n)
                .iter()
                .filter(|u| u.access.kind.is_write())
                .count();
            let measured = writes as f64 / n as f64;
            assert!(
                (measured - spec.write_ratio).abs() < 0.02,
                "{kind}: measured write ratio {measured} vs spec {}",
                spec.write_ratio
            );
        }
    }

    #[test]
    fn mean_instructions_match_mpki() {
        for kind in [WorkloadKind::BfsDense, WorkloadKind::Tpcc, WorkloadKind::Bc] {
            let spec = scaled(kind);
            let mut g = TraceGenerator::new(&spec, 0, 4, 3);
            let n = 20_000usize;
            let total: u64 = g.generate(n).iter().map(|u| u.instructions).sum();
            let mean = total as f64 / n as f64;
            let expected = spec.instructions_per_miss() as f64;
            assert!(
                (mean - expected).abs() / expected < 0.1,
                "{kind}: mean burst {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn generator_stream_is_a_pure_function_of_its_inputs() {
        // The determinism contract of `TraceGenerator::new`: the same
        // (spec, thread, threads, seed) tuple yields an identical WorkUnit
        // stream across constructions — previously asserted only indirectly
        // via figure-table equivalence across `--jobs` values. Long streams
        // and every workload, so cursor/Zipf state is exercised too.
        for kind in WorkloadKind::ALL {
            let spec = scaled(kind);
            for thread in [0u32, 3] {
                let a = TraceGenerator::new(&spec, thread, 4, 0xD5).generate(5_000);
                let b = TraceGenerator::new(&spec, thread, 4, 0xD5).generate(5_000);
                assert_eq!(a, b, "{kind}: stream differs across constructions");
            }
        }
        // Interleaved consumption (as under a parallel harness) cannot
        // perturb a sibling thread's stream: generators are independent.
        let spec = scaled(WorkloadKind::Tpcc);
        let mut g0 = TraceGenerator::new(&spec, 0, 2, 1);
        let mut g1 = TraceGenerator::new(&spec, 1, 2, 1);
        let mut interleaved = Vec::new();
        for _ in 0..1_000 {
            interleaved.push(g0.next_unit());
            let _ = g1.next_unit();
        }
        let solo = TraceGenerator::new(&spec, 0, 2, 1).generate(1_000);
        assert_eq!(interleaved, solo);
    }

    #[test]
    fn generator_is_deterministic_per_seed_and_thread() {
        let spec = scaled(WorkloadKind::Ycsb);
        let run = |thread, seed| {
            let mut g = TraceGenerator::new(&spec, thread, 4, seed);
            g.generate(100)
        };
        assert_eq!(run(0, 9), run(0, 9));
        assert_ne!(run(0, 9), run(1, 9));
        assert_ne!(run(0, 9), run(0, 10));
    }

    #[test]
    fn hot_set_is_shared_cold_sets_are_private() {
        let spec = scaled(WorkloadKind::Bc);
        let hot_pages = ((spec.footprint_pages() as f64 * spec.hot_page_fraction) as u64).max(1);
        let pages_of = |thread| {
            let mut g = TraceGenerator::new(&spec, thread, 4, 5);
            g.generate(5_000)
                .iter()
                .map(|u| u.access.addr.page().index())
                .collect::<HashSet<_>>()
        };
        let a = pages_of(0);
        let b = pages_of(1);
        let shared: Vec<_> = a.intersection(&b).collect();
        // The shared pages must all be in the hot region.
        assert!(!shared.is_empty());
        assert!(shared.iter().all(|p| **p < hot_pages));
        // Cold pages of thread 0 are disjoint from thread 1's cold pages.
        let cold_a: HashSet<_> = a.iter().filter(|p| **p >= hot_pages).collect();
        let cold_b: HashSet<_> = b.iter().filter(|p| **p >= hot_pages).collect();
        assert!(cold_a.is_disjoint(&cold_b));
    }

    #[test]
    fn page_coverage_is_sparse_for_graph_workloads() {
        let spec = scaled(WorkloadKind::Bc);
        let mut g = TraceGenerator::new(&spec, 0, 1, 11);
        let mut per_page: std::collections::HashMap<u64, HashSet<u8>> = Default::default();
        for u in g.generate(50_000) {
            per_page
                .entry(u.access.addr.page().index())
                .or_default()
                .insert(u.access.addr.cacheline_in_page() as u8);
        }
        // Most pages must expose well under 40 % of their 64 cachelines.
        let sparse = per_page
            .values()
            .filter(|s| (s.len() as f64) < 0.4 * 64.0)
            .count();
        assert!(
            sparse as f64 > 0.75 * per_page.len() as f64,
            "only {sparse}/{} pages are sparse",
            per_page.len()
        );
    }

    #[test]
    fn streaming_workload_has_sequential_runs() {
        let spec = scaled(WorkloadKind::Radix);
        let mut g = TraceGenerator::new(&spec, 0, 1, 13);
        let pages: Vec<u64> = g
            .generate(10_000)
            .iter()
            .filter(|u| u.access.addr.page().index() >= 1000) // skip hot set
            .map(|u| u.access.addr.page().index())
            .collect();
        // Consecutive cold accesses frequently land on the same or the next
        // page (spatial locality).
        let mut local = 0usize;
        for w in pages.windows(2) {
            if w[1] == w[0] || w[1] == w[0] + 1 {
                local += 1;
            }
        }
        assert!(
            local as f64 > 0.5 * (pages.len() - 1) as f64,
            "streaming pattern lost: {local}/{}",
            pages.len()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_thread_index() {
        let spec = scaled(WorkloadKind::Bc);
        let _ = TraceGenerator::new(&spec, 4, 4, 0);
    }
}
