//! A small, deterministic Zipf sampler.
//!
//! Page popularity in graph, key-value and transactional workloads follows a
//! power law. This sampler draws ranks from a Zipf(s) distribution over
//! `{0, 1, …, n-1}` using an inverse-CDF table, which is exact for the bucket
//! counts we need (at most a few hundred thousand pages after scaling).

use rand::Rng;

/// Zipf distribution over `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a nonempty support");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let n = n as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // Binary search for the first cdf entry >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.n() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            let s = z.sample(&mut rng) as usize;
            assert!(s < 1000);
            counts[s] += 1;
        }
        // Rank 0 must be sampled far more often than rank 500.
        assert!(counts[0] > 10 * counts[500].max(1));
        // The head (top 10 %) should dominate.
        let head: u64 = counts[..100].iter().sum();
        assert!(head as f64 > 0.5 * 20_000.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 2.0, "uniform samples should be balanced");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipf::new(64, 1.0);
        let draw = |seed| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            (0..32).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
