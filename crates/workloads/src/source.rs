//! [`TraceSource`] implementations for the synthetic generators, so the
//! simulation engine can be driven interchangeably by live generation, a
//! recorded `.sbt` file, or any composition of the two.

use crate::generator::{TraceGenerator, WorkUnit};
use crate::spec::WorkloadSpec;
use skybyte_trace::{TraceError, TraceRecord, TraceSource};
use skybyte_types::{TenantId, CACHELINE_SIZE};

impl From<WorkUnit> for TraceRecord {
    /// A work unit is one cacheline-sized access after a compute gap.
    fn from(unit: WorkUnit) -> Self {
        TraceRecord {
            instructions: unit.instructions,
            access: unit.access,
            size_bytes: CACHELINE_SIZE as u32,
        }
    }
}

impl From<TraceRecord> for WorkUnit {
    /// The engine consumes cacheline-granular accesses; a record's size is
    /// provenance (the memory system aligns the address).
    fn from(record: TraceRecord) -> Self {
        WorkUnit {
            instructions: record.instructions,
            access: record.access,
        }
    }
}

/// A single [`TraceGenerator`] viewed as a one-thread, unbounded source.
impl TraceSource for TraceGenerator {
    fn threads(&self) -> u32 {
        1
    }

    fn identity(&self) -> String {
        format!(
            "generator:{}:fp{}",
            self.spec().name(),
            self.spec().footprint_bytes
        )
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        if thread != 0 {
            return Err(TraceError::ThreadOutOfRange {
                threads: 1,
                requested: thread,
            });
        }
        Ok(Some(self.next_unit().into()))
    }
}

/// The multi-threaded synthetic source the engine runs by default: one
/// deterministic [`TraceGenerator`] per thread, all derived from the same
/// `(spec, threads, seed)` tuple that [`TraceGenerator::new`] documents.
///
/// The source is unbounded (generators never end); consumers bound it with
/// their own budget, and [`TraceSource::reset_thread`] rebuilds one thread's
/// generator from scratch, which makes the source loopable.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    spec: WorkloadSpec,
    seed: u64,
    tenant: TenantId,
    generators: Vec<TraceGenerator>,
}

impl WorkloadSource {
    /// Builds the per-thread generators for `threads` threads of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(spec: &WorkloadSpec, threads: u32, seed: u64) -> Self {
        assert!(threads > 0, "at least one thread required");
        let generators = (0..threads)
            .map(|t| TraceGenerator::new(spec, t, threads, seed))
            .collect();
        WorkloadSource {
            spec: *spec,
            seed,
            tenant: TenantId::ZERO,
            generators,
        }
    }

    /// Returns a copy whose streams all report `tenant` (the multi-tenant
    /// constructor tags each co-located application's source this way before
    /// stacking them with [`skybyte_trace::Tenants`]).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The workload spec driving every thread.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }
}

impl TraceSource for WorkloadSource {
    fn threads(&self) -> u32 {
        self.generators.len() as u32
    }

    fn identity(&self) -> String {
        // The tenant tag is appended only when set, so single-tenant
        // identities (and everything derived from them — recorded trace
        // headers, memo fingerprints) are byte-identical to the pre-tenant
        // format.
        let tenant = if self.tenant == TenantId::ZERO {
            String::new()
        } else {
            format!(":{}", self.tenant)
        };
        format!(
            "synthetic:{}:fp{}:t{}:seed{}{tenant}",
            self.spec.name(),
            self.spec.footprint_bytes,
            self.generators.len(),
            self.seed
        )
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        match self.generators.get_mut(thread as usize) {
            Some(generator) => Ok(Some(generator.next_unit().into())),
            None => Err(TraceError::ThreadOutOfRange {
                threads: self.threads(),
                requested: thread,
            }),
        }
    }

    fn reset_thread(&mut self, thread: u32) -> Result<bool, TraceError> {
        let threads = self.threads();
        match self.generators.get_mut(thread as usize) {
            Some(generator) => {
                *generator = TraceGenerator::new(&self.spec, thread, threads, self.seed);
                Ok(true)
            }
            None => Err(TraceError::ThreadOutOfRange {
                threads,
                requested: thread,
            }),
        }
    }

    fn tenant_of(&self, _thread: u32) -> TenantId {
        self.tenant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;

    fn spec() -> WorkloadSpec {
        WorkloadKind::Ycsb.spec().scaled_to(16 << 20)
    }

    #[test]
    fn workload_source_matches_per_thread_generators() {
        let spec = spec();
        let mut source = WorkloadSource::new(&spec, 4, 11);
        for t in 0..4u32 {
            let mut reference = TraceGenerator::new(&spec, t, 4, 11);
            for _ in 0..500 {
                let from_source: WorkUnit =
                    source.next_record(t).unwrap().expect("unbounded").into();
                assert_eq!(from_source, reference.next_unit(), "thread {t}");
            }
        }
    }

    #[test]
    fn pull_order_across_threads_does_not_change_streams() {
        let spec = spec();
        // Round-robin pulls vs thread-at-a-time pulls must see the same
        // per-thread streams (the engine interleaves in simulated-time
        // order, which varies with the variant under test).
        let mut a = WorkloadSource::new(&spec, 2, 5);
        let mut b = WorkloadSource::new(&spec, 2, 5);
        let mut a_units: Vec<Vec<TraceRecord>> = vec![Vec::new(), Vec::new()];
        for i in 0..1_000u32 {
            let t = i % 2;
            a_units[t as usize].push(a.next_record(t).unwrap().unwrap());
        }
        for t in 0..2u32 {
            for (i, expected) in a_units[t as usize].iter().enumerate() {
                assert_eq!(
                    b.next_record(t).unwrap().as_ref(),
                    Some(expected),
                    "thread {t} record {i}"
                );
            }
        }
    }

    #[test]
    fn reset_rewinds_one_thread_only() {
        let spec = spec();
        let mut source = WorkloadSource::new(&spec, 2, 9);
        let first_t0 = source.next_record(0).unwrap().unwrap();
        let _ = source.next_record(1).unwrap().unwrap();
        let second_t1 = source.next_record(1).unwrap().unwrap();
        assert!(source.reset_thread(0).unwrap());
        assert_eq!(source.next_record(0).unwrap().unwrap(), first_t0);
        // Thread 1 was not rewound.
        assert_ne!(source.next_record(1).unwrap().unwrap(), second_t1);
    }

    #[test]
    fn single_generator_is_a_one_thread_source() {
        let spec = spec();
        let mut g = TraceGenerator::new(&spec, 0, 2, 3);
        let mut reference = TraceGenerator::new(&spec, 0, 2, 3);
        assert_eq!(TraceSource::threads(&g), 1);
        assert!(g.identity().contains("ycsb"));
        let r = g.next_record(0).unwrap().unwrap();
        assert_eq!(WorkUnit::from(r), reference.next_unit());
        assert!(matches!(
            g.next_record(1),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
    }

    #[test]
    fn tenant_tag_is_reported_and_scoped_to_the_identity_suffix() {
        use skybyte_types::TenantId;
        let spec = spec();
        let plain = WorkloadSource::new(&spec, 2, 3);
        assert_eq!(plain.tenant_of(0), TenantId::ZERO);
        assert!(!plain.identity().contains(":t1:seed3:"));
        let tagged = WorkloadSource::new(&spec, 2, 3).with_tenant(TenantId(2));
        assert_eq!(tagged.tenant_of(1), TenantId(2));
        assert_eq!(tagged.identity(), format!("{}:t2", plain.identity()));
        assert_eq!(tagged.tenant_map().tenant_count(), 3);
        // The tag never perturbs the generated streams.
        let mut a = WorkloadSource::new(&spec, 2, 3);
        let mut b = WorkloadSource::new(&spec, 2, 3).with_tenant(TenantId(1));
        for _ in 0..100 {
            assert_eq!(a.next_record(0).unwrap(), b.next_record(0).unwrap());
        }
    }

    #[test]
    fn unit_record_conversion_round_trips() {
        let spec = spec();
        let mut g = TraceGenerator::new(&spec, 0, 1, 1);
        for _ in 0..100 {
            let unit = g.next_unit();
            let record: TraceRecord = unit.into();
            assert_eq!(record.size_bytes, 64);
            assert_eq!(WorkUnit::from(record), unit);
        }
    }
}
