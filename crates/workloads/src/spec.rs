//! Workload specifications (Table I of the paper).

use serde::{Deserialize, Serialize};
use skybyte_types::PAGE_SIZE;
use std::fmt;

/// The seven benchmarks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Betweenness centrality (GAP benchmark suite) — graph processing.
    Bc,
    /// Breadth-first search on a dense graph (Rodinia) — graph processing.
    BfsDense,
    /// Deep-learning recommendation model inference/training (Meta DLRM).
    Dlrm,
    /// Radix sort (Splash-3) — HPC.
    Radix,
    /// Speckle-reducing anisotropic diffusion (Rodinia) — image processing.
    Srad,
    /// TPC-C on the N-Store in-memory database (WHISPER).
    Tpcc,
    /// YCSB workload B on N-Store (WHISPER).
    Ycsb,
}

impl WorkloadKind {
    /// All workloads in the order used by the paper's figures.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Bc,
        WorkloadKind::BfsDense,
        WorkloadKind::Dlrm,
        WorkloadKind::Radix,
        WorkloadKind::Srad,
        WorkloadKind::Tpcc,
        WorkloadKind::Ycsb,
    ];

    /// The paper's name for the workload.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Bc => "bc",
            WorkloadKind::BfsDense => "bfs-dense",
            WorkloadKind::Dlrm => "dlrm",
            WorkloadKind::Radix => "radix",
            WorkloadKind::Srad => "srad",
            WorkloadKind::Tpcc => "tpcc",
            WorkloadKind::Ycsb => "ycsb",
        }
    }

    /// Parses a paper workload name (as printed by [`Self::name`]).
    pub fn from_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The Table I characteristics and the synthetic access-pattern model of
    /// this workload.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadKind::Bc => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(8.18),
                write_ratio: 0.11,
                llc_mpki: 39.4,
                pattern: AccessPattern::PowerLawGraph,
                zipf_exponent: 0.9,
                page_cacheline_coverage: 0.15,
                hot_page_fraction: 0.10,
                hot_access_fraction: 0.70,
                sequential_run_pages: 1,
            },
            WorkloadKind::BfsDense => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(9.13),
                write_ratio: 0.25,
                llc_mpki: 122.9,
                pattern: AccessPattern::PowerLawGraph,
                zipf_exponent: 0.6,
                page_cacheline_coverage: 0.20,
                hot_page_fraction: 0.25,
                hot_access_fraction: 0.45,
                sequential_run_pages: 1,
            },
            WorkloadKind::Dlrm => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(12.35),
                write_ratio: 0.32,
                llc_mpki: 5.1,
                pattern: AccessPattern::EmbeddingGather,
                zipf_exponent: 0.8,
                page_cacheline_coverage: 0.10,
                hot_page_fraction: 0.05,
                hot_access_fraction: 0.50,
                sequential_run_pages: 2,
            },
            WorkloadKind::Radix => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(9.60),
                write_ratio: 0.29,
                llc_mpki: 7.1,
                pattern: AccessPattern::StreamingSort,
                zipf_exponent: 0.2,
                page_cacheline_coverage: 0.60,
                hot_page_fraction: 0.30,
                hot_access_fraction: 0.35,
                sequential_run_pages: 8,
            },
            WorkloadKind::Srad => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(8.16),
                write_ratio: 0.24,
                llc_mpki: 7.5,
                pattern: AccessPattern::StridedStencil,
                zipf_exponent: 0.1,
                page_cacheline_coverage: 0.35,
                hot_page_fraction: 0.20,
                hot_access_fraction: 0.25,
                sequential_run_pages: 4,
            },
            WorkloadKind::Tpcc => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(15.77),
                write_ratio: 0.36,
                llc_mpki: 1.0,
                pattern: AccessPattern::Transactional,
                zipf_exponent: 1.1,
                page_cacheline_coverage: 0.30,
                hot_page_fraction: 0.08,
                hot_access_fraction: 0.80,
                sequential_run_pages: 1,
            },
            WorkloadKind::Ycsb => WorkloadSpec {
                kind: self,
                footprint_bytes: gib_f(9.61),
                write_ratio: 0.05,
                llc_mpki: 92.2,
                pattern: AccessPattern::KeyValueZipf,
                zipf_exponent: 0.99,
                page_cacheline_coverage: 0.25,
                hot_page_fraction: 0.10,
                hot_access_fraction: 0.75,
                sequential_run_pages: 1,
            },
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn gib_f(g: f64) -> u64 {
    (g * (1u64 << 30) as f64) as u64
}

/// The high-level shape of a workload's memory references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Power-law vertex/edge accesses (bc, bfs-dense): a Zipf-distributed hot
    /// set of pages plus uniform scans, few cachelines touched per page.
    PowerLawGraph,
    /// Embedding-table gathers (dlrm): very sparse random reads over a huge
    /// table plus a small dense write region for gradients.
    EmbeddingGather,
    /// Streaming permutation (radix): long sequential runs with scattered
    /// scatter-phase writes, high per-page coverage.
    StreamingSort,
    /// Strided stencil sweeps (srad): regular strides across an image plane
    /// with scattered sparse writes.
    StridedStencil,
    /// Transactional tables (tpcc): highly skewed row updates with good
    /// temporal locality.
    Transactional,
    /// Zipfian key-value lookups (ycsb-B): read-mostly with a small hot set.
    KeyValueZipf,
}

/// A fully parameterised workload description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which benchmark this spec describes.
    pub kind: WorkloadKind,
    /// Total memory footprint in bytes (Table I, possibly scaled).
    pub footprint_bytes: u64,
    /// Fraction of memory accesses that are writes (Table I).
    pub write_ratio: f64,
    /// LLC misses per kilo-instruction (Table I); determines the compute
    /// between consecutive off-chip accesses.
    pub llc_mpki: f64,
    /// Access-pattern family used by the generator.
    pub pattern: AccessPattern,
    /// Zipf exponent of the page-popularity distribution.
    pub zipf_exponent: f64,
    /// Average fraction of a page's 64 cachelines touched while the page is
    /// "hot" (Figures 5–6: usually below 0.4).
    pub page_cacheline_coverage: f64,
    /// Fraction of pages forming the hot set.
    pub hot_page_fraction: f64,
    /// Fraction of accesses that go to the hot set.
    pub hot_access_fraction: f64,
    /// Length of sequential page runs (spatial locality), in pages.
    pub sequential_run_pages: u32,
}

impl WorkloadSpec {
    /// The paper's name of the workload.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Number of 4 KiB pages in the footprint.
    pub fn footprint_pages(&self) -> u64 {
        (self.footprint_bytes / PAGE_SIZE as u64).max(1)
    }

    /// Average number of instructions between consecutive off-chip accesses
    /// (1000 / MPKI).
    pub fn instructions_per_miss(&self) -> u64 {
        (1000.0 / self.llc_mpki).round().max(1.0) as u64
    }

    /// Returns a copy of the spec with the footprint scaled to
    /// `footprint_bytes`, preserving every other characteristic. Used to run
    /// the paper's workloads against a scaled-down simulated SSD while
    /// keeping the footprint : SSD-DRAM ratio of the original setup.
    pub fn scaled_to(mut self, footprint_bytes: u64) -> Self {
        self.footprint_bytes = footprint_bytes.max(PAGE_SIZE as u64);
        self
    }
}

/// The rows of Table I (workload name, memory footprint, write ratio,
/// LLC MPKI), in the paper's order.
pub fn table1_characteristics() -> Vec<(String, u64, f64, f64)> {
    WorkloadKind::ALL
        .iter()
        .map(|k| {
            let s = k.spec();
            (
                s.name().to_string(),
                s.footprint_bytes,
                s.write_ratio,
                s.llc_mpki,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let bc = WorkloadKind::Bc.spec();
        assert_eq!(bc.name(), "bc");
        assert!((bc.footprint_bytes as f64 / (1u64 << 30) as f64 - 8.18).abs() < 0.01);
        assert!((bc.write_ratio - 0.11).abs() < 1e-9);
        assert!((bc.llc_mpki - 39.4).abs() < 1e-9);

        let tpcc = WorkloadKind::Tpcc.spec();
        assert!((tpcc.footprint_bytes as f64 / (1u64 << 30) as f64 - 15.77).abs() < 0.01);
        assert!((tpcc.write_ratio - 0.36).abs() < 1e-9);
        assert_eq!(tpcc.instructions_per_miss(), 1000);

        let bfs = WorkloadKind::BfsDense.spec();
        assert!((bfs.llc_mpki - 122.9).abs() < 1e-9);
        assert_eq!(bfs.instructions_per_miss(), 8);

        let ycsb = WorkloadKind::Ycsb.spec();
        assert!((ycsb.write_ratio - 0.05).abs() < 1e-9);
    }

    #[test]
    fn all_workloads_have_sane_parameters() {
        for kind in WorkloadKind::ALL {
            let s = kind.spec();
            assert!(s.footprint_bytes > 8 << 30, "{kind}: footprint too small");
            assert!((0.0..=1.0).contains(&s.write_ratio), "{kind}");
            assert!(s.llc_mpki > 0.0, "{kind}");
            assert!((0.0..=1.0).contains(&s.page_cacheline_coverage), "{kind}");
            assert!((0.0..=1.0).contains(&s.hot_page_fraction), "{kind}");
            assert!((0.0..=1.0).contains(&s.hot_access_fraction), "{kind}");
            assert!(s.sequential_run_pages >= 1, "{kind}");
            assert!(s.footprint_pages() > 1_000_000, "{kind}");
        }
    }

    #[test]
    fn scaled_spec_keeps_ratios() {
        let s = WorkloadKind::Srad.spec().scaled_to(64 << 20);
        assert_eq!(s.footprint_bytes, 64 << 20);
        assert_eq!(s.footprint_pages(), (64 << 20) / 4096);
        assert!((s.write_ratio - 0.24).abs() < 1e-9);
        // Scaling never goes below one page.
        let tiny = WorkloadKind::Srad.spec().scaled_to(1);
        assert_eq!(tiny.footprint_pages(), 1);
    }

    #[test]
    fn table1_has_seven_rows() {
        let t = table1_characteristics();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].0, "bc");
        assert_eq!(t[5].0, "tpcc");
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(WorkloadKind::BfsDense.to_string(), "bfs-dense");
        assert_eq!(WorkloadKind::Dlrm.to_string(), "dlrm");
    }

    #[test]
    fn from_name_inverts_name() {
        for kind in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }
}
