//! Page-locality analysis (Figures 5 and 6 of the paper).
//!
//! Figure 5 plots, for each page read from flash into the SSD DRAM, the CDF
//! of the fraction of its cachelines that are actually accessed; Figure 6
//! plots the same for dirty cachelines of flushed pages. Both show that most
//! workloads touch fewer than 40 % of the cachelines of most pages — the
//! motivation for the cacheline-granular write log. This module computes the
//! same CDFs directly from a generated trace.

use crate::generator::WorkUnit;
use serde::{Deserialize, Serialize};
use skybyte_types::CACHELINES_PER_PAGE;
use std::collections::HashMap;

/// A CDF over "fraction of cachelines touched per page".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityCdf {
    /// `(coverage_ratio, fraction_of_pages_with_coverage <= ratio)` points,
    /// sorted by ratio.
    pub points: Vec<(f64, f64)>,
    /// Number of distinct pages observed.
    pub pages: u64,
}

impl LocalityCdf {
    /// Fraction of pages whose cacheline coverage is at most `ratio`.
    pub fn fraction_of_pages_below(&self, ratio: f64) -> f64 {
        let mut best = 0.0;
        for (r, f) in &self.points {
            if *r <= ratio {
                best = *f;
            } else {
                break;
            }
        }
        best
    }

    /// Mean cacheline coverage across pages.
    pub fn mean_coverage(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        // Reconstruct the mean from the CDF steps.
        let mut mean = 0.0;
        let mut prev_f = 0.0;
        for (r, f) in &self.points {
            mean += r * (f - prev_f);
            prev_f = *f;
        }
        mean
    }
}

/// Computes the read and write page-locality CDFs of a trace.
///
/// Returns `(read_cdf, write_cdf)`: the read CDF covers every accessed page
/// (Figure 5), the write CDF covers only pages with at least one written
/// cacheline (Figure 6).
pub fn page_locality_cdf<'a, I>(units: I) -> (LocalityCdf, LocalityCdf)
where
    I: IntoIterator<Item = &'a WorkUnit>,
{
    let mut read_sets: HashMap<u64, u64> = HashMap::new();
    let mut write_sets: HashMap<u64, u64> = HashMap::new();
    for u in units {
        let page = u.access.addr.page().index();
        let bit = 1u64 << u.access.addr.cacheline_in_page();
        *read_sets.entry(page).or_insert(0) |= bit;
        if u.access.kind.is_write() {
            *write_sets.entry(page).or_insert(0) |= bit;
        }
    }
    (build_cdf(&read_sets), build_cdf(&write_sets))
}

fn build_cdf(sets: &HashMap<u64, u64>) -> LocalityCdf {
    let pages = sets.len() as u64;
    if pages == 0 {
        return LocalityCdf {
            points: Vec::new(),
            pages: 0,
        };
    }
    let mut coverages: Vec<f64> = sets
        .values()
        .map(|bits| bits.count_ones() as f64 / CACHELINES_PER_PAGE as f64)
        .collect();
    coverages.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut points: Vec<(f64, f64)> = Vec::new();
    for (i, c) in coverages.iter().enumerate() {
        let f = (i + 1) as f64 / pages as f64;
        match points.last_mut() {
            Some((last_c, last_f)) if (*last_c - c).abs() < f64::EPSILON => *last_f = f,
            _ => points.push((*c, f)),
        }
    }
    LocalityCdf { points, pages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::spec::WorkloadKind;
    use skybyte_types::{AccessKind, MemAccess, VirtAddr};

    fn unit(page: u64, cl: u64, write: bool) -> WorkUnit {
        WorkUnit {
            instructions: 10,
            access: MemAccess::new(
                VirtAddr::new(page * 4096 + cl * 64),
                if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            ),
        }
    }

    #[test]
    fn cdf_of_handcrafted_trace() {
        // Page 0: 2 cachelines read; page 1: 32 read, 1 written.
        let mut trace = vec![unit(0, 0, false), unit(0, 1, false), unit(1, 5, true)];
        for cl in 0..32 {
            trace.push(unit(1, cl, false));
        }
        let (read, write) = page_locality_cdf(&trace);
        assert_eq!(read.pages, 2);
        assert_eq!(write.pages, 1);
        // Page 0 covers 2/64 ≈ 0.031; page 1 covers 32/64 = 0.5.
        assert!((read.fraction_of_pages_below(0.1) - 0.5).abs() < 1e-9);
        assert!((read.fraction_of_pages_below(0.6) - 1.0).abs() < 1e-9);
        assert!((write.fraction_of_pages_below(0.05) - 1.0).abs() < 1e-9);
        assert!(read.mean_coverage() > 0.2 && read.mean_coverage() < 0.3);
    }

    #[test]
    fn empty_trace_has_empty_cdf() {
        let (read, write) = page_locality_cdf(&[]);
        assert_eq!(read.pages, 0);
        assert_eq!(write.pages, 0);
        assert_eq!(read.fraction_of_pages_below(1.0), 0.0);
        assert_eq!(read.mean_coverage(), 0.0);
        let _ = write;
    }

    #[test]
    fn generated_workloads_reproduce_paper_observation() {
        // "Many workloads only access less than 40% of the cache lines in
        // more than 75% of pages" — check it for the sparse workloads.
        for kind in [WorkloadKind::Bc, WorkloadKind::Dlrm, WorkloadKind::Ycsb] {
            let spec = kind.spec().scaled_to(32 << 20);
            let mut g = TraceGenerator::new(&spec, 0, 4, 21);
            let trace = g.generate(40_000);
            let (read, _write) = page_locality_cdf(&trace);
            assert!(
                read.fraction_of_pages_below(0.4) > 0.75,
                "{kind}: only {:.2} of pages below 40% coverage",
                read.fraction_of_pages_below(0.4)
            );
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let spec = WorkloadKind::Radix.spec().scaled_to(16 << 20);
        let mut g = TraceGenerator::new(&spec, 0, 2, 3);
        let trace = g.generate(20_000);
        let (read, write) = page_locality_cdf(&trace);
        for cdf in [&read, &write] {
            for w in cdf.points.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert!(w[0].1 <= w[1].1);
            }
            if let Some(last) = cdf.points.last() {
                assert!((last.1 - 1.0).abs() < 1e-9);
            }
        }
    }
}
