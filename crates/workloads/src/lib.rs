//! Synthetic workload generators for the SkyByte evaluation.
//!
//! The paper evaluates seven multi-threaded, data-intensive benchmarks
//! (Table I): `bc` (GAP), `bfs-dense` and `srad` (Rodinia), `radix`
//! (Splash-3), `ycsb` and `tpcc` (WHISPER / N-Store) and `dlrm`. The original
//! artifact replays PIN instruction traces of these programs; those traces
//! are not redistributable here, so this crate generates **synthetic traces
//! with the same published characteristics**:
//!
//! * memory footprint, write ratio and LLC MPKI exactly as listed in Table I
//!   (scaled down together with the simulated SSD so the
//!   footprint-to-SSD-DRAM ratio is preserved),
//! * intra-page cacheline coverage matching the observation of Figures 5–6
//!   that most workloads touch fewer than 40 % of the cachelines in more than
//!   75 % of pages,
//! * per-domain access patterns (power-law graph neighbourhoods, streaming
//!   sorts, strided stencils, Zipfian key-value lookups, skewed transactional
//!   updates, embedding gathers) that determine how much each workload
//!   benefits from page promotion vs the write log, reproducing the relative
//!   ordering of the paper's per-workload results.
//!
//! # Example
//!
//! ```
//! use skybyte_workloads::{TraceGenerator, WorkloadKind};
//!
//! let spec = WorkloadKind::Bc.spec().scaled_to(64 << 20); // 64 MiB footprint
//! let mut gen = TraceGenerator::new(&spec, /*thread*/ 0, /*threads*/ 4, /*seed*/ 42);
//! let unit = gen.next_unit();
//! assert!(unit.access.addr.as_u64() < spec.footprint_bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod locality;
mod source;
mod spec;
mod zipf;

pub use generator::{TraceGenerator, WorkUnit};
pub use locality::{page_locality_cdf, LocalityCdf};
pub use source::WorkloadSource;
pub use spec::{table1_characteristics, AccessPattern, WorkloadKind, WorkloadSpec};
pub use zipf::Zipf;

// Re-export the trace abstraction so downstream crates can drive the
// simulator from recorded or composed traces without naming skybyte-trace.
pub use skybyte_trace::{TraceError, TraceRecord, TraceSource};
