//! The page-granular, set-associative read-write data cache of the SSD DRAM.
//!
//! Pages are fetched from flash on read misses (a whole page must be read
//! anyway) and cached to exploit spatial locality. The cache tracks per-page
//! dirty-cacheline bitmaps: in the **Base-CSSD** baseline dirty pages are
//! written back in full on eviction (the write-amplification problem of
//! §II-C); in SkyByte the write log absorbs writes instead and cached pages
//! stay clean unless explicitly updated in parallel with the log (W2 of
//! Figure 11).

use crate::policy::{
    AdmissionPolicy, AdmissionPolicyImpl, EvictionPolicy, EvictionPolicyImpl, WayMeta,
};
use serde::{Deserialize, Serialize};
use skybyte_types::policy::{AdmissionPolicyKind, EvictionPolicyKind};
use skybyte_types::{CachelineIndex, Lpa, CACHELINES_PER_PAGE, PAGE_SIZE};

/// A page evicted from the data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedPage {
    /// The evicted logical page.
    pub lpa: Lpa,
    /// Bitmap of dirty cachelines (nonzero means the page must be written
    /// back to flash in a page-granular design).
    pub dirty_bitmap: u64,
}

impl EvictedPage {
    /// Whether any cacheline of the evicted page was dirty.
    pub fn is_dirty(&self) -> bool {
        self.dirty_bitmap != 0
    }

    /// Number of dirty cachelines in the evicted page.
    pub fn dirty_count(&self) -> u32 {
        self.dirty_bitmap.count_ones()
    }
}

/// Hit/miss statistics of the data cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages inserted.
    pub insertions: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Dirty pages evicted (requiring a flash write in page-granular mode).
    pub dirty_evictions: u64,
    /// Total dirty cachelines across all dirty evictions (for the Figure 6
    /// style locality accounting).
    pub dirty_cachelines_evicted: u64,
    /// Total accessed cachelines observed at eviction time (Figure 5 style).
    pub accessed_cachelines_evicted: u64,
    /// New-page insertions rejected by the admission policy (always zero
    /// under the default admit-all policy).
    #[serde(default)]
    pub admission_bypasses: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PageEntry {
    lpa: Lpa,
    dirty_bitmap: u64,
    accessed_bitmap: u64,
}

/// A set-associative, page-granular cache indexed by logical page address.
///
/// Replacement and admission decisions are delegated to the policy seams of
/// [`crate::policy`]; the defaults (pseudo-LRU, admit-all) reproduce the
/// original hard-wired cache decision for decision.
///
/// # Example
///
/// ```
/// use skybyte_cache::DataCache;
/// use skybyte_types::Lpa;
///
/// let mut cache = DataCache::new(8 * 4096, 2); // 8 pages, 2-way
/// assert!(cache.insert(Lpa::new(1)).is_none());
/// assert!(cache.contains(Lpa::new(1)));
/// cache.mark_dirty(Lpa::new(1), 3);
/// assert_eq!(cache.dirty_bitmap(Lpa::new(1)), Some(1 << 3));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCache {
    sets: Vec<Vec<PageEntry>>,
    /// Per-way replacement metadata, kept in lockstep with `sets`.
    meta: Vec<Vec<WayMeta>>,
    ways: usize,
    capacity_pages: usize,
    tick: u64,
    eviction: EvictionPolicyImpl,
    admission: AdmissionPolicyImpl,
    stats: DataCacheStats,
}

impl DataCache {
    /// Creates a cache of `size_bytes` capacity with the given associativity
    /// and the default policies (pseudo-LRU eviction, admit-all admission).
    /// The number of sets is rounded down to at least one.
    ///
    /// # Panics
    ///
    /// Panics if the cache cannot hold at least one page or `ways == 0`.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        Self::with_policies(
            size_bytes,
            ways,
            EvictionPolicyKind::default(),
            AdmissionPolicyKind::default(),
        )
    }

    /// Creates a cache with explicit eviction and admission policies.
    ///
    /// # Panics
    ///
    /// Panics if the cache cannot hold at least one page or `ways == 0`.
    pub fn with_policies(
        size_bytes: u64,
        ways: u32,
        eviction: EvictionPolicyKind,
        admission: AdmissionPolicyKind,
    ) -> Self {
        assert!(ways > 0, "associativity must be at least 1");
        let capacity_pages = (size_bytes / PAGE_SIZE as u64) as usize;
        assert!(
            capacity_pages >= 1,
            "data cache too small: {size_bytes} bytes"
        );
        let ways = (ways as usize).min(capacity_pages);
        let sets = (capacity_pages / ways).max(1);
        DataCache {
            sets: vec![Vec::with_capacity(ways); sets],
            meta: vec![Vec::with_capacity(ways); sets],
            ways,
            capacity_pages: sets * ways,
            tick: 0,
            eviction: EvictionPolicyImpl::new(eviction, sets, ways),
            admission: AdmissionPolicyImpl::new(admission),
            stats: DataCacheStats::default(),
        }
    }

    /// The active eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicyKind {
        self.eviction.kind()
    }

    /// The active admission policy.
    pub fn admission_policy(&self) -> AdmissionPolicyKind {
        self.admission.kind()
    }

    fn set_of(&self, lpa: Lpa) -> usize {
        (lpa.index() % self.sets.len() as u64) as usize
    }

    /// Looks up a page, updating replacement state and recording the accessed
    /// cacheline. Returns `true` on a hit.
    pub fn access(&mut self, lpa: Lpa, cl: CachelineIndex) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(lpa);
        let found = self.sets[set].iter().position(|e| e.lpa == lpa);
        match found {
            Some(way) => {
                self.meta[set][way].last_access = tick;
                self.eviction.on_hit(set, way, &mut self.meta[set]);
                self.sets[set][way].accessed_bitmap |= 1u64 << (cl as usize % CACHELINES_PER_PAGE);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Whether the page is cached (no replacement update, no statistics).
    pub fn contains(&self, lpa: Lpa) -> bool {
        let set = self.set_of(lpa);
        self.sets[set].iter().any(|e| e.lpa == lpa)
    }

    /// Inserts a page fetched from flash, evicting the policy's victim if the
    /// set is full. Returns the evicted page, if any.
    ///
    /// Inserting an already-cached page refreshes its replacement position
    /// and returns `None`. A page the admission policy rejects is not
    /// inserted (and nothing is evicted); rejections are counted in
    /// [`DataCacheStats::admission_bypasses`].
    pub fn insert(&mut self, lpa: Lpa) -> Option<EvictedPage> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(lpa);
        if let Some(way) = self.sets[set].iter().position(|e| e.lpa == lpa) {
            self.meta[set][way].last_access = tick;
            self.eviction.on_hit(set, way, &mut self.meta[set]);
            return None;
        }
        if !self.admission.admit(lpa) {
            self.stats.admission_bypasses += 1;
            return None;
        }
        self.stats.insertions += 1;
        let mut evicted = None;
        if self.sets[set].len() >= self.ways {
            let victim_idx = self.eviction.victim(set, &mut self.meta[set]);
            let victim = self.sets[set].swap_remove(victim_idx);
            self.meta[set].swap_remove(victim_idx);
            self.stats.evictions += 1;
            self.stats.accessed_cachelines_evicted += victim.accessed_bitmap.count_ones() as u64;
            if victim.dirty_bitmap != 0 {
                self.stats.dirty_evictions += 1;
                self.stats.dirty_cachelines_evicted += victim.dirty_bitmap.count_ones() as u64;
            }
            evicted = Some(EvictedPage {
                lpa: victim.lpa,
                dirty_bitmap: victim.dirty_bitmap,
            });
        }
        self.sets[set].push(PageEntry {
            lpa,
            dirty_bitmap: 0,
            accessed_bitmap: 0,
        });
        self.meta[set].push(WayMeta::inserted(tick));
        let way = self.sets[set].len() - 1;
        self.eviction.on_insert(set, way, &mut self.meta[set]);
        evicted
    }

    /// Marks one cacheline of a cached page dirty (W2 of Figure 11 for
    /// SkyByte, or the write path of Base-CSSD). Returns `false` if the page
    /// is not cached.
    pub fn mark_dirty(&mut self, lpa: Lpa, cl: CachelineIndex) -> bool {
        let set = self.set_of(lpa);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.lpa == lpa) {
            let bit = 1u64 << (cl as usize % CACHELINES_PER_PAGE);
            e.dirty_bitmap |= bit;
            e.accessed_bitmap |= bit;
            true
        } else {
            false
        }
    }

    /// Clears the dirty bitmap of a cached page (after the page has been
    /// flushed to flash by compaction). Returns the previous bitmap.
    pub fn clean(&mut self, lpa: Lpa) -> Option<u64> {
        let set = self.set_of(lpa);
        self.sets[set].iter_mut().find(|e| e.lpa == lpa).map(|e| {
            let old = e.dirty_bitmap;
            e.dirty_bitmap = 0;
            old
        })
    }

    /// Dirty-cacheline bitmap of a cached page.
    pub fn dirty_bitmap(&self, lpa: Lpa) -> Option<u64> {
        let set = self.set_of(lpa);
        self.sets[set]
            .iter()
            .find(|e| e.lpa == lpa)
            .map(|e| e.dirty_bitmap)
    }

    /// Removes a page (used when it is promoted to host DRAM). Returns the
    /// removed page's eviction record if it was present.
    pub fn remove(&mut self, lpa: Lpa) -> Option<EvictedPage> {
        let set = self.set_of(lpa);
        let idx = self.sets[set].iter().position(|e| e.lpa == lpa)?;
        let e = self.sets[set].swap_remove(idx);
        self.meta[set].swap_remove(idx);
        Some(EvictedPage {
            lpa: e.lpa,
            dirty_bitmap: e.dirty_bitmap,
        })
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of pages the cache can hold.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &DataCacheStats {
        &self.stats
    }

    /// The LPAs of all currently cached pages (unordered).
    pub fn cached_pages(&self) -> Vec<Lpa> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|e| e.lpa))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_access() {
        let mut c = DataCache::new(4 * 4096, 4);
        assert!(!c.access(Lpa::new(1), 0));
        c.insert(Lpa::new(1));
        assert!(c.access(Lpa::new(1), 5));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity_pages(), 4);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways.
        let mut c = DataCache::new(2 * 4096, 2);
        c.insert(Lpa::new(1));
        c.insert(Lpa::new(2));
        // Touch page 1 so page 2 becomes LRU.
        c.access(Lpa::new(1), 0);
        let evicted = c.insert(Lpa::new(3)).expect("eviction");
        assert_eq!(evicted.lpa, Lpa::new(2));
        assert!(!evicted.is_dirty());
        assert!(c.contains(Lpa::new(1)));
        assert!(c.contains(Lpa::new(3)));
        assert!(!c.contains(Lpa::new(2)));
    }

    #[test]
    fn dirty_tracking_and_clean() {
        let mut c = DataCache::new(2 * 4096, 2);
        c.insert(Lpa::new(1));
        assert!(c.mark_dirty(Lpa::new(1), 3));
        assert!(c.mark_dirty(Lpa::new(1), 10));
        assert!(!c.mark_dirty(Lpa::new(9), 0));
        assert_eq!(c.dirty_bitmap(Lpa::new(1)), Some((1 << 3) | (1 << 10)));
        assert_eq!(c.clean(Lpa::new(1)), Some((1 << 3) | (1 << 10)));
        assert_eq!(c.dirty_bitmap(Lpa::new(1)), Some(0));
        assert_eq!(c.clean(Lpa::new(42)), None);
    }

    #[test]
    fn dirty_eviction_statistics() {
        let mut c = DataCache::new(4096, 1);
        c.insert(Lpa::new(1));
        c.mark_dirty(Lpa::new(1), 0);
        c.mark_dirty(Lpa::new(1), 1);
        let e = c.insert(Lpa::new(2)).unwrap();
        assert!(e.is_dirty());
        assert_eq!(e.dirty_count(), 2);
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().dirty_cachelines_evicted, 2);
    }

    #[test]
    fn remove_for_promotion() {
        let mut c = DataCache::new(4 * 4096, 4);
        c.insert(Lpa::new(7));
        c.mark_dirty(Lpa::new(7), 1);
        let removed = c.remove(Lpa::new(7)).unwrap();
        assert_eq!(removed.lpa, Lpa::new(7));
        assert!(removed.is_dirty());
        assert!(!c.contains(Lpa::new(7)));
        assert!(c.remove(Lpa::new(7)).is_none());
    }

    #[test]
    fn reinsert_refreshes_lru_without_eviction() {
        let mut c = DataCache::new(2 * 4096, 2);
        c.insert(Lpa::new(1));
        c.insert(Lpa::new(2));
        assert!(c.insert(Lpa::new(1)).is_none());
        // Page 2 is now LRU.
        let e = c.insert(Lpa::new(3)).unwrap();
        assert_eq!(e.lpa, Lpa::new(2));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = DataCache::new(8 * 4096, 2);
        for i in 0..100u64 {
            c.insert(Lpa::new(i));
            assert!(c.len() <= c.capacity_pages());
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_cache() {
        let _ = DataCache::new(100, 1);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn rejects_zero_ways() {
        let _ = DataCache::new(4096, 0);
    }

    #[test]
    fn default_policies_are_pseudo_lru_admit_all() {
        let c = DataCache::new(4 * 4096, 4);
        assert_eq!(c.eviction_policy(), EvictionPolicyKind::PseudoLru);
        assert_eq!(c.admission_policy(), AdmissionPolicyKind::AdmitAll);
    }

    #[test]
    fn clock_policy_spares_referenced_pages() {
        // 1 set, 2 ways, CLOCK.
        let mut c = DataCache::with_policies(
            2 * 4096,
            2,
            EvictionPolicyKind::Clock,
            AdmissionPolicyKind::AdmitAll,
        );
        c.insert(Lpa::new(1));
        c.insert(Lpa::new(2));
        c.access(Lpa::new(1), 0); // sets page 1's reference bit
        let e = c.insert(Lpa::new(3)).expect("eviction");
        assert_eq!(e.lpa, Lpa::new(2));
        assert!(c.contains(Lpa::new(1)));
    }

    #[test]
    fn two_q_policy_evicts_probationary_pages_first() {
        // 1 set, 4 ways, 2Q: page 1 is re-referenced (protected), the scan
        // pages 2..4 churn through the probationary segment.
        let mut c = DataCache::with_policies(
            4 * 4096,
            4,
            EvictionPolicyKind::TwoQ,
            AdmissionPolicyKind::AdmitAll,
        );
        for i in 1..=4u64 {
            c.insert(Lpa::new(i));
        }
        c.access(Lpa::new(1), 0); // promote to protected
        let e = c.insert(Lpa::new(5)).expect("eviction");
        assert_eq!(e.lpa, Lpa::new(2), "oldest probationary page goes first");
        assert!(c.contains(Lpa::new(1)));
    }

    #[test]
    fn fifo_policy_evicts_in_insertion_order() {
        let mut c = DataCache::with_policies(
            2 * 4096,
            2,
            EvictionPolicyKind::Fifo,
            AdmissionPolicyKind::AdmitAll,
        );
        c.insert(Lpa::new(1));
        c.insert(Lpa::new(2));
        c.access(Lpa::new(1), 0); // recency must not matter
        let e = c.insert(Lpa::new(3)).expect("eviction");
        assert_eq!(e.lpa, Lpa::new(1));
    }

    #[test]
    fn bypass_scan_admission_rejects_long_sequential_runs() {
        let mut c = DataCache::with_policies(
            64 * 4096,
            4,
            EvictionPolicyKind::PseudoLru,
            AdmissionPolicyKind::BypassScan,
        );
        for i in 0..32u64 {
            c.insert(Lpa::new(i));
        }
        assert!(c.stats().admission_bypasses > 0);
        assert!(
            c.len() < 32,
            "a long scan must not fully populate the cache"
        );
        // A non-sequential page is admitted again.
        c.insert(Lpa::new(1000));
        assert!(c.contains(Lpa::new(1000)));
    }

    proptest! {
        /// The cache never exceeds its capacity and `contains` is consistent
        /// with `cached_pages` under arbitrary insert/access/remove sequences.
        #[test]
        fn prop_capacity_and_consistency(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..300)) {
            let mut c = DataCache::new(16 * 4096, 4);
            for (op, page) in ops {
                match op {
                    0 => { c.insert(Lpa::new(page)); }
                    1 => { c.access(Lpa::new(page), (page % 64) as u8); }
                    _ => { c.remove(Lpa::new(page)); }
                }
                prop_assert!(c.len() <= c.capacity_pages());
                let cached = c.cached_pages();
                prop_assert_eq!(cached.len(), c.len());
                for lpa in cached {
                    prop_assert!(c.contains(lpa));
                }
            }
        }
    }
}
