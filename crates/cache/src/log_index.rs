//! The two-level hash index of the write log (Figure 12 of the paper).
//!
//! The first level is a hash table keyed by logical page address (LPA). Each
//! valid entry points to a second-level hash table that maps the page offset
//! (6 bits, 0..=63) of every logged cacheline of that page to its offset in
//! the log array (26 bits in the paper). Grouping by page makes compaction a
//! single first-level traversal, while lookups stay amortised O(1).
//!
//! To bound memory, second-level tables start with four entries (16 B) and
//! double whenever their load factor exceeds a threshold (0.75 by default),
//! exactly as described in §III-B. [`LogIndex::memory_bytes`] reports the
//! resulting footprint using the paper's entry sizes (16 B per first-level
//! entry, 4 B per second-level slot), which is how we reproduce the "5.6 MB
//! average index footprint" observation.

use serde::{Deserialize, Serialize};
use skybyte_types::{CachelineIndex, Lpa, CACHELINES_PER_PAGE};
use std::collections::HashMap;

/// Size of a first-level entry in bytes (8 B LPA + 8 B pointer).
const FIRST_LEVEL_ENTRY_BYTES: u64 = 16;
/// Size of a second-level slot in bytes (6-bit page offset + 26-bit log offset).
const SECOND_LEVEL_SLOT_BYTES: u64 = 4;
/// Initial number of slots in a second-level table.
const SECOND_LEVEL_INITIAL_SLOTS: usize = 4;

/// A second-level table: page offset → log offset, with on-demand doubling.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SecondLevelTable {
    /// Allocated slot count (power of two, models the hash-table storage).
    allocated_slots: usize,
    /// Live entries: cacheline offset within the page → offset in the log.
    entries: HashMap<CachelineIndex, u32>,
}

impl SecondLevelTable {
    fn new() -> Self {
        SecondLevelTable {
            allocated_slots: SECOND_LEVEL_INITIAL_SLOTS,
            entries: HashMap::with_capacity(SECOND_LEVEL_INITIAL_SLOTS),
        }
    }

    fn insert(&mut self, cl: CachelineIndex, log_offset: u32, load_factor: f64) {
        self.entries.insert(cl, log_offset);
        while self.entries.len() as f64 > self.allocated_slots as f64 * load_factor
            && self.allocated_slots < CACHELINES_PER_PAGE
        {
            self.allocated_slots = (self.allocated_slots * 2).min(CACHELINES_PER_PAGE);
        }
    }
}

/// Memory-footprint statistics of the index (paper §III-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogIndexStats {
    /// Number of pages tracked (first-level entries).
    pub pages: u64,
    /// Number of cachelines tracked (second-level entries in use).
    pub cachelines: u64,
    /// Total allocated second-level slots (≥ `cachelines` due to power-of-two
    /// sizing).
    pub allocated_slots: u64,
    /// Number of second-level table resize (doubling) events.
    pub resizes: u64,
}

/// The two-level hash index mapping `(LPA, cacheline)` to a log offset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogIndex {
    first_level: HashMap<Lpa, SecondLevelTable>,
    load_factor: f64,
    resizes: u64,
}

impl LogIndex {
    /// Creates an empty index with the given second-level resize load factor.
    ///
    /// # Panics
    ///
    /// Panics if `load_factor` is not in `(0, 1]`.
    pub fn new(load_factor: f64) -> Self {
        assert!(
            load_factor > 0.0 && load_factor <= 1.0,
            "load factor must be in (0, 1]"
        );
        LogIndex {
            first_level: HashMap::new(),
            load_factor,
            resizes: 0,
        }
    }

    /// Records that the latest copy of `(lpa, cl)` lives at `log_offset`,
    /// replacing any previous record for the same cacheline.
    pub fn insert(&mut self, lpa: Lpa, cl: CachelineIndex, log_offset: u32) {
        debug_assert!((cl as usize) < CACHELINES_PER_PAGE);
        let table = self
            .first_level
            .entry(lpa)
            .or_insert_with(SecondLevelTable::new);
        let before = table.allocated_slots;
        table.insert(cl, log_offset, self.load_factor);
        if table.allocated_slots > before {
            self.resizes += 1;
        }
    }

    /// Log offset of the latest copy of `(lpa, cl)`, if logged.
    pub fn lookup(&self, lpa: Lpa, cl: CachelineIndex) -> Option<u32> {
        self.first_level
            .get(&lpa)
            .and_then(|t| t.entries.get(&cl))
            .copied()
    }

    /// Whether any cacheline of `lpa` is logged.
    pub fn contains_page(&self, lpa: Lpa) -> bool {
        self.first_level.contains_key(&lpa)
    }

    /// All logged cachelines of `lpa` as `(cacheline, log_offset)` pairs,
    /// sorted by cacheline offset (used when merging the log into a fetched
    /// page and during compaction).
    pub fn page_entries(&self, lpa: Lpa) -> Vec<(CachelineIndex, u32)> {
        let mut v: Vec<(CachelineIndex, u32)> = self
            .first_level
            .get(&lpa)
            .map(|t| t.entries.iter().map(|(&c, &o)| (c, o)).collect())
            .unwrap_or_default();
        v.sort_unstable_by_key(|(c, _)| *c);
        v
    }

    /// A bitmap of the logged cachelines of `lpa` (bit *i* set ⇔ cacheline
    /// *i* is in the log).
    pub fn page_bitmap(&self, lpa: Lpa) -> u64 {
        self.first_level
            .get(&lpa)
            .map(|t| t.entries.keys().fold(0u64, |m, &c| m | (1u64 << c)))
            .unwrap_or(0)
    }

    /// Iterates over all tracked pages (first-level traversal, compaction
    /// step L1 of Figure 13).
    pub fn pages(&self) -> impl Iterator<Item = Lpa> + '_ {
        self.first_level.keys().copied()
    }

    /// Removes every entry of `lpa` (used when a page is promoted to host
    /// DRAM and the SSD-side copies must be invalidated).
    pub fn remove_page(&mut self, lpa: Lpa) -> bool {
        self.first_level.remove(&lpa).is_some()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.first_level.clear();
    }

    /// Number of tracked pages.
    pub fn page_count(&self) -> usize {
        self.first_level.len()
    }

    /// Number of tracked cachelines.
    pub fn cacheline_count(&self) -> usize {
        self.first_level.values().map(|t| t.entries.len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.first_level.is_empty()
    }

    /// Memory footprint of the index structures using the paper's entry
    /// sizes: 16 B per first-level entry plus 4 B per allocated second-level
    /// slot.
    pub fn memory_bytes(&self) -> u64 {
        let first = self.first_level.len() as u64 * FIRST_LEVEL_ENTRY_BYTES;
        let second: u64 = self
            .first_level
            .values()
            .map(|t| t.allocated_slots as u64 * SECOND_LEVEL_SLOT_BYTES)
            .sum();
        first + second
    }

    /// Footprint statistics.
    pub fn stats(&self) -> LogIndexStats {
        LogIndexStats {
            pages: self.first_level.len() as u64,
            cachelines: self.cacheline_count() as u64,
            allocated_slots: self
                .first_level
                .values()
                .map(|t| t.allocated_slots as u64)
                .sum(),
            resizes: self.resizes,
        }
    }
}

impl Default for LogIndex {
    fn default() -> Self {
        LogIndex::new(0.75)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_replace() {
        let mut idx = LogIndex::default();
        idx.insert(Lpa::new(1), 3, 100);
        assert_eq!(idx.lookup(Lpa::new(1), 3), Some(100));
        assert_eq!(idx.lookup(Lpa::new(1), 4), None);
        assert_eq!(idx.lookup(Lpa::new(2), 3), None);
        // A newer write to the same cacheline replaces the offset.
        idx.insert(Lpa::new(1), 3, 200);
        assert_eq!(idx.lookup(Lpa::new(1), 3), Some(200));
        assert_eq!(idx.cacheline_count(), 1);
        assert_eq!(idx.page_count(), 1);
    }

    #[test]
    fn page_entries_sorted_and_bitmap() {
        let mut idx = LogIndex::default();
        idx.insert(Lpa::new(7), 9, 1);
        idx.insert(Lpa::new(7), 2, 2);
        idx.insert(Lpa::new(7), 63, 3);
        let entries = idx.page_entries(Lpa::new(7));
        assert_eq!(entries, vec![(2, 2), (9, 1), (63, 3)]);
        let bitmap = idx.page_bitmap(Lpa::new(7));
        assert_eq!(bitmap, (1 << 2) | (1 << 9) | (1 << 63));
        assert_eq!(idx.page_bitmap(Lpa::new(8)), 0);
    }

    #[test]
    fn second_level_tables_resize_on_demand() {
        let mut idx = LogIndex::default();
        // 4 initial slots, load factor 0.75 -> resize after the 4th insert.
        for cl in 0..16u8 {
            idx.insert(Lpa::new(1), cl, cl as u32);
        }
        let stats = idx.stats();
        assert!(stats.resizes >= 2, "expected at least two doublings");
        assert!(stats.allocated_slots >= 16);
        assert_eq!(stats.cachelines, 16);
    }

    #[test]
    fn memory_accounting_matches_paper_worst_case_reasoning() {
        // One dirty cacheline per page: 16 B first-level + 16 B (4 slots * 4 B)
        // second-level = 32 B per page, the "resized" footprint of §III-B.
        let mut idx = LogIndex::default();
        for p in 0..1000u64 {
            idx.insert(Lpa::new(p), 0, p as u32);
        }
        assert_eq!(idx.memory_bytes(), 1000 * 32);
        // A fully dirty page allocates all 64 slots: 16 + 256 bytes.
        let mut idx2 = LogIndex::default();
        for cl in 0..64u8 {
            idx2.insert(Lpa::new(0), cl, cl as u32);
        }
        assert_eq!(idx2.memory_bytes(), 16 + 64 * 4);
    }

    #[test]
    fn remove_page_and_clear() {
        let mut idx = LogIndex::default();
        idx.insert(Lpa::new(1), 0, 0);
        idx.insert(Lpa::new(2), 0, 1);
        assert!(idx.remove_page(Lpa::new(1)));
        assert!(!idx.remove_page(Lpa::new(1)));
        assert!(!idx.contains_page(Lpa::new(1)));
        assert!(idx.contains_page(Lpa::new(2)));
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.memory_bytes(), 0);
    }

    #[test]
    fn pages_iterator_covers_all() {
        let mut idx = LogIndex::default();
        for p in 0..10u64 {
            idx.insert(Lpa::new(p), (p % 64) as u8, p as u32);
        }
        let mut pages: Vec<u64> = idx.pages().map(|l| l.index()).collect();
        pages.sort_unstable();
        assert_eq!(pages, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "load factor")]
    fn rejects_bad_load_factor() {
        let _ = LogIndex::new(0.0);
    }
}
