//! CXL-aware SSD DRAM management (SkyByte §III-B).
//!
//! Modern SSDs organise their internal DRAM as a page-granular cache because
//! flash chips only support page-granular access. For a CXL-SSD this wastes
//! DRAM capacity and amplifies writes, because the host accesses the device in
//! 64-byte cachelines and most workloads touch fewer than 40 % of the
//! cachelines of a page. SkyByte re-architects the SSD DRAM into:
//!
//! * a **cacheline-granular, double-buffered write log** ([`WriteLog`]) — all
//!   host writes are appended to the log without fetching the page from
//!   flash; a **two-level hash index** ([`LogIndex`]) finds the latest copy of
//!   any cacheline and enumerates all logged cachelines of a page during
//!   compaction;
//! * a **page-granular read-write data cache** ([`DataCache`]) — pages fetched
//!   from flash on read misses, set-associative with pluggable eviction and
//!   admission policies ([`policy`], default pseudo-LRU / admit-all);
//! * **log compaction** ([`CompactionPlan`]) — when a log fills up it is
//!   frozen, writes continue in the other buffer, and the frozen log is
//!   coalesced page-by-page and flushed to flash in the background;
//! * **MSHRs** ([`MshrFile`]) — miss-status holding registers that merge
//!   concurrent requests for the same in-flight flash page;
//! * **per-tenant log partitions** ([`WriteLogPartitions`]) — windowed
//!   append accounting per tenant, feeding the `qos` tenant scheduler so a
//!   log-hungry neighbour can be deprioritised at placement time.
//!
//! # Example
//!
//! ```
//! use skybyte_cache::{DataCache, WriteLog};
//! use skybyte_types::prelude::*;
//!
//! // 1 MiB write log, 4 MiB / 8-way data cache.
//! let mut log = WriteLog::new(1 << 20, 0.75);
//! let mut cache = DataCache::new(4 << 20, 8);
//!
//! // A host write appends to the log without touching flash.
//! log.append(Lpa::new(3), 5, 0xAB);
//! assert_eq!(log.lookup(Lpa::new(3), 5), Some(0xAB));
//!
//! // A read miss loads the whole page into the data cache.
//! assert!(!cache.contains(Lpa::new(3)));
//! cache.insert(Lpa::new(3));
//! assert!(cache.contains(Lpa::new(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data_cache;
mod log_index;
mod mshr;
mod partition;
pub mod policy;
mod write_log;

pub use data_cache::{DataCache, DataCacheStats, EvictedPage};
pub use log_index::{LogIndex, LogIndexStats};
pub use mshr::{MshrFile, MshrOutcome};
pub use partition::WriteLogPartitions;
pub use policy::{AdmissionPolicy, EvictionPolicy};
pub use write_log::{AppendOutcome, CompactionPlan, PageFlush, WriteLog, WriteLogStats};
