//! The eviction and admission seams of the data cache.
//!
//! [`DataCache`](crate::DataCache) delegates two decisions to pluggable
//! policies:
//!
//! * [`EvictionPolicy`] — which way of a full set to evict. Policies operate
//!   on per-way [`WayMeta`] replacement metadata the cache keeps in lockstep
//!   with its entries; the cache itself stamps `last_access`/`inserted_at`
//!   ticks so recency-based policies need no state of their own.
//! * [`AdmissionPolicy`] — whether a missed page is admitted at all. A
//!   bypassed page is served from the flash buffer without displacing
//!   anything (the controller falls back to writing through for dirty data
//!   on bypassed pages).
//!
//! The concrete contenders are wrapped in the serializable
//! [`EvictionPolicyImpl`] / [`AdmissionPolicyImpl`] enums so `DataCache`
//! stays `Clone + Serialize`; both enums delegate every trait method.
//! [`EvictionPolicyKind::PseudoLru`] and [`AdmissionPolicyKind::AdmitAll`]
//! are the defaults and reproduce the pre-seam cache decision for decision.

use serde::{Deserialize, Serialize};
use skybyte_types::policy::{AdmissionPolicyKind, EvictionPolicyKind};
use skybyte_types::Lpa;
use std::fmt;

/// Number of consecutive sequential inserts after which
/// [`BypassScanPolicy`] classifies the stream as a scan and stops admitting.
pub const SCAN_BYPASS_RUN: u32 = 8;

/// Per-way replacement metadata, maintained by the cache in lockstep with
/// its page entries and interpreted by the eviction policies.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct WayMeta {
    /// Tick of the last lookup hit or (re)insertion of this way.
    pub last_access: u64,
    /// Tick at which the way was filled (FIFO order).
    pub inserted_at: u64,
    /// CLOCK reference bit, set on hits and cleared by the sweeping hand.
    pub referenced: bool,
    /// SLRU protected-segment membership (2Q).
    pub protected: bool,
}

impl WayMeta {
    /// Fresh metadata for a way filled at `now`.
    pub fn inserted(now: u64) -> Self {
        WayMeta {
            last_access: now,
            inserted_at: now,
            referenced: false,
            protected: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

/// Picks eviction victims for a set-associative cache.
///
/// The cache stamps `meta[way].last_access` before calling [`on_hit`]
/// (`EvictionPolicy::on_hit`), so policies only maintain the metadata they
/// add on top of recency (reference bits, segment membership, hands).
pub trait EvictionPolicy: fmt::Debug {
    /// Which contender this is.
    fn kind(&self) -> EvictionPolicyKind;

    /// A cached page in `set` was hit (or re-inserted) at way `way`.
    fn on_hit(&mut self, set: usize, way: usize, meta: &mut [WayMeta]);

    /// A new page was inserted at `way` (always the last slot) of `set`.
    fn on_insert(&mut self, set: usize, way: usize, meta: &mut [WayMeta]);

    /// Picks the victim way of a full `set`. `meta` is never empty.
    fn victim(&mut self, set: usize, meta: &mut [WayMeta]) -> usize;
}

/// Index of the way with the smallest `key`, first match winning ties —
/// the same selection rule as the original `min_by_key` timestamp scan.
fn min_way_by(meta: &[WayMeta], key: impl Fn(&WayMeta) -> u64) -> usize {
    meta.iter()
        .enumerate()
        .min_by_key(|(_, m)| key(m))
        .map(|(i, _)| i)
        .expect("set not empty")
}

/// The original timestamp scan: evict the smallest `last_access` tick.
/// This is the default and is decision-identical to the pre-seam cache.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PseudoLruPolicy;

impl EvictionPolicy for PseudoLruPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::PseudoLru
    }
    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn on_insert(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn victim(&mut self, _set: usize, meta: &mut [WayMeta]) -> usize {
        min_way_by(meta, |m| m.last_access)
    }
}

/// True LRU over the exact recency order. Because the cache stamps every
/// access with a unique tick, the recency order is total and this selects
/// the same victims as [`PseudoLruPolicy`]; it exists as a separate seam
/// implementation so approximate recency variants have an exact reference.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrueLruPolicy;

impl EvictionPolicy for TrueLruPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Lru
    }
    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn on_insert(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn victim(&mut self, _set: usize, meta: &mut [WayMeta]) -> usize {
        min_way_by(meta, |m| m.last_access)
    }
}

/// CLOCK (second chance): a per-set hand sweeps the ways, clearing
/// reference bits, and evicts the first unreferenced way it lands on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClockPolicy {
    hands: Vec<usize>,
}

impl ClockPolicy {
    /// A CLOCK policy for a cache with `sets` sets.
    pub fn new(sets: usize) -> Self {
        ClockPolicy {
            hands: vec![0; sets.max(1)],
        }
    }
}

impl EvictionPolicy for ClockPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Clock
    }
    fn on_hit(&mut self, _set: usize, way: usize, meta: &mut [WayMeta]) {
        meta[way].referenced = true;
    }
    fn on_insert(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn victim(&mut self, set: usize, meta: &mut [WayMeta]) -> usize {
        let mut hand = self.hands[set] % meta.len();
        // At most one full sweep clears every reference bit, so the second
        // sweep is guaranteed to find a victim.
        for _ in 0..2 * meta.len() {
            if meta[hand].referenced {
                meta[hand].referenced = false;
                hand = (hand + 1) % meta.len();
            } else {
                self.hands[set] = (hand + 1) % meta.len();
                return hand;
            }
        }
        unreachable!("CLOCK sweep always finds an unreferenced way");
    }
}

/// 2Q/SLRU: new pages are probationary; a re-reference promotes them to a
/// protected segment capped at half the ways. Victims come from the
/// probationary segment (LRU order) while it is non-empty.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoQPolicy {
    protected_cap: usize,
}

impl TwoQPolicy {
    /// A 2Q policy for a cache with `ways` ways per set.
    pub fn new(ways: usize) -> Self {
        TwoQPolicy {
            protected_cap: (ways / 2).max(1),
        }
    }
}

impl EvictionPolicy for TwoQPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::TwoQ
    }
    fn on_hit(&mut self, _set: usize, way: usize, meta: &mut [WayMeta]) {
        if meta[way].protected {
            return;
        }
        meta[way].protected = true;
        let protected = meta.iter().filter(|m| m.protected).count();
        if protected > self.protected_cap {
            // Demote the coldest protected way (other than the one just
            // promoted) back to probationary.
            if let Some(demote) = meta
                .iter()
                .enumerate()
                .filter(|&(i, m)| m.protected && i != way)
                .min_by_key(|(_, m)| m.last_access)
                .map(|(i, _)| i)
            {
                meta[demote].protected = false;
            }
        }
    }
    fn on_insert(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn victim(&mut self, _set: usize, meta: &mut [WayMeta]) -> usize {
        meta.iter()
            .enumerate()
            .filter(|(_, m)| !m.protected)
            .min_by_key(|(_, m)| m.last_access)
            .map(|(i, _)| i)
            .unwrap_or_else(|| min_way_by(meta, |m| m.last_access))
    }
}

/// FIFO: evict the oldest-inserted way regardless of use.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FifoPolicy;

impl EvictionPolicy for FifoPolicy {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Fifo
    }
    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn on_insert(&mut self, _set: usize, _way: usize, _meta: &mut [WayMeta]) {}
    fn victim(&mut self, _set: usize, meta: &mut [WayMeta]) -> usize {
        min_way_by(meta, |m| m.inserted_at)
    }
}

/// The serializable dispatch wrapper the cache stores; delegates every
/// [`EvictionPolicy`] method to the selected contender.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EvictionPolicyImpl {
    /// See [`PseudoLruPolicy`].
    PseudoLru(PseudoLruPolicy),
    /// See [`TrueLruPolicy`].
    Lru(TrueLruPolicy),
    /// See [`ClockPolicy`].
    Clock(ClockPolicy),
    /// See [`TwoQPolicy`].
    TwoQ(TwoQPolicy),
    /// See [`FifoPolicy`].
    Fifo(FifoPolicy),
}

impl EvictionPolicyImpl {
    /// Constructs the contender selected by `kind` for a cache of
    /// `sets` × `ways` geometry.
    pub fn new(kind: EvictionPolicyKind, sets: usize, ways: usize) -> Self {
        match kind {
            EvictionPolicyKind::PseudoLru => EvictionPolicyImpl::PseudoLru(PseudoLruPolicy),
            EvictionPolicyKind::Lru => EvictionPolicyImpl::Lru(TrueLruPolicy),
            EvictionPolicyKind::Clock => EvictionPolicyImpl::Clock(ClockPolicy::new(sets)),
            EvictionPolicyKind::TwoQ => EvictionPolicyImpl::TwoQ(TwoQPolicy::new(ways)),
            EvictionPolicyKind::Fifo => EvictionPolicyImpl::Fifo(FifoPolicy),
        }
    }

    fn as_dyn(&mut self) -> &mut dyn EvictionPolicy {
        match self {
            EvictionPolicyImpl::PseudoLru(p) => p,
            EvictionPolicyImpl::Lru(p) => p,
            EvictionPolicyImpl::Clock(p) => p,
            EvictionPolicyImpl::TwoQ(p) => p,
            EvictionPolicyImpl::Fifo(p) => p,
        }
    }
}

impl EvictionPolicy for EvictionPolicyImpl {
    fn kind(&self) -> EvictionPolicyKind {
        match self {
            EvictionPolicyImpl::PseudoLru(p) => p.kind(),
            EvictionPolicyImpl::Lru(p) => p.kind(),
            EvictionPolicyImpl::Clock(p) => p.kind(),
            EvictionPolicyImpl::TwoQ(p) => p.kind(),
            EvictionPolicyImpl::Fifo(p) => p.kind(),
        }
    }
    fn on_hit(&mut self, set: usize, way: usize, meta: &mut [WayMeta]) {
        self.as_dyn().on_hit(set, way, meta);
    }
    fn on_insert(&mut self, set: usize, way: usize, meta: &mut [WayMeta]) {
        self.as_dyn().on_insert(set, way, meta);
    }
    fn victim(&mut self, set: usize, meta: &mut [WayMeta]) -> usize {
        self.as_dyn().victim(set, meta)
    }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// Decides whether a missed page is admitted into the cache at all.
pub trait AdmissionPolicy: fmt::Debug {
    /// Which contender this is.
    fn kind(&self) -> AdmissionPolicyKind;

    /// Whether the page about to be inserted should be admitted. Called
    /// once per new-page insertion attempt, in stream order.
    fn admit(&mut self, lpa: Lpa) -> bool;
}

/// Admit everything — the default, and the pre-seam behaviour.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdmitAllPolicy;

impl AdmissionPolicy for AdmitAllPolicy {
    fn kind(&self) -> AdmissionPolicyKind {
        AdmissionPolicyKind::AdmitAll
    }
    fn admit(&mut self, _lpa: Lpa) -> bool {
        true
    }
}

/// Bypass sequential scans: once [`SCAN_BYPASS_RUN`] consecutive insertions
/// target consecutive pages, further pages of the run are not admitted —
/// a streaming read would flush the cache without re-referencing anything.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BypassScanPolicy {
    last: Option<Lpa>,
    run: u32,
}

impl AdmissionPolicy for BypassScanPolicy {
    fn kind(&self) -> AdmissionPolicyKind {
        AdmissionPolicyKind::BypassScan
    }
    fn admit(&mut self, lpa: Lpa) -> bool {
        self.run = match self.last {
            Some(prev) if lpa.index() == prev.index().wrapping_add(1) => self.run + 1,
            _ => 1,
        };
        self.last = Some(lpa);
        self.run < SCAN_BYPASS_RUN
    }
}

/// The serializable dispatch wrapper for admission contenders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AdmissionPolicyImpl {
    /// See [`AdmitAllPolicy`].
    AdmitAll(AdmitAllPolicy),
    /// See [`BypassScanPolicy`].
    BypassScan(BypassScanPolicy),
}

impl AdmissionPolicyImpl {
    /// Constructs the contender selected by `kind`.
    pub fn new(kind: AdmissionPolicyKind) -> Self {
        match kind {
            AdmissionPolicyKind::AdmitAll => AdmissionPolicyImpl::AdmitAll(AdmitAllPolicy),
            AdmissionPolicyKind::BypassScan => {
                AdmissionPolicyImpl::BypassScan(BypassScanPolicy::default())
            }
        }
    }
}

impl AdmissionPolicy for AdmissionPolicyImpl {
    fn kind(&self) -> AdmissionPolicyKind {
        match self {
            AdmissionPolicyImpl::AdmitAll(p) => p.kind(),
            AdmissionPolicyImpl::BypassScan(p) => p.kind(),
        }
    }
    fn admit(&mut self, lpa: Lpa) -> bool {
        match self {
            AdmissionPolicyImpl::AdmitAll(p) => p.admit(lpa),
            AdmissionPolicyImpl::BypassScan(p) => p.admit(lpa),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(stamps: &[(u64, bool, bool)]) -> Vec<WayMeta> {
        stamps
            .iter()
            .map(|&(last_access, referenced, protected)| WayMeta {
                last_access,
                inserted_at: last_access,
                referenced,
                protected,
            })
            .collect()
    }

    #[test]
    fn pseudo_lru_and_true_lru_pick_the_oldest_tick() {
        let mut m = meta(&[(5, false, false), (2, false, false), (9, false, false)]);
        assert_eq!(PseudoLruPolicy.victim(0, &mut m), 1);
        assert_eq!(TrueLruPolicy.victim(0, &mut m), 1);
    }

    #[test]
    fn clock_gives_referenced_ways_a_second_chance() {
        let mut p = ClockPolicy::new(1);
        let mut m = meta(&[(1, true, false), (2, false, false), (3, true, false)]);
        // Hand starts at 0: way 0 is referenced (cleared, skipped), way 1 is
        // the victim.
        assert_eq!(p.victim(0, &mut m), 1);
        assert!(!m[0].referenced, "sweep clears reference bits");
        // Hand resumes after the victim: way 2 cleared, wraps, evicts way 0.
        m[1] = WayMeta::inserted(4);
        assert_eq!(p.victim(0, &mut m), 0);
    }

    #[test]
    fn clock_all_referenced_sweeps_then_evicts_at_hand() {
        let mut p = ClockPolicy::new(1);
        let mut m = meta(&[(1, true, false), (2, true, false)]);
        assert_eq!(p.victim(0, &mut m), 0);
    }

    #[test]
    fn two_q_protects_rereferenced_ways() {
        let mut p = TwoQPolicy::new(4);
        let mut m = meta(&[
            (1, false, false),
            (2, false, false),
            (3, false, false),
            (4, false, false),
        ]);
        p.on_hit(0, 0, &mut m);
        assert!(m[0].protected);
        // Victim comes from the probationary segment, not the protected way
        // 0 even though it has the oldest tick.
        assert_eq!(p.victim(0, &mut m), 1);
    }

    #[test]
    fn two_q_caps_the_protected_segment() {
        let mut p = TwoQPolicy::new(4); // cap = 2
        let mut m = meta(&[
            (1, false, false),
            (2, false, false),
            (3, false, false),
            (4, false, false),
        ]);
        p.on_hit(0, 0, &mut m);
        p.on_hit(0, 1, &mut m);
        p.on_hit(0, 2, &mut m);
        // Promoting way 2 overflows the cap; the coldest other protected way
        // (way 0) is demoted.
        assert_eq!(m.iter().filter(|w| w.protected).count(), 2);
        assert!(!m[0].protected);
        assert!(m[1].protected && m[2].protected);
    }

    #[test]
    fn two_q_falls_back_when_everything_is_protected() {
        let mut p = TwoQPolicy::new(2);
        let mut m = meta(&[(7, false, true), (3, false, true)]);
        assert_eq!(p.victim(0, &mut m), 1);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut p = FifoPolicy;
        let mut m = meta(&[(1, false, false), (2, false, false)]);
        m[0].last_access = 100; // heavily re-referenced, still first in
        assert_eq!(p.victim(0, &mut m), 0);
    }

    #[test]
    fn bypass_scan_admits_until_the_run_threshold() {
        let mut p = BypassScanPolicy::default();
        for i in 0..SCAN_BYPASS_RUN as u64 - 1 {
            assert!(p.admit(Lpa::new(i)), "page {i} of the run is admitted");
        }
        assert!(!p.admit(Lpa::new(SCAN_BYPASS_RUN as u64 - 1)));
        assert!(!p.admit(Lpa::new(SCAN_BYPASS_RUN as u64)));
        // Breaking the run resets admission.
        assert!(p.admit(Lpa::new(1000)));
    }

    #[test]
    fn admit_all_always_admits() {
        let mut p = AdmissionPolicyImpl::new(AdmissionPolicyKind::AdmitAll);
        for i in 0..100 {
            assert!(p.admit(Lpa::new(i)));
        }
    }

    #[test]
    fn impl_wrappers_report_their_kind() {
        for kind in EvictionPolicyKind::ALL {
            assert_eq!(EvictionPolicyImpl::new(kind, 4, 4).kind(), kind);
        }
        for kind in AdmissionPolicyKind::ALL {
            assert_eq!(AdmissionPolicyImpl::new(kind).kind(), kind);
        }
    }
}
