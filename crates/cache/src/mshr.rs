//! Miss-status holding registers (MSHRs).
//!
//! MSHRs track outstanding misses and coalesce concurrent requests for the
//! same unit (a cacheline in the host LLC, a flash page in the SSD
//! controller). SkyByte relies on them in two places:
//!
//! * the host LLC MSHRs identify which load instruction is waiting for a CXL
//!   response so the `SkyByte-Delay` hint can be routed to the right core
//!   (step C3 of Figure 7), and are freed eagerly when a context switch
//!   squashes the instruction (§III-A);
//! * the SSD controller MSHRs merge reads to a page that is already being
//!   fetched from flash.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Result of trying to allocate an MSHR for a missing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MshrOutcome {
    /// No MSHR existed for this unit: a new one was allocated and the fetch
    /// must be issued.
    NewMiss,
    /// A fetch for this unit is already in flight: the waiter was merged.
    Merged,
    /// All MSHRs are occupied: the request must stall and retry.
    Full,
}

/// A bounded file of miss-status holding registers keyed by `K` and carrying
/// waiter identifiers of type `W`.
///
/// # Example
///
/// ```
/// use skybyte_cache::{MshrFile, MshrOutcome};
///
/// let mut mshrs: MshrFile<u64, u32> = MshrFile::new(2);
/// assert_eq!(mshrs.allocate(100, 1), MshrOutcome::NewMiss);
/// assert_eq!(mshrs.allocate(100, 2), MshrOutcome::Merged);
/// assert_eq!(mshrs.allocate(200, 3), MshrOutcome::NewMiss);
/// assert_eq!(mshrs.allocate(300, 4), MshrOutcome::Full);
/// assert_eq!(mshrs.complete(&100), vec![1, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MshrFile<K: Eq + Hash, W> {
    capacity: usize,
    entries: HashMap<K, Vec<W>>,
    peak_occupancy: usize,
    merged: u64,
    rejected: u64,
}

impl<K: Eq + Hash + Clone, W> MshrFile<K, W> {
    /// Creates an MSHR file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be at least 1");
        MshrFile {
            capacity,
            entries: HashMap::new(),
            peak_occupancy: 0,
            merged: 0,
            rejected: 0,
        }
    }

    /// Attempts to allocate (or merge into) an MSHR for `key`, registering
    /// `waiter` to be woken on completion.
    pub fn allocate(&mut self, key: K, waiter: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(waiter);
            self.merged += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.rejected += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(key, vec![waiter]);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::NewMiss
    }

    /// Completes the miss for `key`, freeing its MSHR and returning the
    /// waiters to wake (empty if no MSHR was allocated).
    pub fn complete(&mut self, key: &K) -> Vec<W> {
        self.entries.remove(key).unwrap_or_default()
    }

    /// Whether a fetch for `key` is in flight.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Removes a single waiter from the MSHR of `key` (eager MSHR release
    /// when a context switch squashes the instruction, §III-A). The MSHR
    /// itself is freed when its last waiter is removed, returning `true`.
    pub fn remove_waiter(&mut self, key: &K, pred: impl Fn(&W) -> bool) -> bool {
        if let Some(waiters) = self.entries.get_mut(key) {
            waiters.retain(|w| !pred(w));
            if waiters.is_empty() {
                self.entries.remove(key);
                return true;
            }
        }
        false
    }

    /// Number of occupied MSHRs.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Maximum number of MSHRs observed occupied at once.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Whether all MSHRs are occupied.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of requests merged into existing MSHRs.
    pub fn merged_count(&self) -> u64 {
        self.merged
    }

    /// Number of requests rejected because the file was full.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m: MshrFile<u64, &'static str> = MshrFile::new(4);
        assert_eq!(m.allocate(1, "a"), MshrOutcome::NewMiss);
        assert_eq!(m.allocate(1, "b"), MshrOutcome::Merged);
        assert!(m.contains(&1));
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.complete(&1), vec!["a", "b"]);
        assert!(!m.contains(&1));
        assert!(m.complete(&1).is_empty());
        assert_eq!(m.merged_count(), 1);
    }

    #[test]
    fn full_rejects_new_misses_but_merges() {
        let mut m: MshrFile<u64, u32> = MshrFile::new(2);
        m.allocate(1, 1);
        m.allocate(2, 2);
        assert!(m.is_full());
        assert_eq!(m.allocate(3, 3), MshrOutcome::Full);
        // Merging into an existing entry is still allowed when full.
        assert_eq!(m.allocate(1, 4), MshrOutcome::Merged);
        assert_eq!(m.rejected_count(), 1);
        assert_eq!(m.peak_occupancy(), 2);
    }

    #[test]
    fn eager_waiter_removal_frees_mshr() {
        let mut m: MshrFile<u64, u32> = MshrFile::new(2);
        m.allocate(5, 10);
        m.allocate(5, 11);
        // Removing one waiter keeps the MSHR.
        assert!(!m.remove_waiter(&5, |w| *w == 10));
        assert!(m.contains(&5));
        // Removing the last waiter frees it.
        assert!(m.remove_waiter(&5, |w| *w == 11));
        assert!(!m.contains(&5));
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let _: MshrFile<u64, u32> = MshrFile::new(0);
    }
}
