//! The cacheline-granular, double-buffered write log (Figures 11–13).
//!
//! All host writes are appended to the active log buffer at cacheline
//! granularity; no flash access happens on the write critical path. When the
//! active buffer fills up it is *frozen*, writes continue in a fresh buffer,
//! and the frozen buffer is compacted in the background: its cachelines are
//! coalesced per page and flushed to flash, dropping stale versions.
//!
//! Cacheline payloads are represented by opaque 64-bit *tokens* supplied by
//! the caller (the simulator uses monotonically increasing version numbers);
//! the log machinery guarantees that lookups and compaction always observe
//! the most recently appended token for each cacheline, which is the property
//! the real hardware must provide for data integrity.

use crate::log_index::LogIndex;
use serde::{Deserialize, Serialize};
use skybyte_types::{CachelineIndex, Lpa, CACHELINE_SIZE};

/// One logged cacheline write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LogEntry {
    lpa: Lpa,
    cl: CachelineIndex,
    token: u64,
}

/// Result of appending a write to the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppendOutcome {
    /// The active log buffer became full with this append; the caller should
    /// start a compaction ([`WriteLog::start_compaction`]).
    pub log_full: bool,
    /// The append had to overwrite-in-place because both buffers are full and
    /// compaction has not finished (back-pressure). The write is still
    /// recorded correctly; the flag exists for statistics.
    pub back_pressure: bool,
}

/// The coalesced flush work produced by freezing one log buffer.
///
/// Each [`PageFlush`] lists the latest logged cachelines of one page. The SSD
/// controller executes the plan (Figure 13): if the page is in the data cache
/// the dirty lines are merged there and the cached page is flushed; otherwise
/// the page is read from flash into the coalescing buffer, merged, and written
/// back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionPlan {
    /// Per-page flush descriptors, sorted by LPA.
    pub pages: Vec<PageFlush>,
    /// Number of log entries that were superseded by newer writes and
    /// therefore dropped without reaching flash (the write savings).
    pub dropped_stale_entries: u64,
}

impl CompactionPlan {
    /// Total number of pages that must be written to flash.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total number of distinct dirty cachelines across all pages.
    pub fn cacheline_count(&self) -> usize {
        self.pages.iter().map(|p| p.cachelines.len()).sum()
    }

    /// Whether there is nothing to flush.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// The latest dirty cachelines of one logical page, to be merged and flushed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageFlush {
    /// The logical page to flush.
    pub lpa: Lpa,
    /// `(cacheline offset, latest token)` pairs, sorted by offset.
    pub cachelines: Vec<(CachelineIndex, u64)>,
}

impl PageFlush {
    /// Bitmap of dirty cachelines in this page.
    pub fn dirty_bitmap(&self) -> u64 {
        self.cachelines
            .iter()
            .fold(0u64, |m, (c, _)| m | (1u64 << c))
    }
}

/// Counters describing write-log activity.
///
/// The entry counters obey a conservation law that the cross-layer audit
/// checks on every run: every append either creates a log entry or
/// overwrites one in place, and every created entry is eventually retired at
/// buffer-freeze time as either *live* (carried into a compaction flush) or
/// *stale* (superseded or invalidated before the freeze) — so
/// `appends - overwrites_in_place == entries_retired_live +
/// entries_retired_stale + resident entries`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteLogStats {
    /// Cacheline writes appended.
    pub appends: u64,
    /// Lookups that found the requested cacheline in the log.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Compactions started.
    pub compactions: u64,
    /// Appends absorbed while both buffers were full (back-pressure).
    pub back_pressure_appends: u64,
    /// Back-pressure appends that updated an existing entry in place instead
    /// of creating a new one (they do not add to the entry population).
    pub overwrites_in_place: u64,
    /// Entries retired at buffer freeze carrying the latest version of their
    /// cacheline (the compaction flush inflow).
    pub entries_retired_live: u64,
    /// Entries retired at buffer freeze that had been superseded by a newer
    /// append or invalidated by a page promotion (dropped without reaching
    /// flash).
    pub entries_retired_stale: u64,
}

/// One log buffer: a bounded append-only array plus its index.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LogBuffer {
    entries: Vec<LogEntry>,
    index: LogIndex,
    capacity: usize,
}

impl LogBuffer {
    fn new(capacity: usize, load_factor: f64) -> Self {
        LogBuffer {
            entries: Vec::new(),
            index: LogIndex::new(load_factor),
            capacity,
        }
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    fn append(&mut self, lpa: Lpa, cl: CachelineIndex, token: u64) {
        let offset = self.entries.len() as u32;
        self.entries.push(LogEntry { lpa, cl, token });
        self.index.insert(lpa, cl, offset);
    }

    /// Overwrites the latest entry for (lpa, cl) in place; used only under
    /// back-pressure when the buffer is full. Returns whether an existing
    /// entry was overwritten (false: a new entry was appended).
    fn overwrite_or_append(&mut self, lpa: Lpa, cl: CachelineIndex, token: u64) -> bool {
        if let Some(off) = self.index.lookup(lpa, cl) {
            self.entries[off as usize].token = token;
            true
        } else {
            self.append(lpa, cl, token);
            false
        }
    }

    fn lookup(&self, lpa: Lpa, cl: CachelineIndex) -> Option<u64> {
        self.index
            .lookup(lpa, cl)
            .map(|off| self.entries[off as usize].token)
    }

    fn plan(&self) -> CompactionPlan {
        let mut pages: Vec<PageFlush> = Vec::new();
        for lpa in self.index.pages() {
            let cachelines: Vec<(CachelineIndex, u64)> = self
                .index
                .page_entries(lpa)
                .into_iter()
                .map(|(cl, off)| (cl, self.entries[off as usize].token))
                .collect();
            pages.push(PageFlush { lpa, cachelines });
        }
        pages.sort_unstable_by_key(|p| p.lpa);
        let live: usize = pages.iter().map(|p| p.cachelines.len()).sum();
        CompactionPlan {
            dropped_stale_entries: (self.entries.len() - live) as u64,
            pages,
        }
    }
}

/// The double-buffered, cacheline-granular write log.
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteLog {
    active: LogBuffer,
    /// The frozen buffer currently being compacted, if any.
    frozen: Option<LogBuffer>,
    capacity_entries: usize,
    load_factor: f64,
    stats: WriteLogStats,
}

impl WriteLog {
    /// Creates a write log of `size_bytes` total capacity (each of the two
    /// buffers holds `size_bytes / 2 / 64` cacheline entries, so that the two
    /// buffers together never exceed the configured DRAM budget).
    ///
    /// # Panics
    ///
    /// Panics if the log cannot hold at least one cacheline per buffer.
    pub fn new(size_bytes: u64, load_factor: f64) -> Self {
        let per_buffer = (size_bytes / 2 / CACHELINE_SIZE as u64) as usize;
        assert!(per_buffer >= 1, "write log too small: {size_bytes} bytes");
        WriteLog {
            active: LogBuffer::new(per_buffer, load_factor),
            frozen: None,
            capacity_entries: per_buffer,
            load_factor,
            stats: WriteLogStats::default(),
        }
    }

    /// Appends a cacheline write (W1/W3 of Figure 11). Returns whether the
    /// active buffer just became full.
    pub fn append(&mut self, lpa: Lpa, cl: CachelineIndex, token: u64) -> AppendOutcome {
        self.stats.appends += 1;
        if self.active.is_full() {
            if self.frozen.is_some() {
                // Compaction of the other buffer has not finished: absorb the
                // write in place (models the request stalling briefly).
                self.stats.back_pressure_appends += 1;
                if self.active.overwrite_or_append(lpa, cl, token) {
                    self.stats.overwrites_in_place += 1;
                }
                return AppendOutcome {
                    log_full: true,
                    back_pressure: true,
                };
            }
            // Caller should have started a compaction; be forgiving and
            // freeze now.
            self.freeze_active();
            self.active.append(lpa, cl, token);
            return AppendOutcome {
                log_full: false,
                back_pressure: false,
            };
        }
        self.active.append(lpa, cl, token);
        AppendOutcome {
            log_full: self.active.is_full(),
            back_pressure: false,
        }
    }

    /// Latest logged token for `(lpa, cl)`, searching the active buffer first
    /// and then the frozen buffer (R2 of Figure 11: reads during compaction
    /// must consult both logs).
    pub fn lookup(&mut self, lpa: Lpa, cl: CachelineIndex) -> Option<u64> {
        let result = self
            .active
            .lookup(lpa, cl)
            .or_else(|| self.frozen.as_ref().and_then(|f| f.lookup(lpa, cl)));
        if result.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        result
    }

    /// Latest logged token without recording hit/miss statistics.
    pub fn peek(&self, lpa: Lpa, cl: CachelineIndex) -> Option<u64> {
        self.active
            .lookup(lpa, cl)
            .or_else(|| self.frozen.as_ref().and_then(|f| f.lookup(lpa, cl)))
    }

    /// Whether any cacheline of `lpa` is present in either buffer.
    pub fn contains_page(&self, lpa: Lpa) -> bool {
        self.active.index.contains_page(lpa)
            || self
                .frozen
                .as_ref()
                .is_some_and(|f| f.index.contains_page(lpa))
    }

    /// All logged cachelines of `lpa` (latest tokens), merged across both
    /// buffers with the active buffer taking precedence. Used to bring a
    /// freshly fetched page up to date (R3 of Figure 11).
    pub fn page_updates(&self, lpa: Lpa) -> Vec<(CachelineIndex, u64)> {
        let mut merged: std::collections::BTreeMap<CachelineIndex, u64> = Default::default();
        if let Some(frozen) = &self.frozen {
            for (cl, off) in frozen.index.page_entries(lpa) {
                merged.insert(cl, frozen.entries[off as usize].token);
            }
        }
        for (cl, off) in self.active.index.page_entries(lpa) {
            merged.insert(cl, self.active.entries[off as usize].token);
        }
        merged.into_iter().collect()
    }

    /// Whether the active buffer is full and a compaction should start.
    pub fn needs_compaction(&self) -> bool {
        self.active.is_full() && self.frozen.is_none()
    }

    /// Whether a frozen buffer is being compacted.
    pub fn compaction_in_progress(&self) -> bool {
        self.frozen.is_some()
    }

    /// Freezes the active buffer and returns the coalesced flush plan
    /// (steps L1/L4 of Figure 13). Incoming writes are directed to a fresh
    /// buffer. Returns `None` if a compaction is already in progress or the
    /// log is empty.
    pub fn start_compaction(&mut self) -> Option<CompactionPlan> {
        if self.frozen.is_some() || self.active.entries.is_empty() {
            return None;
        }
        self.freeze_active();
        self.stats.compactions += 1;
        Some(self.frozen.as_ref().expect("frozen set").plan())
    }

    /// Discards the frozen buffer after its plan has been flushed to flash
    /// (end of Figure 13): its index is dropped and the memory reclaimed.
    pub fn finish_compaction(&mut self) {
        self.frozen = None;
    }

    /// Removes every logged cacheline of `lpa` from both buffers (used when a
    /// page is promoted to host DRAM and the SSD-side index entries are set
    /// to NULL, §III-C).
    pub fn invalidate_page(&mut self, lpa: Lpa) {
        self.active.index.remove_page(lpa);
        if let Some(f) = &mut self.frozen {
            f.index.remove_page(lpa);
        }
    }

    /// Number of entries in the active buffer.
    pub fn len(&self) -> usize {
        self.active.entries.len()
    }

    /// Whether the active buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.active.entries.is_empty()
    }

    /// Capacity of one buffer, in entries.
    pub fn capacity(&self) -> usize {
        self.capacity_entries
    }

    /// Fill fraction of the active buffer.
    pub fn utilisation(&self) -> f64 {
        self.active.entries.len() as f64 / self.capacity_entries as f64
    }

    /// Memory used by the index structures of both buffers (paper §III-B
    /// footprint accounting).
    pub fn index_memory_bytes(&self) -> u64 {
        self.active.index.memory_bytes()
            + self.frozen.as_ref().map_or(0, |f| f.index.memory_bytes())
    }

    /// Activity counters.
    pub fn stats(&self) -> &WriteLogStats {
        &self.stats
    }

    /// Number of log entries currently held in the active buffer (including
    /// superseded versions that have not been frozen away yet). Frozen
    /// entries are excluded: they were already classified live/stale when
    /// their buffer froze.
    pub fn resident_entries(&self) -> u64 {
        self.active.entries.len() as u64
    }

    fn freeze_active(&mut self) {
        // Classify every entry of the freezing buffer for the conservation
        // accounting: entries still indexed carry the latest version of their
        // cacheline (live); the rest were superseded or invalidated (stale).
        let live = self.active.index.cacheline_count() as u64;
        self.stats.entries_retired_live += live;
        self.stats.entries_retired_stale += self.active.entries.len() as u64 - live;
        let fresh = LogBuffer::new(self.capacity_entries, self.load_factor);
        self.frozen = Some(std::mem::replace(&mut self.active, fresh));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_log() -> WriteLog {
        // 2 KiB => 16 entries per buffer.
        WriteLog::new(2048, 0.75)
    }

    #[test]
    fn append_then_lookup() {
        let mut log = small_log();
        log.append(Lpa::new(1), 2, 0xAA);
        log.append(Lpa::new(1), 3, 0xBB);
        assert_eq!(log.lookup(Lpa::new(1), 2), Some(0xAA));
        assert_eq!(log.lookup(Lpa::new(1), 3), Some(0xBB));
        assert_eq!(log.lookup(Lpa::new(1), 4), None);
        assert_eq!(log.lookup(Lpa::new(2), 2), None);
        assert_eq!(log.stats().hits, 2);
        assert_eq!(log.stats().misses, 2);
        assert!(log.contains_page(Lpa::new(1)));
        assert!(!log.contains_page(Lpa::new(2)));
    }

    #[test]
    fn newest_write_wins() {
        let mut log = small_log();
        log.append(Lpa::new(5), 0, 1);
        log.append(Lpa::new(5), 0, 2);
        log.append(Lpa::new(5), 0, 3);
        assert_eq!(log.lookup(Lpa::new(5), 0), Some(3));
    }

    #[test]
    fn compaction_coalesces_writes() {
        let mut log = small_log();
        // 3 writes to the same cacheline + 2 to others.
        log.append(Lpa::new(1), 0, 1);
        log.append(Lpa::new(1), 0, 2);
        log.append(Lpa::new(1), 0, 3);
        log.append(Lpa::new(1), 5, 10);
        log.append(Lpa::new(2), 7, 20);
        let plan = log.start_compaction().expect("plan");
        assert_eq!(plan.page_count(), 2);
        assert_eq!(plan.cacheline_count(), 3);
        assert_eq!(plan.dropped_stale_entries, 2);
        let p1 = &plan.pages[0];
        assert_eq!(p1.lpa, Lpa::new(1));
        assert_eq!(p1.cachelines, vec![(0, 3), (5, 10)]);
        assert_eq!(p1.dirty_bitmap(), 0b10_0001);
        assert_eq!(plan.pages[1].cachelines, vec![(7, 20)]);
        assert!(!plan.is_empty());
    }

    #[test]
    fn reads_see_frozen_buffer_during_compaction() {
        let mut log = small_log();
        log.append(Lpa::new(9), 1, 111);
        let _plan = log.start_compaction().unwrap();
        assert!(log.compaction_in_progress());
        // The active buffer is now empty but lookups still find the data.
        assert_eq!(log.lookup(Lpa::new(9), 1), Some(111));
        // New writes go to the new active buffer and take precedence.
        log.append(Lpa::new(9), 1, 222);
        assert_eq!(log.lookup(Lpa::new(9), 1), Some(222));
        // page_updates merges both, newest first.
        assert_eq!(log.page_updates(Lpa::new(9)), vec![(1, 222)]);
        log.finish_compaction();
        assert!(!log.compaction_in_progress());
        assert_eq!(log.lookup(Lpa::new(9), 1), Some(222));
    }

    #[test]
    fn log_full_signals_and_double_buffering() {
        let mut log = small_log();
        let cap = log.capacity();
        let mut saw_full = false;
        for i in 0..cap as u64 {
            let out = log.append(Lpa::new(i), 0, i);
            saw_full |= out.log_full;
        }
        assert!(saw_full, "append must signal when the buffer fills");
        assert!(log.needs_compaction());
        let plan = log.start_compaction().unwrap();
        assert_eq!(plan.page_count(), cap);
        // While compacting, we can keep appending into the fresh buffer.
        let out = log.append(Lpa::new(999), 0, 7);
        assert!(!out.back_pressure);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn back_pressure_when_both_buffers_full() {
        let mut log = small_log();
        let cap = log.capacity() as u64;
        for i in 0..cap {
            log.append(Lpa::new(i), 0, i);
        }
        let _plan = log.start_compaction().unwrap();
        for i in 0..cap {
            log.append(Lpa::new(1000 + i), 0, i);
        }
        // Both buffers are now full and compaction has not finished.
        let out = log.append(Lpa::new(2000), 0, 42);
        assert!(out.back_pressure);
        assert_eq!(log.peek(Lpa::new(2000), 0), Some(42));
        assert!(log.stats().back_pressure_appends >= 1);
    }

    #[test]
    fn invalidate_page_removes_entries() {
        let mut log = small_log();
        log.append(Lpa::new(3), 1, 1);
        log.append(Lpa::new(4), 1, 2);
        log.invalidate_page(Lpa::new(3));
        assert_eq!(log.peek(Lpa::new(3), 1), None);
        assert_eq!(log.peek(Lpa::new(4), 1), Some(2));
    }

    #[test]
    fn utilisation_and_index_memory() {
        let mut log = small_log();
        assert_eq!(log.utilisation(), 0.0);
        log.append(Lpa::new(1), 1, 1);
        assert!(log.utilisation() > 0.0);
        assert!(log.index_memory_bytes() >= 32);
        assert!(!log.is_empty() && log.len() == 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_log() {
        let _ = WriteLog::new(64, 0.75);
    }

    /// The conservation law the cross-layer audit checks:
    /// `appends - overwrites_in_place == retired_live + retired_stale +
    /// resident`.
    fn assert_conserved(log: &WriteLog) {
        let s = log.stats();
        assert_eq!(
            s.appends - s.overwrites_in_place,
            s.entries_retired_live + s.entries_retired_stale + log.resident_entries(),
            "write-log entry conservation violated: {s:?}, resident {}",
            log.resident_entries()
        );
    }

    #[test]
    fn entry_conservation_across_compactions_and_invalidations() {
        let mut log = small_log(); // 16 entries per buffer
                                   // Superseded writes become stale at freeze time.
        log.append(Lpa::new(1), 0, 1);
        log.append(Lpa::new(1), 0, 2);
        log.append(Lpa::new(2), 3, 3);
        // Invalidated pages become stale too.
        log.append(Lpa::new(9), 5, 4);
        log.invalidate_page(Lpa::new(9));
        assert_conserved(&log);
        let plan = log.start_compaction().unwrap();
        assert_eq!(log.stats().entries_retired_live, 2);
        assert_eq!(log.stats().entries_retired_stale, 2);
        assert_eq!(
            plan.cacheline_count() as u64,
            log.stats().entries_retired_live
        );
        assert_conserved(&log);
        log.finish_compaction();
        // New writes land in the fresh buffer and stay resident.
        log.append(Lpa::new(5), 1, 5);
        assert_eq!(log.resident_entries(), 1);
        assert_conserved(&log);
    }

    #[test]
    fn back_pressure_overwrites_do_not_create_entries() {
        let mut log = small_log();
        let cap = log.capacity() as u64;
        for i in 0..cap {
            log.append(Lpa::new(i), 0, i);
        }
        let _plan = log.start_compaction().unwrap();
        for i in 0..cap {
            log.append(Lpa::new(1000 + i), 0, i);
        }
        // Both buffers full: an overwrite of an existing entry is in-place…
        log.append(Lpa::new(1000), 0, 42);
        assert_eq!(log.stats().overwrites_in_place, 1);
        // …while a back-pressure append of a fresh cacheline creates one.
        log.append(Lpa::new(2000), 0, 43);
        assert_eq!(log.stats().overwrites_in_place, 1);
        assert!(log.stats().back_pressure_appends >= 2);
        assert_conserved(&log);
    }

    proptest! {
        /// Entry conservation holds for arbitrary append/compact/invalidate
        /// interleavings.
        #[test]
        fn prop_entry_conservation(ops in proptest::collection::vec((0u64..12, 0u8..4, 0u8..16), 1..250)) {
            let mut log = WriteLog::new(2048, 0.75); // 16 entries/buffer
            for (i, (page, cl, action)) in ops.iter().enumerate() {
                match action % 8 {
                    6 => { log.invalidate_page(Lpa::new(*page)); }
                    7 => {
                        if log.compaction_in_progress() {
                            log.finish_compaction();
                        } else {
                            let _ = log.start_compaction();
                        }
                    }
                    _ => { let _ = log.append(Lpa::new(*page), *cl, i as u64); }
                }
                assert_conserved(&log);
            }
        }
    }

    proptest! {
        /// The log always returns the token of the most recent append for any
        /// (page, cacheline), across compaction boundaries.
        #[test]
        fn prop_latest_token_wins(ops in proptest::collection::vec((0u64..8, 0u8..8, 0u64..1_000_000), 1..200)) {
            let mut log = WriteLog::new(4096, 0.75); // 32 entries/buffer
            let mut model: std::collections::HashMap<(u64, u8), u64> = Default::default();
            for (i, (page, cl, token)) in ops.iter().enumerate() {
                let out = log.append(Lpa::new(*page), *cl, *token);
                model.insert((*page, *cl), *token);
                if out.log_full && !log.compaction_in_progress() {
                    // Start and immediately finish a compaction occasionally.
                    if i % 2 == 0 {
                        let _ = log.start_compaction();
                        log.finish_compaction();
                        // After finishing, entries of the frozen buffer are gone;
                        // drop them from the model only if they were not re-written —
                        // the semantics is that they are now on flash. For this
                        // property we only check entries still present in the log.
                        model.retain(|(p, c), _| log.peek(Lpa::new(*p), *c).is_some());
                    }
                }
            }
            for ((page, cl), token) in &model {
                prop_assert_eq!(log.peek(Lpa::new(*page), *cl), Some(*token));
            }
        }

        /// A compaction plan contains exactly one entry per distinct dirty
        /// cacheline, carrying the latest token.
        #[test]
        fn prop_compaction_plan_is_exact(ops in proptest::collection::vec((0u64..4, 0u8..16, 0u64..1_000), 1..64)) {
            let mut log = WriteLog::new(2 * 64 * 64, 0.75); // 64 entries/buffer >= ops
            let mut model: std::collections::HashMap<(u64, u8), u64> = Default::default();
            for (page, cl, token) in &ops {
                log.append(Lpa::new(*page), *cl, *token);
                model.insert((*page, *cl), *token);
            }
            let plan = log.start_compaction().unwrap();
            let mut from_plan: std::collections::HashMap<(u64, u8), u64> = Default::default();
            for p in &plan.pages {
                for (cl, token) in &p.cachelines {
                    from_plan.insert((p.lpa.index(), *cl), *token);
                }
            }
            prop_assert_eq!(&from_plan, &model);
            prop_assert_eq!(plan.dropped_stale_entries as usize, ops.len() - model.len());
        }
    }
}
