//! Per-tenant write-log partition accounting.
//!
//! The write log is a shared device resource: one log-hungry tenant can fill
//! it, forcing compactions whose latency every co-located tenant pays. This
//! module tracks *recent* log appends per tenant over a sliding half-life
//! window so a QoS scheduler can tell who is crowding the log right now:
//!
//! * every append is attributed to the tenant that issued it,
//! * when the window fills, all counters are halved (exponential decay), so
//!   the accounting follows current behaviour instead of run-length totals,
//! * a tenant is **over quota** when its windowed appends exceed its even
//!   share of the window.
//!
//! The bookkeeping is purely observational — it never blocks an append —
//! which keeps the write path bit-identical; consumers (the `qos` tenant
//! scheduler in `skybyte-sim`) act on it only when choosing among runnable
//! threads.

/// Windowed per-tenant append counters over a shared write log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteLogPartitions {
    /// Decay threshold: when the windowed total reaches this many appends,
    /// every counter is halved.
    window: u64,
    /// Windowed appends per tenant, indexed by dense tenant id.
    appends: Vec<u64>,
    /// Sum of `appends` (maintained incrementally, checked by tests).
    total: u64,
}

impl WriteLogPartitions {
    /// Accounting for `tenants` tenants with a decay window of
    /// `window_entries` appends (clamped so every tenant has a quota of at
    /// least one entry).
    pub fn new(tenants: usize, window_entries: u64) -> Self {
        let tenants = tenants.max(1);
        WriteLogPartitions {
            window: window_entries.max(tenants as u64),
            appends: vec![0; tenants],
            total: 0,
        }
    }

    /// Number of tenants tracked.
    pub fn tenant_count(&self) -> usize {
        self.appends.len()
    }

    /// The decay window in appends.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// A tenant's even share of the window.
    pub fn quota(&self) -> u64 {
        self.window / self.appends.len() as u64
    }

    /// Records one log append by `tenant`, decaying all counters when the
    /// window fills.
    pub fn note_append(&mut self, tenant: usize) {
        self.appends[tenant] += 1;
        self.total += 1;
        if self.total >= self.window {
            self.total = 0;
            for a in &mut self.appends {
                *a /= 2;
                self.total += *a;
            }
        }
    }

    /// Windowed appends per tenant.
    pub fn appends(&self) -> &[u64] {
        &self.appends
    }

    /// Sum of the windowed appends.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether `tenant`'s windowed appends exceed its even share.
    pub fn over_quota(&self, tenant: usize) -> bool {
        self.appends[tenant] > self.quota()
    }

    /// Fraction of the window currently accounted (`0.0..1.0`).
    pub fn fill_fraction(&self) -> f64 {
        self.total as f64 / self.window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_attributed_and_conserved() {
        let mut p = WriteLogPartitions::new(3, 100);
        for _ in 0..10 {
            p.note_append(0);
        }
        for _ in 0..4 {
            p.note_append(2);
        }
        assert_eq!(p.appends(), &[10, 0, 4]);
        assert_eq!(p.total(), 14);
        assert_eq!(p.total(), p.appends().iter().sum::<u64>());
    }

    #[test]
    fn over_quota_flags_the_log_hog() {
        let mut p = WriteLogPartitions::new(2, 10);
        // Quota is 5 per tenant; 6 appends tip tenant 0 over.
        for _ in 0..6 {
            p.note_append(0);
        }
        assert!(p.over_quota(0));
        assert!(!p.over_quota(1));
    }

    #[test]
    fn window_fill_halves_all_counters() {
        let mut p = WriteLogPartitions::new(2, 10);
        for _ in 0..8 {
            p.note_append(0);
        }
        p.note_append(1);
        // The 10th append trips the decay: (9, 1) -> (4, 0).
        p.note_append(0);
        assert_eq!(p.appends(), &[4, 0]);
        assert_eq!(p.total(), p.appends().iter().sum::<u64>());
        assert!(p.fill_fraction() < 1.0);
    }

    #[test]
    fn window_is_clamped_to_give_everyone_a_quota() {
        let p = WriteLogPartitions::new(8, 0);
        assert_eq!(p.window(), 8);
        assert_eq!(p.quota(), 1);
    }
}
