//! FTL-level statistics: write amplification and garbage-collection activity.

use serde::{Deserialize, Serialize};

/// Counters maintained by the [`crate::Ftl`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Logical pages written by the host (or by log compaction on behalf of
    /// the host).
    pub host_pages_written: u64,
    /// Physical pages programmed, including GC relocations.
    pub flash_pages_programmed: u64,
    /// Physical pages read on behalf of GC relocation.
    pub gc_pages_read: u64,
    /// Physical pages re-programmed by GC relocation.
    pub gc_pages_relocated: u64,
    /// Blocks erased by GC.
    pub blocks_erased: u64,
    /// Number of GC campaigns triggered.
    pub gc_campaigns: u64,
}

impl FtlStats {
    /// Write-amplification factor: physical programs per host page written.
    /// Returns 1.0 when nothing has been written yet.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            1.0
        } else {
            self.flash_pages_programmed as f64 / self.host_pages_written as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_defaults_to_one() {
        assert_eq!(FtlStats::default().write_amplification(), 1.0);
    }

    #[test]
    fn waf_counts_gc_overhead() {
        let s = FtlStats {
            host_pages_written: 100,
            flash_pages_programmed: 150,
            gc_pages_relocated: 50,
            ..Default::default()
        };
        assert!((s.write_amplification() - 1.5).abs() < 1e-12);
    }
}
