//! Physical block bookkeeping: free pools, open blocks, valid-page counts.

use serde::{Deserialize, Serialize};
use skybyte_types::{Lpa, Ppa, SsdGeometry};
use std::collections::VecDeque;

/// A linear index identifying one erase block in the flash array.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The raw linear block index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

/// Lifecycle state of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Erased and available for allocation.
    Free,
    /// Currently receiving programs (the active block of some channel).
    Open,
    /// Fully programmed.
    Full,
}

/// Per-block metadata tracked by the FTL.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BlockInfo {
    state: BlockState,
    /// Next page offset to program in this block (valid while `Open`).
    write_ptr: u32,
    /// Number of pages in this block that hold live (mapped) data.
    valid_pages: u32,
    /// Reverse map: page offset within the block -> logical page stored
    /// there, `None` once the logical page is overwritten elsewhere. Pages
    /// are programmed sequentially, so the vector's length always equals
    /// `write_ptr` and lookups are direct indexing instead of hashing.
    contents: Vec<Option<Lpa>>,
    /// Number of times this block has been erased (wear).
    erase_count: u32,
}

impl BlockInfo {
    fn new_free() -> Self {
        BlockInfo {
            state: BlockState::Free,
            write_ptr: 0,
            valid_pages: 0,
            contents: Vec::new(),
            erase_count: 0,
        }
    }
}

/// Manages the physical blocks of the flash array: free pools, the open block
/// of each channel, valid-page accounting and victim selection for GC.
///
/// Writes are striped round-robin across channels so that log compaction and
/// GC can exploit channel parallelism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockManager {
    geometry: SsdGeometry,
    blocks: Vec<BlockInfo>,
    /// Free blocks per channel.
    free_lists: Vec<VecDeque<BlockId>>,
    /// The block currently being programmed on each channel, if any.
    open_blocks: Vec<Option<BlockId>>,
    /// Round-robin pointer used to pick the next channel for a host write.
    next_channel: u32,
    free_count: u64,
}

impl BlockManager {
    /// Creates a block manager with every block free.
    pub fn new(geometry: SsdGeometry) -> Self {
        let total_blocks = geometry.total_blocks();
        let blocks = (0..total_blocks).map(|_| BlockInfo::new_free()).collect();
        let blocks_per_channel = total_blocks / geometry.channels as u64;
        let mut free_lists: Vec<VecDeque<BlockId>> =
            (0..geometry.channels).map(|_| VecDeque::new()).collect();
        for b in 0..total_blocks {
            let channel = (b / blocks_per_channel).min(geometry.channels as u64 - 1);
            free_lists[channel as usize].push_back(BlockId(b));
        }
        BlockManager {
            geometry,
            blocks,
            free_lists,
            open_blocks: vec![None; geometry.channels as usize],
            next_channel: 0,
            free_count: total_blocks,
        }
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Number of blocks currently free (erased and unallocated).
    pub fn free_blocks(&self) -> u64 {
        self.free_count
    }

    /// Fraction of blocks that are free.
    pub fn free_fraction(&self) -> f64 {
        self.free_count as f64 / self.blocks.len() as f64
    }

    /// The channel that owns a block.
    pub fn channel_of(&self, block: BlockId) -> u16 {
        let blocks_per_channel = self.geometry.total_blocks() / self.geometry.channels as u64;
        (block.0 / blocks_per_channel).min(self.geometry.channels as u64 - 1) as u16
    }

    /// Converts a block + in-block page offset into a full physical address.
    pub fn ppa_of(&self, block: BlockId, page: u32) -> Ppa {
        let g = &self.geometry;
        let blocks_per_plane = g.blocks_per_plane as u64;
        let planes_per_die = g.planes_per_die as u64;
        let dies_per_chip = g.dies_per_chip as u64;
        let chips_per_channel = g.chips_per_channel as u64;

        let mut rest = block.0;
        let blk = rest % blocks_per_plane;
        rest /= blocks_per_plane;
        let plane = rest % planes_per_die;
        rest /= planes_per_die;
        let die = rest % dies_per_chip;
        rest /= dies_per_chip;
        let chip = rest % chips_per_channel;
        rest /= chips_per_channel;
        let channel = rest;
        Ppa {
            channel: channel as u16,
            chip: chip as u16,
            die: die as u16,
            plane: plane as u16,
            block: blk as u32,
            page,
        }
    }

    /// Converts a physical page address back to the linear block id.
    pub fn block_of_ppa(&self, ppa: Ppa) -> BlockId {
        let g = &self.geometry;
        let id = (((ppa.channel as u64 * g.chips_per_channel as u64 + ppa.chip as u64)
            * g.dies_per_chip as u64
            + ppa.die as u64)
            * g.planes_per_die as u64
            + ppa.plane as u64)
            * g.blocks_per_plane as u64
            + ppa.block as u64;
        BlockId(id)
    }

    /// Allocates the next physical page for a host/GC write, striping across
    /// channels round-robin. Returns `(ppa, block)` or `None` if the device
    /// is completely full.
    pub fn allocate_page(&mut self, lpa: Lpa) -> Option<(Ppa, BlockId)> {
        let channels = self.geometry.channels;
        for attempt in 0..channels {
            let ch = ((self.next_channel + attempt) % channels) as usize;
            if let Some((ppa, blk)) = self.allocate_on_channel(ch, lpa) {
                self.next_channel = (ch as u32 + 1) % channels;
                return Some((ppa, blk));
            }
        }
        None
    }

    /// Allocates the next physical page on a specific channel (used by GC to
    /// relocate pages within their original channel, and by compaction to
    /// target the least busy channel). Returns `None` if that channel has no
    /// free space.
    pub fn allocate_on_channel(&mut self, channel: usize, lpa: Lpa) -> Option<(Ppa, BlockId)> {
        // Ensure there is an open block.
        if self.open_blocks[channel].is_none() {
            let blk = self.free_lists[channel].pop_front()?;
            self.free_count -= 1;
            let info = &mut self.blocks[blk.0 as usize];
            info.state = BlockState::Open;
            info.write_ptr = 0;
            self.open_blocks[channel] = Some(blk);
        }
        let blk = self.open_blocks[channel].expect("open block exists");
        let pages_per_block = self.geometry.pages_per_block;
        let info = &mut self.blocks[blk.0 as usize];
        let page = info.write_ptr;
        info.write_ptr += 1;
        info.valid_pages += 1;
        debug_assert_eq!(info.contents.len() as u32, page);
        info.contents.push(Some(lpa));
        if info.write_ptr >= pages_per_block {
            info.state = BlockState::Full;
            self.open_blocks[channel] = None;
        }
        Some((self.ppa_of(blk, page), blk))
    }

    /// Marks the physical page previously holding `lpa` as invalid (called on
    /// an out-of-place update or when the logical page is discarded).
    pub fn invalidate(&mut self, ppa: Ppa) {
        let blk = self.block_of_ppa(ppa);
        let info = &mut self.blocks[blk.0 as usize];
        if let Some(slot) = info.contents.get_mut(ppa.page as usize) {
            if slot.take().is_some() {
                info.valid_pages = info.valid_pages.saturating_sub(1);
            }
        }
    }

    /// Number of live pages in a block.
    pub fn valid_pages(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].valid_pages
    }

    /// State of a block.
    pub fn state(&self, block: BlockId) -> BlockState {
        self.blocks[block.0 as usize].state
    }

    /// Erase count (wear) of a block.
    pub fn erase_count(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].erase_count
    }

    /// The live logical pages stored in a block, as `(page_offset, lpa)`
    /// pairs, sorted by page offset. Used by GC to relocate victims.
    pub fn live_contents(&self, block: BlockId) -> Vec<(u32, Lpa)> {
        self.blocks[block.0 as usize]
            .contents
            .iter()
            .enumerate()
            .filter_map(|(p, l)| l.map(|l| (p as u32, l)))
            .collect()
    }

    /// Chooses up to `count` GC victims: full blocks with the fewest valid
    /// pages (greedy policy), never selecting open or free blocks.
    pub fn select_gc_victims(&self, count: usize) -> Vec<BlockId> {
        let mut candidates: Vec<(u32, BlockId)> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.state == BlockState::Full)
            .map(|(i, b)| (b.valid_pages, BlockId(i as u64)))
            .collect();
        candidates.sort_unstable_by_key(|(valid, id)| (*valid, id.0));
        candidates
            .into_iter()
            .take(count)
            .map(|(_, id)| id)
            .collect()
    }

    /// Erases a block: all residual contents are dropped, the erase counter
    /// is incremented and the block returns to the free pool of its channel.
    ///
    /// # Panics
    ///
    /// Panics if the block still contains valid pages (GC must relocate them
    /// first) or if the block is currently open.
    pub fn erase_block(&mut self, block: BlockId) {
        let channel = self.channel_of(block) as usize;
        let info = &mut self.blocks[block.0 as usize];
        assert_eq!(
            info.valid_pages, 0,
            "erasing block {block:?} with {} valid pages",
            info.valid_pages
        );
        assert_ne!(info.state, BlockState::Open, "cannot erase an open block");
        if info.state == BlockState::Free {
            return;
        }
        info.state = BlockState::Free;
        info.write_ptr = 0;
        info.contents.clear();
        info.erase_count += 1;
        self.free_lists[channel].push_back(block);
        self.free_count += 1;
    }

    /// Fraction of all pages (across full and open blocks) that hold valid
    /// data; this is the device utilisation compared against the GC
    /// threshold.
    pub fn utilisation(&self) -> f64 {
        let total_pages = self.geometry.total_pages();
        let valid: u64 = self.blocks.iter().map(|b| b.valid_pages as u64).sum();
        valid as f64 / total_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geometry() -> SsdGeometry {
        SsdGeometry {
            channels: 2,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 4,
            pages_per_block: 4,
            page_size_bytes: 4096,
        }
    }

    #[test]
    fn ppa_block_round_trip() {
        let mgr = BlockManager::new(SsdGeometry::default());
        for raw in [0u64, 1, 127, 128, 1000, 131071] {
            let blk = BlockId(raw);
            let ppa = mgr.ppa_of(blk, 3);
            assert_eq!(mgr.block_of_ppa(ppa), blk, "round trip failed for {raw}");
            assert_eq!(ppa.page, 3);
            assert_eq!(mgr.channel_of(blk), ppa.channel);
        }
    }

    #[test]
    fn allocation_stripes_across_channels() {
        let mut mgr = BlockManager::new(small_geometry());
        let (a, _) = mgr.allocate_page(Lpa::new(0)).unwrap();
        let (b, _) = mgr.allocate_page(Lpa::new(1)).unwrap();
        assert_ne!(a.channel, b.channel, "consecutive writes should stripe");
    }

    #[test]
    fn block_fills_and_closes() {
        let mut mgr = BlockManager::new(small_geometry());
        let mut blocks_used = std::collections::HashSet::new();
        // 2 channels * 4 blocks * 4 pages = 32 pages total.
        for i in 0..32 {
            let (_, blk) = mgr.allocate_page(Lpa::new(i)).unwrap();
            blocks_used.insert(blk);
        }
        assert_eq!(blocks_used.len(), 8);
        assert_eq!(mgr.free_blocks(), 0);
        assert!(mgr.allocate_page(Lpa::new(99)).is_none());
        assert!((mgr.utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_and_gc_victim_selection() {
        let mut mgr = BlockManager::new(small_geometry());
        let mut placements = Vec::new();
        for i in 0..8 {
            let (ppa, blk) = mgr.allocate_page(Lpa::new(i)).unwrap();
            placements.push((Lpa::new(i), ppa, blk));
        }
        // Invalidate everything in the first block used on channel 0.
        let victim_block = placements[0].2;
        for (_, ppa, blk) in &placements {
            if blk == &victim_block {
                mgr.invalidate(*ppa);
            }
        }
        assert_eq!(mgr.valid_pages(victim_block), 0);
        let victims = mgr.select_gc_victims(1);
        assert_eq!(victims, vec![victim_block]);
        // The block must be Full before erase (4 pages per block / 8 allocs
        // across 2 channels means it is full).
        assert_eq!(mgr.state(victim_block), BlockState::Full);
        let free_before = mgr.free_blocks();
        mgr.erase_block(victim_block);
        assert_eq!(mgr.state(victim_block), BlockState::Free);
        assert_eq!(mgr.erase_count(victim_block), 1);
        assert_eq!(mgr.free_blocks(), free_before + 1);
    }

    #[test]
    fn live_contents_reports_survivors() {
        let mut mgr = BlockManager::new(small_geometry());
        let mut by_block: std::collections::HashMap<BlockId, Vec<(Lpa, Ppa)>> =
            std::collections::HashMap::new();
        for i in 0..8 {
            let (ppa, blk) = mgr.allocate_page(Lpa::new(i)).unwrap();
            by_block.entry(blk).or_default().push((Lpa::new(i), ppa));
        }
        let (blk, pages) = by_block
            .iter()
            .next()
            .map(|(b, p)| (*b, p.clone()))
            .unwrap();
        mgr.invalidate(pages[0].1);
        let live = mgr.live_contents(blk);
        assert_eq!(live.len(), pages.len() - 1);
        assert!(!live.iter().any(|(_, l)| *l == pages[0].0));
    }

    #[test]
    #[should_panic(expected = "valid pages")]
    fn erase_rejects_blocks_with_valid_data() {
        let mut mgr = BlockManager::new(small_geometry());
        let mut blk = None;
        for i in 0..8 {
            let (_, b) = mgr.allocate_page(Lpa::new(i)).unwrap();
            blk = Some(b);
        }
        // The last allocated block is full but still valid.
        let full_block = blk.unwrap();
        mgr.erase_block(full_block);
    }

    #[test]
    fn gc_never_selects_open_blocks() {
        let mut mgr = BlockManager::new(small_geometry());
        // Allocate just one page: its block is open, not full.
        mgr.allocate_page(Lpa::new(0)).unwrap();
        assert!(mgr.select_gc_victims(4).is_empty());
    }
}
