//! The flash translation layer proper: mapping table, out-of-place writes and
//! garbage collection.

use crate::blocks::{BlockId, BlockManager};
use crate::stats::FtlStats;
use serde::{Deserialize, Serialize};
use skybyte_flash::{FlashArray, FlashCommandKind};
use skybyte_types::{FastHashMap, Lpa, Nanos, Ppa, SsdConfig};

/// Result of a host page write issued through the FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Physical page the data was programmed to.
    pub ppa: Ppa,
    /// Time at which the program completes on the flash channel.
    pub completes_at: Nanos,
    /// Garbage collection triggered by this write, if any.
    pub gc: Option<GcReport>,
}

/// Summary of one garbage-collection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Number of victim blocks erased.
    pub blocks_erased: u32,
    /// Number of live pages relocated (read + re-programmed).
    pub pages_relocated: u64,
    /// Time at which the whole campaign (including erases) completes.
    pub completes_at: Nanos,
}

/// A page-level flash translation layer with greedy garbage collection.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ftl {
    mapping: FastHashMap<Lpa, Ppa>,
    blocks: BlockManager,
    channels: u64,
    gc_threshold: f64,
    gc_blocks_per_campaign: u32,
    stats: FtlStats,
    gc_active_until: Nanos,
}

impl Ftl {
    /// Creates an FTL for the given SSD configuration with an empty mapping.
    pub fn new(cfg: &SsdConfig) -> Self {
        Ftl {
            mapping: FastHashMap::default(),
            blocks: BlockManager::new(cfg.geometry),
            channels: cfg.geometry.channels as u64,
            gc_threshold: cfg.gc_threshold,
            gc_blocks_per_campaign: cfg.gc_blocks_per_campaign,
            stats: FtlStats::default(),
            gc_active_until: Nanos::ZERO,
        }
    }

    /// Translates a logical page to its current physical location, or `None`
    /// if the page has never been written.
    pub fn translate(&self, lpa: Lpa) -> Option<Ppa> {
        self.mapping.get(&lpa).copied()
    }

    /// Whether the logical page has a physical mapping.
    pub fn is_mapped(&self, lpa: Lpa) -> bool {
        self.mapping.contains_key(&lpa)
    }

    /// Number of mapped logical pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapping.len() as u64
    }

    /// Reads a logical page from flash.
    ///
    /// Returns the completion time of the flash read, or `None` if the page
    /// is unmapped (the SSD controller then serves zeroes without touching
    /// flash).
    pub fn read_page(&mut self, lpa: Lpa, now: Nanos, flash: &mut FlashArray) -> Option<Nanos> {
        let ppa = self.translate(lpa)?;
        Some(flash.submit(FlashCommandKind::Read, ppa, now))
    }

    /// Writes a logical page out-of-place.
    ///
    /// Invalidates the previous physical copy, programs a fresh page (striped
    /// across channels) and triggers garbage collection if the device has
    /// filled beyond the configured threshold.
    ///
    /// # Panics
    ///
    /// Panics if the physical device is completely full even after a forced
    /// GC campaign — with the paper's 7 % over-provisioning and an 80 % GC
    /// threshold this cannot happen unless the logical footprint exceeds the
    /// usable capacity.
    pub fn write_page(&mut self, lpa: Lpa, now: Nanos, flash: &mut FlashArray) -> WriteOutcome {
        if let Some(old) = self.mapping.remove(&lpa) {
            self.blocks.invalidate(old);
        }

        let (ppa, _blk) = match self.blocks.allocate_page(lpa) {
            Some(x) => x,
            None => {
                // Forced GC to make room, then retry once.
                let _ = self.run_gc_campaign(now, flash, true);
                self.blocks
                    .allocate_page(lpa)
                    .expect("flash device is full: logical footprint exceeds usable capacity")
            }
        };
        let completes_at = flash.submit(FlashCommandKind::Program, ppa, now);
        self.mapping.insert(lpa, ppa);
        self.stats.host_pages_written += 1;
        self.stats.flash_pages_programmed += 1;

        let gc = self.maybe_gc(now, flash);
        WriteOutcome {
            ppa,
            completes_at,
            gc,
        }
    }

    /// Pre-populates the mapping table with `lpas` without issuing flash
    /// commands or accounting statistics. Used to precondition the SSD so
    /// that garbage collection triggers during the measured run (§VI-A).
    pub fn precondition<I: IntoIterator<Item = Lpa>>(&mut self, lpas: I) {
        for lpa in lpas {
            if self.mapping.contains_key(&lpa) {
                continue;
            }
            if let Some(old) = self.mapping.remove(&lpa) {
                self.blocks.invalidate(old);
            }
            if let Some((ppa, _)) = self.blocks.allocate_page(lpa) {
                self.mapping.insert(lpa, ppa);
            } else {
                break;
            }
        }
    }

    /// Whether a GC campaign is still occupying flash channels at `now`.
    pub fn gc_active(&self, now: Nanos) -> bool {
        now < self.gc_active_until
    }

    /// Time at which the most recent GC campaign finishes.
    pub fn gc_active_until(&self) -> Nanos {
        self.gc_active_until
    }

    /// FTL statistics (write amplification, GC activity).
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Device utilisation (fraction of physical pages holding live data).
    pub fn utilisation(&self) -> f64 {
        self.blocks.utilisation()
    }

    /// Fraction of erase blocks that are free.
    pub fn free_block_fraction(&self) -> f64 {
        self.blocks.free_fraction()
    }

    /// Access to block-level state (for tests and detailed reporting).
    pub fn block_manager(&self) -> &BlockManager {
        &self.blocks
    }

    fn maybe_gc(&mut self, now: Nanos, flash: &mut FlashArray) -> Option<GcReport> {
        // GC starts when the device utilisation exceeds the threshold
        // (80 % in Table II) or the free-block reserve (one block per channel,
        // needed so relocation always has somewhere to write) runs low.
        let reserve = self.blocks.total_blocks().min(self.channels + 1);
        let needs_gc =
            self.blocks.utilisation() > self.gc_threshold || self.blocks.free_blocks() < reserve;
        if !needs_gc {
            return None;
        }
        self.run_gc_campaign(now, flash, false)
    }

    /// Runs one GC campaign: pick victims, relocate live pages, erase blocks.
    fn run_gc_campaign(
        &mut self,
        now: Nanos,
        flash: &mut FlashArray,
        forced: bool,
    ) -> Option<GcReport> {
        // Reclaim a bounded number of blocks per campaign. The paper's 19660
        // blocks correspond to 15 % of its 131072-block device; scale the same
        // ratio to the simulated geometry, with a lower bound of one block.
        let ratio = self.gc_blocks_per_campaign as f64 / 131_072.0;
        let scaled = ((self.blocks.total_blocks() as f64 * ratio).ceil() as usize).max(1);
        let target = if forced { scaled.max(1) } else { scaled };
        let victims = self.blocks.select_gc_victims(target);
        if victims.is_empty() {
            return None;
        }

        let mut pages_relocated = 0u64;
        let mut blocks_erased = 0u32;
        let mut finish = now;
        for victim in victims {
            finish = finish.max(self.relocate_and_erase(victim, now, flash, &mut pages_relocated));
            blocks_erased += 1;
        }
        self.stats.gc_campaigns += 1;
        self.stats.blocks_erased += blocks_erased as u64;
        self.gc_active_until = self.gc_active_until.max(finish);
        Some(GcReport {
            blocks_erased,
            pages_relocated,
            completes_at: finish,
        })
    }

    /// Relocates all live pages out of `victim` and erases it; returns the
    /// completion time of the erase.
    fn relocate_and_erase(
        &mut self,
        victim: BlockId,
        now: Nanos,
        flash: &mut FlashArray,
        pages_relocated: &mut u64,
    ) -> Nanos {
        let live = self.blocks.live_contents(victim);
        let victim_channel = self.blocks.channel_of(victim) as usize;
        let mut latest = now;
        for (page_off, lpa) in live {
            let src = self.blocks.ppa_of(victim, page_off);
            let read_done = flash.submit(FlashCommandKind::Read, src, now);
            // Prefer relocating within the same channel; fall back to striping.
            let dest = self
                .blocks
                .allocate_on_channel(victim_channel, lpa)
                .or_else(|| self.blocks.allocate_page(lpa));
            let (dest_ppa, _) = match dest {
                Some(d) => d,
                None => break, // no room anywhere; stop relocating
            };
            let prog_done = flash.submit(FlashCommandKind::Program, dest_ppa, read_done);
            self.blocks.invalidate(src);
            self.mapping.insert(lpa, dest_ppa);
            self.stats.gc_pages_read += 1;
            self.stats.gc_pages_relocated += 1;
            self.stats.flash_pages_programmed += 1;
            *pages_relocated += 1;
            latest = latest.max(prog_done);
        }
        // Erase only if everything was relocated.
        if self.blocks.valid_pages(victim) == 0 {
            let erase_ppa = self.blocks.ppa_of(victim, 0);
            let erase_done = flash.submit(FlashCommandKind::Erase, erase_ppa, latest);
            self.blocks.erase_block(victim);
            latest = latest.max(erase_done);
        }
        latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::{FlashTimingConfig, NandKind, SsdGeometry};

    /// A tiny SSD (2 channels × 8 blocks × 8 pages = 128 pages, 512 KiB) so
    /// GC triggers quickly in tests.
    fn tiny_cfg() -> SsdConfig {
        SsdConfig {
            geometry: SsdGeometry {
                channels: 2,
                chips_per_channel: 1,
                dies_per_chip: 1,
                planes_per_die: 1,
                blocks_per_plane: 8,
                pages_per_block: 8,
                page_size_bytes: 4096,
            },
            gc_blocks_per_campaign: 19660,
            ..SsdConfig::default()
        }
    }

    fn setup() -> (Ftl, FlashArray) {
        let cfg = tiny_cfg();
        let flash = FlashArray::new(cfg.geometry, FlashTimingConfig::for_kind(NandKind::Ull));
        (Ftl::new(&cfg), flash)
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut ftl, mut flash) = setup();
        assert!(ftl
            .read_page(Lpa::new(3), Nanos::ZERO, &mut flash)
            .is_none());
        let out = ftl.write_page(Lpa::new(3), Nanos::ZERO, &mut flash);
        assert!(out.completes_at >= Nanos::from_micros(100));
        assert_eq!(ftl.translate(Lpa::new(3)), Some(out.ppa));
        let done = ftl.read_page(Lpa::new(3), out.completes_at, &mut flash);
        assert!(done.is_some());
        assert_eq!(ftl.mapped_pages(), 1);
    }

    #[test]
    fn overwrite_is_out_of_place() {
        let (mut ftl, mut flash) = setup();
        let first = ftl.write_page(Lpa::new(1), Nanos::ZERO, &mut flash);
        let second = ftl.write_page(Lpa::new(1), Nanos::from_micros(200), &mut flash);
        assert_ne!(first.ppa, second.ppa, "updates must go to a new page");
        assert_eq!(ftl.translate(Lpa::new(1)), Some(second.ppa));
        assert_eq!(ftl.mapped_pages(), 1);
        assert_eq!(ftl.stats().host_pages_written, 2);
    }

    #[test]
    fn gc_triggers_under_overwrite_pressure_and_preserves_mappings() {
        let (mut ftl, mut flash) = setup();
        // 128 physical pages; keep 32 logical pages and overwrite them
        // repeatedly so utilisation stays modest but free blocks run out.
        let mut now = Nanos::ZERO;
        for round in 0..20u64 {
            for i in 0..32u64 {
                ftl.write_page(Lpa::new(i), now, &mut flash);
                now += Nanos::from_micros(10);
            }
            let _ = round;
        }
        assert!(ftl.stats().gc_campaigns > 0, "GC never triggered");
        assert!(ftl.stats().blocks_erased > 0);
        assert!(
            ftl.stats().write_amplification() >= 1.0,
            "WAF must be at least 1"
        );
        // Every logical page must still be mapped to a valid physical page and
        // all mappings must be distinct.
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u64 {
            let ppa = ftl.translate(Lpa::new(i)).expect("page lost by GC");
            assert!(seen.insert(ppa), "two LPAs map to the same PPA");
        }
        assert_eq!(ftl.mapped_pages(), 32);
    }

    #[test]
    fn gc_report_and_active_window() {
        let (mut ftl, mut flash) = setup();
        let mut now = Nanos::ZERO;
        let mut saw_gc = false;
        for _ in 0..30u64 {
            for i in 0..16u64 {
                let out = ftl.write_page(Lpa::new(i), now, &mut flash);
                if let Some(gc) = out.gc {
                    saw_gc = true;
                    assert!(gc.blocks_erased > 0);
                    assert!(gc.completes_at >= now);
                    assert!(ftl.gc_active_until() >= gc.completes_at);
                }
                now += Nanos::from_micros(5);
            }
        }
        assert!(saw_gc);
        assert!(ftl.gc_active(Nanos::ZERO) || ftl.gc_active_until() > Nanos::ZERO);
    }

    #[test]
    fn precondition_maps_without_stats() {
        let (mut ftl, _flash) = setup();
        ftl.precondition((0..64).map(Lpa::new));
        assert_eq!(ftl.mapped_pages(), 64);
        assert_eq!(ftl.stats().host_pages_written, 0);
        assert!(ftl.utilisation() > 0.49);
    }

    #[test]
    fn utilisation_and_free_fraction_track_writes() {
        let (mut ftl, mut flash) = setup();
        assert_eq!(ftl.utilisation(), 0.0);
        let before = ftl.free_block_fraction();
        for i in 0..16u64 {
            ftl.write_page(Lpa::new(i), Nanos::ZERO, &mut flash);
        }
        assert!(ftl.utilisation() > 0.0);
        assert!(ftl.free_block_fraction() < before);
    }

    #[test]
    fn waf_grows_with_gc() {
        let (mut ftl, mut flash) = setup();
        let mut now = Nanos::ZERO;
        // Fill 96 of the 128 physical pages with live data, then repeatedly
        // overwrite a hot subset that is interleaved with cold pages inside
        // the same blocks, so every GC victim has live pages to relocate.
        for i in 0..96u64 {
            ftl.write_page(Lpa::new(i), now, &mut flash);
            now += Nanos::from_micros(3);
        }
        for _ in 0..10u64 {
            for i in (0..96u64).step_by(3) {
                ftl.write_page(Lpa::new(i), now, &mut flash);
                now += Nanos::from_micros(3);
            }
        }
        assert!(ftl.stats().gc_campaigns > 0);
        assert!(ftl.stats().gc_pages_relocated > 0);
        assert!(
            ftl.stats().write_amplification() > 1.0,
            "GC relocations must raise WAF above 1, got {}",
            ftl.stats().write_amplification()
        );
        // Flash-side accounting agrees with FTL-side accounting.
        assert_eq!(
            flash.stats().pages_programmed,
            ftl.stats().flash_pages_programmed
        );
    }
}
