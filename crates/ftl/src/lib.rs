//! Flash translation layer (FTL) for the SkyByte CXL-SSD simulator.
//!
//! The FTL sits between the logical page space exported over CXL and the
//! physical NAND array modelled by [`skybyte_flash`]. It provides:
//!
//! * a **page-level mapping table** from logical page addresses ([`Lpa`]) to
//!   physical page addresses ([`Ppa`]) with out-of-place updates,
//! * **block management**: free-block pools per plane, write striping across
//!   channels, valid-page accounting,
//! * **garbage collection**: a greedy (min-valid-pages) victim selector that
//!   relocates live pages and erases blocks when the device fills beyond the
//!   configured threshold (80 % in Table II), and
//! * **write-amplification statistics** used by Figure 18 / Figure 20.
//!
//! # Example
//!
//! ```
//! use skybyte_flash::FlashArray;
//! use skybyte_ftl::Ftl;
//! use skybyte_types::prelude::*;
//!
//! let cfg = SsdConfig::default();
//! let mut flash = FlashArray::new(cfg.geometry, cfg.flash);
//! let mut ftl = Ftl::new(&cfg);
//!
//! // Write a logical page, then read it back through the mapping.
//! let outcome = ftl.write_page(Lpa::new(7), Nanos::ZERO, &mut flash);
//! assert!(outcome.completes_at >= Nanos::from_micros(100)); // >= tProg
//! let ppa = ftl.translate(Lpa::new(7)).unwrap();
//! assert_eq!(ftl.stats().host_pages_written, 1);
//! assert_eq!(flash.stats().pages_programmed, 1);
//! # let _ = ppa;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod ftl_impl;
mod stats;

pub use blocks::{BlockId, BlockManager, BlockState};
pub use ftl_impl::{Ftl, GcReport, WriteOutcome};
pub use stats::FtlStats;
