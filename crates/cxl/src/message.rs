//! CXL.mem messages and opcodes.
//!
//! Only the fields relevant to SkyByte are modelled: the master-to-slave
//! request opcode, the 16-bit transaction tag, and the slave-to-master
//! response, where the NDR opcode field carries the `SkyByte-Delay` hint
//! (Figure 8 of the paper). The NDR encoding follows the figure exactly:
//! a valid bit, a 3-bit opcode and a 16-bit tag.

use serde::{Deserialize, Serialize};
use skybyte_types::{AccessKind, Nanos, PhysAddr};
use std::fmt;

/// A 16-bit CXL.mem transaction tag.
pub type Tag = u16;

/// Master-to-slave (host → SSD) request opcodes used by SkyByte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpcode {
    /// `MemRd`: read one cacheline.
    MemRd,
    /// `MemWr`: write one cacheline.
    MemWr,
}

impl MemOpcode {
    /// The opcode corresponding to a host access kind.
    pub fn from_kind(kind: AccessKind) -> Self {
        match kind {
            AccessKind::Read => MemOpcode::MemRd,
            AccessKind::Write => MemOpcode::MemWr,
        }
    }
}

impl fmt::Display for MemOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOpcode::MemRd => write!(f, "MemRd"),
            MemOpcode::MemWr => write!(f, "MemWr"),
        }
    }
}

/// No-Data-Response opcodes (Figure 8). `SkyByte-Delay` occupies one of the
/// reserved encodings (0b111).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NdrOpcode {
    /// Completion for writebacks, reads and invalidates (0b000).
    Cmp,
    /// Cache-coherence completion, shared state (0b001).
    CmpS,
    /// Cache-coherence completion, exclusive state (0b010).
    CmpE,
    /// Back-invalidate conflict acknowledgement (0b100).
    BiConflictAck,
    /// SkyByte extension: the request will suffer a long access delay; the
    /// host should raise a Long Delay Exception (0b111).
    SkyByteDelay,
}

impl NdrOpcode {
    /// The 3-bit wire encoding of this opcode.
    pub const fn encoding(self) -> u8 {
        match self {
            NdrOpcode::Cmp => 0b000,
            NdrOpcode::CmpS => 0b001,
            NdrOpcode::CmpE => 0b010,
            NdrOpcode::BiConflictAck => 0b100,
            NdrOpcode::SkyByteDelay => 0b111,
        }
    }

    /// Decodes a 3-bit encoding; unknown/reserved encodings return `None`.
    pub const fn from_encoding(bits: u8) -> Option<Self> {
        match bits {
            0b000 => Some(NdrOpcode::Cmp),
            0b001 => Some(NdrOpcode::CmpS),
            0b010 => Some(NdrOpcode::CmpE),
            0b100 => Some(NdrOpcode::BiConflictAck),
            0b111 => Some(NdrOpcode::SkyByteDelay),
            _ => None,
        }
    }

    /// Packs a `(valid, opcode, tag)` NDR flit header into the low 20 bits of
    /// a `u32`, following the field layout of Figure 8
    /// (bit 0 = valid, bits 1..=3 = opcode, bits 4..=19 = tag).
    pub fn encode_flit(self, tag: Tag) -> u32 {
        1 | ((self.encoding() as u32) << 1) | ((tag as u32) << 4)
    }

    /// Unpacks an NDR flit header produced by [`NdrOpcode::encode_flit`].
    /// Returns `None` if the valid bit is clear or the opcode is reserved.
    pub fn decode_flit(flit: u32) -> Option<(Self, Tag)> {
        if flit & 1 == 0 {
            return None;
        }
        let opcode = Self::from_encoding(((flit >> 1) & 0b111) as u8)?;
        let tag = ((flit >> 4) & 0xFFFF) as Tag;
        Some((opcode, tag))
    }
}

impl fmt::Display for NdrOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NdrOpcode::Cmp => "Cmp",
            NdrOpcode::CmpS => "Cmp-S",
            NdrOpcode::CmpE => "Cmp-E",
            NdrOpcode::BiConflictAck => "BI-ConflictAck",
            NdrOpcode::SkyByteDelay => "SkyByte-Delay",
        };
        f.write_str(s)
    }
}

/// A CXL.mem request from the host to the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CxlRequest {
    /// Transaction tag assigned by the host CXL controller.
    pub tag: Tag,
    /// Request opcode.
    pub opcode: MemOpcode,
    /// Host physical address of the cacheline (within the HDM window).
    pub addr: PhysAddr,
    /// Time the request leaves the host.
    pub issued_at: Nanos,
}

/// A CXL.mem response from the SSD to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CxlResponse {
    /// `MemData`: the read data is returned; the transaction completes at the
    /// given time.
    MemData {
        /// Transaction tag being answered.
        tag: Tag,
        /// Completion time at the host.
        completes_at: Nanos,
    },
    /// A No-Data Response with the given opcode (for writes: `Cmp`; for long
    /// delays: `SkyByteDelay`).
    NoData {
        /// Transaction tag being answered.
        tag: Tag,
        /// NDR opcode.
        opcode: NdrOpcode,
        /// Arrival time of the response at the host.
        completes_at: Nanos,
        /// For `SkyByteDelay`: the SSD's estimate of when the data will be
        /// ready in its DRAM, so the OS can decide when to reschedule.
        estimated_ready_at: Nanos,
    },
}

impl CxlResponse {
    /// The transaction tag this response answers.
    pub fn tag(&self) -> Tag {
        match self {
            CxlResponse::MemData { tag, .. } | CxlResponse::NoData { tag, .. } => *tag,
        }
    }

    /// Whether this response is a `SkyByte-Delay` hint.
    pub fn is_delay_hint(&self) -> bool {
        matches!(
            self,
            CxlResponse::NoData {
                opcode: NdrOpcode::SkyByteDelay,
                ..
            }
        )
    }

    /// Arrival time of the response at the host.
    pub fn completes_at(&self) -> Nanos {
        match self {
            CxlResponse::MemData { completes_at, .. }
            | CxlResponse::NoData { completes_at, .. } => *completes_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn opcode_encodings_match_figure8() {
        assert_eq!(NdrOpcode::Cmp.encoding(), 0b000);
        assert_eq!(NdrOpcode::CmpS.encoding(), 0b001);
        assert_eq!(NdrOpcode::CmpE.encoding(), 0b010);
        assert_eq!(NdrOpcode::BiConflictAck.encoding(), 0b100);
        assert_eq!(NdrOpcode::SkyByteDelay.encoding(), 0b111);
        assert_eq!(NdrOpcode::from_encoding(0b011), None);
        assert_eq!(NdrOpcode::from_encoding(0b101), None);
        assert_eq!(
            NdrOpcode::from_encoding(0b111),
            Some(NdrOpcode::SkyByteDelay)
        );
    }

    #[test]
    fn flit_round_trip() {
        let flit = NdrOpcode::SkyByteDelay.encode_flit(0xBEEF);
        assert_eq!(flit & 1, 1);
        let (op, tag) = NdrOpcode::decode_flit(flit).unwrap();
        assert_eq!(op, NdrOpcode::SkyByteDelay);
        assert_eq!(tag, 0xBEEF);
        // Invalid flit (valid bit clear).
        assert_eq!(NdrOpcode::decode_flit(flit & !1), None);
    }

    #[test]
    fn mem_opcode_from_kind() {
        assert_eq!(MemOpcode::from_kind(AccessKind::Read), MemOpcode::MemRd);
        assert_eq!(MemOpcode::from_kind(AccessKind::Write), MemOpcode::MemWr);
        assert_eq!(MemOpcode::MemRd.to_string(), "MemRd");
    }

    #[test]
    fn response_helpers() {
        let data = CxlResponse::MemData {
            tag: 7,
            completes_at: Nanos::new(100),
        };
        assert_eq!(data.tag(), 7);
        assert!(!data.is_delay_hint());
        assert_eq!(data.completes_at(), Nanos::new(100));

        let delay = CxlResponse::NoData {
            tag: 9,
            opcode: NdrOpcode::SkyByteDelay,
            completes_at: Nanos::new(80),
            estimated_ready_at: Nanos::from_micros(5),
        };
        assert!(delay.is_delay_hint());
        assert_eq!(delay.tag(), 9);

        let cmp = CxlResponse::NoData {
            tag: 9,
            opcode: NdrOpcode::Cmp,
            completes_at: Nanos::new(80),
            estimated_ready_at: Nanos::ZERO,
        };
        assert!(!cmp.is_delay_hint());
    }

    #[test]
    fn display_names() {
        assert_eq!(NdrOpcode::SkyByteDelay.to_string(), "SkyByte-Delay");
        assert_eq!(NdrOpcode::BiConflictAck.to_string(), "BI-ConflictAck");
    }

    proptest! {
        #[test]
        fn prop_flit_round_trips_for_all_tags(tag in any::<u16>()) {
            for op in [NdrOpcode::Cmp, NdrOpcode::CmpS, NdrOpcode::CmpE,
                       NdrOpcode::BiConflictAck, NdrOpcode::SkyByteDelay] {
                let flit = op.encode_flit(tag);
                prop_assert_eq!(NdrOpcode::decode_flit(flit), Some((op, tag)));
            }
        }
    }
}
