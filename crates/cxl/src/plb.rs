//! The Promotion Look-aside Buffer (PLB) in the host bridge (§III-C and §IV).
//!
//! While a page is being promoted from the SSD to host DRAM, accesses to it
//! must stay consistent without stalling behind the copy. The PLB records
//! every in-flight migration: the source (SSD) page, the destination (host)
//! page, and a bitmap of cachelines already copied. Reads of a page under
//! promotion are served from the SSD DRAM; writes go to the most recent copy
//! — the host page if that cacheline has already migrated, the SSD otherwise.
//!
//! For 2 MiB huge pages a two-level variant ([`HugePagePlb`]) tracks 4 KiB
//! chunks in the first level and the cachelines of the chunk currently under
//! migration in the second level, so the per-entry bitmap stays 64 B + 8 B
//! instead of 4 KiB (§IV).

use serde::{Deserialize, Serialize};
use skybyte_types::{CachelineIndex, PageNumber, CACHELINES_PER_PAGE};

/// Where a write to a page under promotion must be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteRoute {
    /// The cacheline has already been copied: write the host DRAM copy.
    HostDram,
    /// The cacheline has not been copied yet: write the SSD copy.
    CxlSsd,
}

/// One PLB entry: an in-flight 4 KiB page promotion.
///
/// The paper sizes each entry at 24 B: source and destination page addresses
/// (8 B each), the migrated-cacheline bitmap (8 B) and a valid bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlbEntry {
    /// Source page in the SSD (device page number).
    pub source: PageNumber,
    /// Destination page in host DRAM (host page number).
    pub destination: PageNumber,
    /// Bit *i* set ⇔ cacheline *i* has been copied to the destination.
    pub migrated_bitmap: u64,
}

impl PlbEntry {
    /// Whether every cacheline of the page has been copied.
    pub fn is_complete(&self) -> bool {
        self.migrated_bitmap == u64::MAX
    }

    /// Number of cachelines copied so far.
    pub fn migrated_count(&self) -> u32 {
        self.migrated_bitmap.count_ones()
    }
}

/// The Promotion Look-aside Buffer: a small, fully-associative table of
/// in-flight page promotions (64 entries in the paper).
///
/// # Example
///
/// ```
/// use skybyte_cxl::{PromotionLookasideBuffer, WriteRoute};
/// use skybyte_types::PageNumber;
///
/// let mut plb = PromotionLookasideBuffer::new(64);
/// plb.begin(PageNumber(10), PageNumber(900)).unwrap();
/// assert_eq!(plb.route_write(PageNumber(10), 3), Some(WriteRoute::CxlSsd));
/// plb.mark_migrated(PageNumber(10), 3);
/// assert_eq!(plb.route_write(PageNumber(10), 3), Some(WriteRoute::HostDram));
/// let entry = plb.complete(PageNumber(10)).unwrap();
/// assert_eq!(entry.destination, PageNumber(900));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PromotionLookasideBuffer {
    capacity: usize,
    entries: Vec<PlbEntry>,
}

impl PromotionLookasideBuffer {
    /// Creates a PLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "PLB needs at least one entry");
        PromotionLookasideBuffer {
            capacity: capacity as usize,
            entries: Vec::new(),
        }
    }

    /// Starts tracking a promotion of `source` (SSD page) to `destination`
    /// (host page). Returns `Err` with the rejected pair if the PLB is full
    /// or the source page is already migrating.
    pub fn begin(
        &mut self,
        source: PageNumber,
        destination: PageNumber,
    ) -> Result<(), (PageNumber, PageNumber)> {
        if self.entries.len() >= self.capacity || self.lookup(source).is_some() {
            return Err((source, destination));
        }
        self.entries.push(PlbEntry {
            source,
            destination,
            migrated_bitmap: 0,
        });
        Ok(())
    }

    /// The entry tracking `source`, if it is under promotion.
    pub fn lookup(&self, source: PageNumber) -> Option<&PlbEntry> {
        self.entries.iter().find(|e| e.source == source)
    }

    /// Whether `source` is currently being promoted.
    pub fn is_migrating(&self, source: PageNumber) -> bool {
        self.lookup(source).is_some()
    }

    /// Records that cacheline `cl` of `source` has been copied to the host.
    /// Returns `false` if the page is not under promotion.
    pub fn mark_migrated(&mut self, source: PageNumber, cl: CachelineIndex) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.source == source) {
            e.migrated_bitmap |= 1u64 << (cl as usize % CACHELINES_PER_PAGE);
            true
        } else {
            false
        }
    }

    /// Routing decision for a *write* to a page under promotion, or `None`
    /// if the page is not migrating (normal routing applies).
    pub fn route_write(&self, source: PageNumber, cl: CachelineIndex) -> Option<WriteRoute> {
        self.lookup(source).map(|e| {
            if e.migrated_bitmap & (1u64 << (cl as usize % CACHELINES_PER_PAGE)) != 0 {
                WriteRoute::HostDram
            } else {
                WriteRoute::CxlSsd
            }
        })
    }

    /// Finishes the promotion of `source`, removing and returning its entry.
    pub fn complete(&mut self, source: PageNumber) -> Option<PlbEntry> {
        let idx = self.entries.iter().position(|e| e.source == source)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Number of promotions in flight.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether no more promotions can start.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Number of 4 KiB chunks in a 2 MiB huge page.
pub const CHUNKS_PER_HUGE_PAGE: usize = 512;

/// Two-level PLB entry for a 2 MiB huge-page migration (§IV).
///
/// The first level tracks which 4 KiB chunks have fully migrated (a 512-bit
/// bitmap, 64 B). The second level tracks the cachelines of the single chunk
/// currently being copied (8 B). The huge page is migrated chunk by chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HugePagePlb {
    /// First huge page number (2 MiB aligned, expressed in 4 KiB pages).
    base_page: PageNumber,
    /// Destination base page in host DRAM.
    dest_base_page: PageNumber,
    /// Bit *i* set ⇔ 4 KiB chunk *i* has fully migrated.
    chunk_bitmap: [u64; CHUNKS_PER_HUGE_PAGE / 64],
    /// Chunk currently under migration, if any.
    current_chunk: Option<u16>,
    /// Cacheline bitmap of the current chunk.
    current_chunk_bitmap: u64,
}

impl HugePagePlb {
    /// Starts a huge-page migration from `base_page` (must be 2 MiB aligned,
    /// i.e. a multiple of 512 small pages) to `dest_base_page`.
    ///
    /// # Panics
    ///
    /// Panics if `base_page` is not 2 MiB aligned.
    pub fn new(base_page: PageNumber, dest_base_page: PageNumber) -> Self {
        assert_eq!(
            base_page.index() % CHUNKS_PER_HUGE_PAGE as u64,
            0,
            "huge page base must be 2 MiB aligned"
        );
        HugePagePlb {
            base_page,
            dest_base_page,
            chunk_bitmap: [0; CHUNKS_PER_HUGE_PAGE / 64],
            current_chunk: None,
            current_chunk_bitmap: 0,
        }
    }

    /// Begins migrating chunk `chunk` (0..512).
    ///
    /// # Panics
    ///
    /// Panics if another chunk is still in flight or `chunk` is out of range.
    pub fn begin_chunk(&mut self, chunk: u16) {
        assert!(
            (chunk as usize) < CHUNKS_PER_HUGE_PAGE,
            "chunk out of range"
        );
        assert!(self.current_chunk.is_none(), "a chunk is already migrating");
        self.current_chunk = Some(chunk);
        self.current_chunk_bitmap = 0;
    }

    /// Records that cacheline `cl` of the current chunk has been copied.
    /// When all 64 cachelines are copied, the chunk is marked migrated and
    /// the second-level entry is recycled; returns `true` in that case.
    pub fn mark_cacheline(&mut self, cl: CachelineIndex) -> bool {
        let chunk = self.current_chunk.expect("no chunk under migration");
        self.current_chunk_bitmap |= 1u64 << (cl as usize % CACHELINES_PER_PAGE);
        if self.current_chunk_bitmap == u64::MAX {
            self.chunk_bitmap[chunk as usize / 64] |= 1u64 << (chunk % 64);
            self.current_chunk = None;
            self.current_chunk_bitmap = 0;
            true
        } else {
            false
        }
    }

    /// Whether the 4 KiB page `page` (inside this huge page) has fully
    /// migrated to the host.
    pub fn is_page_migrated(&self, page: PageNumber) -> bool {
        let offset = page.index().wrapping_sub(self.base_page.index());
        if offset >= CHUNKS_PER_HUGE_PAGE as u64 {
            return false;
        }
        self.chunk_bitmap[offset as usize / 64] & (1u64 << (offset % 64)) != 0
    }

    /// Whether the entire huge page has migrated.
    pub fn is_complete(&self) -> bool {
        self.chunk_bitmap.iter().all(|w| *w == u64::MAX) && self.current_chunk.is_none()
    }

    /// Number of fully migrated 4 KiB chunks.
    pub fn migrated_chunks(&self) -> u32 {
        self.chunk_bitmap.iter().map(|w| w.count_ones()).sum()
    }

    /// The host destination page for a given source page inside the huge
    /// page.
    pub fn destination_of(&self, page: PageNumber) -> PageNumber {
        let offset = page.index() - self.base_page.index();
        PageNumber(self.dest_base_page.index() + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_route_complete_cycle() {
        let mut plb = PromotionLookasideBuffer::new(2);
        plb.begin(PageNumber(1), PageNumber(100)).unwrap();
        assert!(plb.is_migrating(PageNumber(1)));
        assert!(!plb.is_migrating(PageNumber(2)));
        assert_eq!(plb.route_write(PageNumber(1), 0), Some(WriteRoute::CxlSsd));
        plb.mark_migrated(PageNumber(1), 0);
        assert_eq!(
            plb.route_write(PageNumber(1), 0),
            Some(WriteRoute::HostDram)
        );
        assert_eq!(plb.route_write(PageNumber(1), 1), Some(WriteRoute::CxlSsd));
        assert_eq!(plb.route_write(PageNumber(5), 0), None);
        let entry = plb.complete(PageNumber(1)).unwrap();
        assert_eq!(entry.destination, PageNumber(100));
        assert_eq!(entry.migrated_count(), 1);
        assert!(plb.complete(PageNumber(1)).is_none());
        assert_eq!(plb.occupancy(), 0);
    }

    #[test]
    fn capacity_and_duplicates_rejected() {
        let mut plb = PromotionLookasideBuffer::new(1);
        plb.begin(PageNumber(1), PageNumber(10)).unwrap();
        assert!(plb.is_full());
        assert!(plb.begin(PageNumber(2), PageNumber(20)).is_err());
        // Duplicate source also rejected.
        let mut plb2 = PromotionLookasideBuffer::new(4);
        plb2.begin(PageNumber(1), PageNumber(10)).unwrap();
        assert!(plb2.begin(PageNumber(1), PageNumber(11)).is_err());
        assert_eq!(plb2.capacity(), 4);
    }

    #[test]
    fn entry_completion_bitmap() {
        let mut plb = PromotionLookasideBuffer::new(1);
        plb.begin(PageNumber(3), PageNumber(30)).unwrap();
        for cl in 0..64u8 {
            plb.mark_migrated(PageNumber(3), cl);
        }
        assert!(plb.lookup(PageNumber(3)).unwrap().is_complete());
        assert!(!plb.mark_migrated(PageNumber(99), 0));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_empty_plb() {
        let _ = PromotionLookasideBuffer::new(0);
    }

    #[test]
    fn huge_page_chunk_by_chunk() {
        let mut h = HugePagePlb::new(PageNumber(512), PageNumber(4096));
        assert_eq!(h.migrated_chunks(), 0);
        h.begin_chunk(0);
        for cl in 0..63u8 {
            assert!(!h.mark_cacheline(cl));
        }
        assert!(h.mark_cacheline(63), "last cacheline completes the chunk");
        assert_eq!(h.migrated_chunks(), 1);
        assert!(h.is_page_migrated(PageNumber(512)));
        assert!(!h.is_page_migrated(PageNumber(513)));
        assert!(!h.is_page_migrated(PageNumber(2000)));
        assert!(!h.is_complete());
        assert_eq!(h.destination_of(PageNumber(513)), PageNumber(4097));
    }

    #[test]
    fn huge_page_completes_after_all_chunks() {
        let mut h = HugePagePlb::new(PageNumber(0), PageNumber(10_000));
        for chunk in 0..CHUNKS_PER_HUGE_PAGE as u16 {
            h.begin_chunk(chunk);
            for cl in 0..64u8 {
                h.mark_cacheline(cl);
            }
        }
        assert!(h.is_complete());
        assert_eq!(h.migrated_chunks(), 512);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn huge_page_requires_alignment() {
        let _ = HugePagePlb::new(PageNumber(5), PageNumber(0));
    }

    #[test]
    #[should_panic(expected = "already migrating")]
    fn huge_page_one_chunk_at_a_time() {
        let mut h = HugePagePlb::new(PageNumber(0), PageNumber(0));
        h.begin_chunk(0);
        h.begin_chunk(1);
    }
}
