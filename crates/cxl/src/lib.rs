//! CXL.mem protocol model for the SkyByte CXL-SSD.
//!
//! The host CPU accesses the SSD as a Type-3 device through CXL.mem: reads are
//! `MemRd` master-to-slave requests answered either by a `MemData` response
//! carrying the cacheline or by a *No Data Response* (NDR). SkyByte extends
//! the NDR opcode space with `SkyByte-Delay` (Figure 8): when the SSD
//! controller predicts a long access delay it completes the transaction with
//! this opcode, and the host turns it into a *Long Delay Exception* that lets
//! the OS context-switch the blocked thread (Figure 7).
//!
//! This crate provides:
//!
//! * [`message`] — message and opcode types with bit-exact NDR encoding,
//! * [`port`] — the link/protocol timing model (40 ns protocol latency,
//!   PCIe 5.0 ×4 bandwidth) and per-transaction tag allocation,
//! * [`plb`] — the Promotion Look-aside Buffer in the host bridge that keeps
//!   reads/writes consistent while a page migrates between the SSD and host
//!   DRAM (§III-C), including the two-level variant for 2 MiB huge pages
//!   (§IV).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod plb;
pub mod port;

pub use message::{CxlRequest, CxlResponse, MemOpcode, NdrOpcode, Tag};
pub use plb::{HugePagePlb, PlbEntry, PromotionLookasideBuffer, WriteRoute};
pub use port::{CxlPort, CxlPortStats, TagAllocator};
