//! CXL link and protocol timing, plus transaction-tag allocation.

use crate::message::Tag;
use serde::{Deserialize, Serialize};
use skybyte_types::{Nanos, CACHELINE_SIZE};

/// Statistics of traffic that crossed the CXL link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CxlPortStats {
    /// Number of host→SSD requests carried.
    pub requests: u64,
    /// Number of SSD→host responses carried.
    pub responses: u64,
    /// Payload bytes moved in either direction (cacheline data and page
    /// migrations; header flits are not counted).
    pub payload_bytes: u64,
}

/// Timing model of the CXL.mem port (PCIe 5.0 ×4 in Table II).
///
/// The protocol adds a fixed latency to every transaction (40 ns in the
/// paper) and payloads are limited by the link bandwidth. The port keeps a
/// single `busy_until` horizon per direction pair combined, which is a good
/// approximation at the cacheline sizes involved because protocol latency,
/// not serialisation, dominates.
///
/// # Example
///
/// ```
/// use skybyte_cxl::CxlPort;
/// use skybyte_types::Nanos;
///
/// let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
/// let arrival = port.deliver_cacheline(Nanos::ZERO);
/// assert!(arrival >= Nanos::new(40));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CxlPort {
    protocol_latency: Nanos,
    bandwidth_bps: u64,
    busy_until: Nanos,
    busy_time: Nanos,
    stats: CxlPortStats,
}

impl CxlPort {
    /// Creates a port with the given one-way protocol latency and link
    /// bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(protocol_latency: Nanos, bandwidth_bps: u64) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be nonzero");
        CxlPort {
            protocol_latency,
            bandwidth_bps,
            busy_until: Nanos::ZERO,
            busy_time: Nanos::ZERO,
            stats: CxlPortStats::default(),
        }
    }

    /// The fixed protocol latency added to each transaction.
    pub fn protocol_latency(&self) -> Nanos {
        self.protocol_latency
    }

    /// Serialisation time of `bytes` on the link.
    pub fn transfer_time(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let ns = (bytes as f64) * 1e9 / self.bandwidth_bps as f64;
        Nanos::new(ns.ceil().max(1.0) as u64)
    }

    /// Carries a host→SSD request (no payload) issued at `now`; returns its
    /// arrival time at the SSD controller.
    pub fn deliver_request(&mut self, now: Nanos) -> Nanos {
        self.stats.requests += 1;
        self.occupy(now, 0)
    }

    /// Carries a payload-free SSD→host completion (e.g. a write
    /// acknowledgement) issued at `now`; returns its arrival time at the
    /// host. Counted as a response, not a request.
    pub fn deliver_response(&mut self, now: Nanos) -> Nanos {
        self.stats.responses += 1;
        self.occupy(now, 0)
    }

    /// Carries one 64-byte cacheline (either direction) at `now`; returns the
    /// time the payload has fully arrived.
    pub fn deliver_cacheline(&mut self, now: Nanos) -> Nanos {
        self.stats.responses += 1;
        self.stats.payload_bytes += CACHELINE_SIZE as u64;
        self.occupy(now, CACHELINE_SIZE as u64)
    }

    /// Carries an arbitrary payload of `bytes` (page migration traffic) at
    /// `now`; returns the completion time.
    pub fn deliver_payload(&mut self, now: Nanos, bytes: u64) -> Nanos {
        self.stats.responses += 1;
        self.stats.payload_bytes += bytes;
        self.occupy(now, bytes)
    }

    /// Fraction of wall-clock time `[0, now]` the link spent transferring
    /// payloads (bandwidth utilisation, the line series of Figure 15).
    pub fn utilisation(&self, now: Nanos) -> f64 {
        if now == Nanos::ZERO {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }

    /// Bytes per second actually moved over `[0, now]`.
    pub fn achieved_bandwidth_bps(&self, now: Nanos) -> f64 {
        if now == Nanos::ZERO {
            return 0.0;
        }
        self.stats.payload_bytes as f64 * 1e9 / now.as_nanos() as f64
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &CxlPortStats {
        &self.stats
    }

    fn occupy(&mut self, now: Nanos, bytes: u64) -> Nanos {
        let serialisation = self.transfer_time(bytes);
        let start = now.max(self.busy_until);
        let done = start + serialisation;
        self.busy_until = done;
        self.busy_time += serialisation;
        done + self.protocol_latency
    }
}

/// Allocates 16-bit CXL.mem transaction tags, recycling released tags.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TagAllocator {
    next: u16,
    free: Vec<Tag>,
    outstanding: u32,
}

impl TagAllocator {
    /// Creates an allocator with no tags outstanding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a tag; returns `None` if all 65 536 tags are in flight.
    pub fn allocate(&mut self) -> Option<Tag> {
        if let Some(t) = self.free.pop() {
            self.outstanding += 1;
            return Some(t);
        }
        if self.outstanding > u32::from(u16::MAX) {
            return None;
        }
        let t = self.next;
        self.next = self.next.wrapping_add(1);
        self.outstanding += 1;
        Some(t)
    }

    /// Releases a tag for reuse.
    pub fn release(&mut self, tag: Tag) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.free.push(tag);
    }

    /// Number of tags currently in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_latency_is_added() {
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let t = port.deliver_request(Nanos::new(100));
        assert_eq!(t, Nanos::new(140));
    }

    #[test]
    fn responses_are_not_counted_as_requests() {
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let t = port.deliver_response(Nanos::new(10));
        assert_eq!(t, Nanos::new(50));
        assert_eq!(port.stats().requests, 0);
        assert_eq!(port.stats().responses, 1);
        assert_eq!(port.stats().payload_bytes, 0);
    }

    #[test]
    fn cacheline_serialisation_uses_bandwidth() {
        // 64 B at 16 GiB/s ≈ 3.7 ns, rounded up to 4.
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let t = port.deliver_cacheline(Nanos::ZERO);
        assert!(t >= Nanos::new(43) && t <= Nanos::new(45), "got {t}");
        assert_eq!(port.stats().payload_bytes, 64);
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_link() {
        let mut port = CxlPort::new(Nanos::new(40), 1 << 30); // 1 GiB/s
        let a = port.deliver_payload(Nanos::ZERO, 4096);
        let b = port.deliver_payload(Nanos::ZERO, 4096);
        assert!(b > a, "second transfer must wait for the first");
        assert!(port.utilisation(b) > 0.5);
        assert!(port.achieved_bandwidth_bps(b) > 0.0);
    }

    #[test]
    fn zero_payload_has_zero_serialisation() {
        let port = CxlPort::new(Nanos::new(40), 16 << 30);
        assert_eq!(port.transfer_time(0), Nanos::ZERO);
        assert_eq!(port.utilisation(Nanos::ZERO), 0.0);
        assert_eq!(port.achieved_bandwidth_bps(Nanos::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        let _ = CxlPort::new(Nanos::new(40), 0);
    }

    #[test]
    fn tag_allocation_recycles() {
        let mut tags = TagAllocator::new();
        let a = tags.allocate().unwrap();
        let b = tags.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(tags.outstanding(), 2);
        tags.release(a);
        assert_eq!(tags.outstanding(), 1);
        let c = tags.allocate().unwrap();
        assert_eq!(c, a, "released tags are reused");
    }

    #[test]
    fn tag_exhaustion_returns_none() {
        let mut tags = TagAllocator::new();
        for _ in 0..=u16::MAX as u32 {
            assert!(tags.allocate().is_some());
        }
        assert!(tags.allocate().is_none());
        tags.release(0);
        assert!(tags.allocate().is_some());
    }
}
