//! Controller-level statistics and per-access timing breakdowns.

use serde::{Deserialize, Serialize};
use skybyte_types::Nanos;
use std::fmt;

/// Which structure ultimately served (or absorbed) a CXL access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedBy {
    /// The cacheline-granular write log (write append or read hit).
    WriteLog,
    /// The page-granular data cache in the SSD DRAM.
    DataCache,
    /// A flash page access was required (SSD DRAM miss).
    Flash,
    /// The page was never written: the controller returns zeroes without
    /// touching flash.
    ZeroFill,
}

impl fmt::Display for ServedBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServedBy::WriteLog => "write-log",
            ServedBy::DataCache => "data-cache",
            ServedBy::Flash => "flash",
            ServedBy::ZeroFill => "zero-fill",
        };
        f.write_str(s)
    }
}

/// Per-access latency breakdown inside the SSD, in the components plotted in
/// Figure 17 (the host adds the CXL-protocol and host-DRAM components).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessBreakdown {
    /// Time spent looking up the write-log / data-cache indexes.
    pub indexing: Nanos,
    /// Time spent accessing the SSD-internal DRAM.
    pub ssd_dram: Nanos,
    /// Time spent waiting for flash (queueing + tR/tProg), zero on hits.
    pub flash: Nanos,
}

impl AccessBreakdown {
    /// Total device-side latency of the access.
    pub fn total(&self) -> Nanos {
        self.indexing + self.ssd_dram + self.flash
    }
}

/// Aggregate counters of the SSD controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Cacheline reads received over CXL.
    pub reads: u64,
    /// Cacheline writes received over CXL.
    pub writes: u64,
    /// Reads served by the write log.
    pub read_log_hits: u64,
    /// Reads served by the data cache.
    pub read_cache_hits: u64,
    /// Reads that required a flash page fetch.
    pub read_flash_misses: u64,
    /// Reads of never-written pages served as zero-fill.
    pub read_zero_fills: u64,
    /// Writes absorbed by the write log.
    pub write_log_appends: u64,
    /// Writes that hit the data cache (Base-CSSD path, or the parallel W2
    /// update in SkyByte).
    pub write_cache_hits: u64,
    /// Writes that forced a flash page fetch (Base-CSSD read-modify-write).
    pub write_flash_misses: u64,
    /// `SkyByte-Delay` hints sent to the host.
    pub delay_hints: u64,
    /// Log compactions executed.
    pub compactions: u64,
    /// Pages flushed to flash by compaction.
    pub compaction_pages_flushed: u64,
    /// Wall-clock time the device spent compacting: a union-of-windows
    /// measure (overlapping campaigns count their shared span once; a
    /// campaign arriving on a lagging clock entirely inside an
    /// already-covered window contributes nothing), so it is bounded by the
    /// covered wall-clock span and, windowed to the run, by the execution
    /// time — which the conservation audit asserts.
    pub compaction_time: Nanos,
    /// Dirty pages written back on data-cache eviction (Base-CSSD).
    pub eviction_writebacks: u64,
    /// Pages prefetched from flash into the data cache.
    pub prefetches: u64,
    /// Pages removed from the SSD caches because they were promoted to host
    /// DRAM.
    pub pages_promoted: u64,
    /// Dirty data written through to flash because the admission policy
    /// bypassed the page (zero under the default admit-all policy).
    #[serde(default)]
    pub write_throughs: u64,
    /// Gauge: pages the hotness tracker currently holds state for (counters,
    /// pending candidates, promoted marks). `None` in results pinned before
    /// the tracker exposed it.
    #[serde(default)]
    pub tracked_pages: Option<u64>,
}

impl SsdStats {
    /// Total accesses received.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of reads that hit in SSD DRAM (log or cache).
    pub fn read_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        (self.read_log_hits + self.read_cache_hits + self.read_zero_fills) as f64
            / self.reads as f64
    }

    /// Average compaction busy time per campaign. Because
    /// [`compaction_time`](Self::compaction_time) is a union measure, this
    /// under-reports the true per-campaign duration when campaigns overlap —
    /// it answers "how much device-busy time did a campaign cost on
    /// average", not "how long did a campaign run".
    pub fn avg_compaction_time(&self) -> Nanos {
        if self.compactions == 0 {
            Nanos::ZERO
        } else {
            self.compaction_time / self.compactions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total() {
        let b = AccessBreakdown {
            indexing: Nanos::new(72),
            ssd_dram: Nanos::new(90),
            flash: Nanos::from_micros(3),
        };
        assert_eq!(b.total(), Nanos::new(3162));
    }

    #[test]
    fn hit_rate_and_averages() {
        let mut s = SsdStats::default();
        assert_eq!(s.read_hit_rate(), 0.0);
        assert_eq!(s.avg_compaction_time(), Nanos::ZERO);
        s.reads = 10;
        s.read_log_hits = 3;
        s.read_cache_hits = 4;
        s.read_zero_fills = 1;
        s.read_flash_misses = 2;
        assert!((s.read_hit_rate() - 0.8).abs() < 1e-12);
        s.compactions = 2;
        s.compaction_time = Nanos::from_micros(300);
        assert_eq!(s.avg_compaction_time(), Nanos::from_micros(150));
        s.writes = 5;
        assert_eq!(s.total_accesses(), 15);
    }

    #[test]
    fn served_by_display() {
        assert_eq!(ServedBy::WriteLog.to_string(), "write-log");
        assert_eq!(ServedBy::Flash.to_string(), "flash");
    }
}
