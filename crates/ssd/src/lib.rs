//! The SkyByte CXL-SSD controller.
//!
//! This crate assembles the substrates — the NAND array ([`skybyte_flash`]),
//! the FTL ([`skybyte_ftl`]), the CXL-aware SSD DRAM ([`skybyte_cache`]) and
//! the CXL message model ([`skybyte_cxl`]) — into the device-side half of
//! SkyByte:
//!
//! * [`SsdController`] serves cacheline reads and writes arriving over
//!   CXL.mem, following the R1/R2/R3 and W1/W2/W3 paths of Figure 11 when the
//!   write log is enabled, or the conventional page-granular cache of the
//!   Base-CSSD baseline when it is not;
//! * [`ThresholdPolicy`] implements Algorithm 1, estimating the delay of a
//!   flash access from the per-channel queue occupancy and deciding whether to
//!   answer with the `SkyByte-Delay` NDR opcode;
//! * the [`HotnessPolicy`] seam nominates promotion candidates for the
//!   adaptive page-migration mechanism (§III-C) — [`HotPageTracker`] is the
//!   paper's exact threshold counter; [`DecayTracker`] and [`TopKTracker`]
//!   are memory-bounded contenders;
//! * background **log compaction** (Figure 13) and **garbage collection** are
//!   executed against the flash channel queues so that their interference with
//!   foreground reads is visible in the latency estimates.
//!
//! # Example
//!
//! ```
//! use skybyte_ssd::{ServedBy, SsdController};
//! use skybyte_types::prelude::*;
//!
//! let mut cfg = SimConfig::default().with_variant(VariantKind::SkyByteFull);
//! // Shrink the device so the example runs instantly.
//! cfg.ssd.geometry.blocks_per_plane = 8;
//! cfg.ssd.dram.data_cache_bytes = 1 << 20;
//! cfg.ssd.dram.write_log_bytes = 1 << 16;
//! let mut ssd = SsdController::new(&cfg);
//!
//! // A write is absorbed by the write log without flash access.
//! let w = ssd.handle_write(Lpa::new(3), 5, Nanos::ZERO);
//! assert_eq!(w.served_by, ServedBy::WriteLog);
//!
//! // Reading the same cacheline hits the log.
//! let r = ssd.handle_read(Lpa::new(3), 5, Nanos::new(500));
//! assert_eq!(r.served_by, ServedBy::WriteLog);
//! assert!(!r.delay_hint);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
pub mod hotness;
mod stats;
mod trigger;

pub use controller::SsdController;
pub use hotness::{DecayTracker, HotPageTracker, HotnessPolicy, HotnessTracker, TopKTracker};
pub use stats::{AccessBreakdown, ServedBy, SsdStats};
pub use trigger::{ThresholdPolicy, TriggerDecision};

// Re-exported so the simulation core can snapshot every device layer's
// counters into its per-run `LayerCounters` (the conservation audit's input)
// without depending on each device crate directly.
pub use skybyte_cache::WriteLogStats;
pub use skybyte_flash::FlashStats;
pub use skybyte_ftl::FtlStats;
