//! The threshold-based context-switch trigger policy (Algorithm 1).
//!
//! On an SSD DRAM miss the controller estimates how long the flash access
//! will take by translating the logical page, finding its flash channel, and
//! summing the service times of every command already queued on that channel
//! (plus the new read). If the estimate exceeds the configured threshold —
//! or a garbage-collection campaign is blocking the device — the controller
//! answers the host with the `SkyByte-Delay` opcode so the OS can context
//! switch the blocked thread.

use serde::{Deserialize, Serialize};
use skybyte_flash::FlashArray;
use skybyte_ftl::Ftl;
use skybyte_types::{Lpa, Nanos};

/// The outcome of evaluating the trigger policy for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerDecision {
    /// Whether a `SkyByte-Delay` hint should be sent.
    pub trigger: bool,
    /// The estimated flash access latency used for the decision.
    pub estimated_latency: Nanos,
    /// Whether the decision was forced by an ongoing GC campaign.
    pub gc_blocked: bool,
}

/// Algorithm 1: `shd_ctx_swtc(req, threshold, read_lat, write_lat, erase_lat)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    /// Latency threshold above which a context switch is requested
    /// (2 µs in Table II, tunable per Figure 9).
    pub threshold: Nanos,
}

impl ThresholdPolicy {
    /// Creates the policy with the given threshold.
    pub fn new(threshold: Nanos) -> Self {
        ThresholdPolicy { threshold }
    }

    /// Evaluates the policy for a read of `lpa` arriving at `now`.
    ///
    /// Follows Algorithm 1: translate the address (line 2), find the channel
    /// queue (line 3), read its counters (line 4) and estimate the delay as
    /// `read_lat*(nr+1) + write_lat*nw + erase_lat*ne` (lines 5–6). A request
    /// blocked by an ongoing GC triggers immediately (§III-A).
    pub fn should_context_switch(
        &self,
        lpa: Lpa,
        now: Nanos,
        ftl: &Ftl,
        flash: &FlashArray,
    ) -> TriggerDecision {
        let gc_blocked = ftl.gc_active(now);
        let estimated_latency = match ftl.translate(lpa) {
            Some(ppa) => flash.estimate_read_latency(ppa),
            // Unmapped pages are served as zero-fill from DRAM; estimate one
            // plain read in case the caller still fetches (never triggers for
            // the default threshold).
            None => flash.timing().read_latency,
        };
        TriggerDecision {
            trigger: gc_blocked || estimated_latency > self.threshold,
            estimated_latency,
            gc_blocked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_flash::FlashCommandKind;
    use skybyte_types::{SsdConfig, SsdGeometry};

    fn tiny() -> (Ftl, FlashArray, ThresholdPolicy) {
        let cfg = SsdConfig {
            geometry: SsdGeometry {
                channels: 2,
                chips_per_channel: 1,
                dies_per_chip: 1,
                planes_per_die: 1,
                blocks_per_plane: 8,
                pages_per_block: 8,
                page_size_bytes: 4096,
            },
            ..SsdConfig::default()
        };
        let flash = FlashArray::new(cfg.geometry, cfg.flash);
        (
            Ftl::new(&cfg),
            flash,
            ThresholdPolicy::new(Nanos::from_micros(2)),
        )
    }

    #[test]
    fn idle_channel_triggers_when_read_exceeds_threshold() {
        let (mut ftl, mut flash, policy) = tiny();
        ftl.write_page(Lpa::new(1), Nanos::ZERO, &mut flash);
        flash.retire_completed(Nanos::from_secs(1));
        // tR = 3 µs > 2 µs threshold: even an idle channel triggers, which is
        // why the paper sets the threshold below the flash read latency.
        let d = policy.should_context_switch(Lpa::new(1), Nanos::from_secs(1), &ftl, &flash);
        assert!(d.trigger);
        assert!(!d.gc_blocked);
        assert_eq!(d.estimated_latency, Nanos::from_micros(3));
    }

    #[test]
    fn high_threshold_suppresses_trigger() {
        let (mut ftl, mut flash, _) = tiny();
        ftl.write_page(Lpa::new(1), Nanos::ZERO, &mut flash);
        flash.retire_completed(Nanos::from_secs(1));
        let policy = ThresholdPolicy::new(Nanos::from_micros(80));
        let d = policy.should_context_switch(Lpa::new(1), Nanos::from_secs(1), &ftl, &flash);
        assert!(!d.trigger);
    }

    #[test]
    fn queued_work_raises_estimate() {
        let (mut ftl, mut flash, policy) = tiny();
        ftl.write_page(Lpa::new(1), Nanos::ZERO, &mut flash);
        let ppa = ftl.translate(Lpa::new(1)).unwrap();
        // Queue a program and an erase on the same channel.
        flash.submit(FlashCommandKind::Program, ppa, Nanos::ZERO);
        flash.submit(FlashCommandKind::Erase, ppa, Nanos::ZERO);
        let d = policy.should_context_switch(Lpa::new(1), Nanos::ZERO, &ftl, &flash);
        assert!(d.trigger);
        // 1 queued program from write_page + 1 program + 1 erase + new read.
        assert!(d.estimated_latency >= Nanos::from_micros(1203));
    }

    #[test]
    fn unmapped_page_uses_plain_read_estimate() {
        let (ftl, flash, policy) = tiny();
        let d = policy.should_context_switch(Lpa::new(42), Nanos::ZERO, &ftl, &flash);
        assert_eq!(d.estimated_latency, Nanos::from_micros(3));
        assert!(!d.gc_blocked);
    }
}
