//! The CXL-SSD controller: request handling, compaction, GC coordination and
//! promotion support.

use crate::hotness::{HotnessPolicy, HotnessTracker};
use crate::stats::{AccessBreakdown, ServedBy, SsdStats};
use crate::trigger::ThresholdPolicy;
use skybyte_cache::{DataCache, DataCacheStats, WriteLog, WriteLogStats};
use skybyte_flash::{FlashArray, FlashStats};
use skybyte_ftl::{Ftl, FtlStats};
use skybyte_types::{CachelineIndex, FastHashMap, Lpa, Nanos, SimConfig};

/// Result of one cacheline access handled by the SSD controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdAccessOutcome {
    /// Time at which the data is ready in the SSD DRAM (reads) or the write
    /// has been durably accepted by the controller.
    pub ready_at: Nanos,
    /// Which structure served the access.
    pub served_by: ServedBy,
    /// Whether the controller answers with the `SkyByte-Delay` NDR opcode
    /// instead of making the host wait.
    pub delay_hint: bool,
    /// With a delay hint: the controller's estimate of when the data will be
    /// ready in SSD DRAM, carried in the `SkyByte-Delay` response so the OS
    /// can schedule the wake-up. The controller has already queued the flash
    /// fill when it answers, so the estimate is the scheduled completion of
    /// that fill (Algorithm 1's queue-counter estimate is only the trigger
    /// heuristic — it deliberately over-counts programs/erases that reads
    /// pre-empt, and waking on it would oversleep).
    pub estimated_ready_at: Nanos,
    /// Device-side latency breakdown (Figure 17 components).
    pub breakdown: AccessBreakdown,
}

/// The device-side half of SkyByte.
///
/// See the crate-level documentation for an example and the paper's Figure 11
/// for the read (R1–R3) and write (W1–W3) paths implemented here.
#[derive(Debug, Clone)]
pub struct SsdController {
    flash: FlashArray,
    ftl: Ftl,
    write_log: Option<WriteLog>,
    data_cache: DataCache,
    hotness: HotnessTracker,
    trigger: ThresholdPolicy,

    device_triggered_ctx_swt: bool,
    prefetch_enable: bool,
    dram_latency: Nanos,
    log_index_latency: Nanos,
    cache_index_latency: Nanos,
    mshr_capacity: usize,
    logical_pages: u64,

    /// Page fetches currently in flight: LPA → time the page lands in DRAM.
    inflight_fills: FastHashMap<Lpa, Nanos>,
    /// Lower bound on the earliest completion in `inflight_fills`
    /// (`Nanos::MAX` when empty). Lets `lazy_tick` skip the retire scan when
    /// no fill can have completed yet; a stale-low bound only costs a no-op
    /// scan, never a missed retirement.
    earliest_fill_done: Nanos,
    /// Time at which the currently running log compaction finishes.
    compaction_active_until: Nanos,
    /// Monotonic version counter used as the write-log payload token.
    write_token: u64,
    stats: SsdStats,
}

impl SsdController {
    /// Builds a controller from the simulator configuration. The write log is
    /// instantiated only when `cfg.write_log_enable` is set (SkyByte-W and
    /// derived variants); otherwise the controller behaves as the Base-CSSD
    /// page-granular design.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SimConfig::validate`]).
    pub fn new(cfg: &SimConfig) -> Self {
        cfg.validate().expect("invalid simulator configuration");
        let ssd = &cfg.ssd;
        let write_log = if cfg.write_log_enable {
            Some(WriteLog::new(
                ssd.dram.write_log_bytes,
                ssd.dram.index_resize_load_factor,
            ))
        } else {
            None
        };
        // When the write log is disabled its DRAM budget goes to the data
        // cache so every variant uses the same total SSD DRAM (§VI-A).
        let cache_bytes = if cfg.write_log_enable {
            ssd.dram.data_cache_bytes
        } else {
            ssd.dram.data_cache_bytes + ssd.dram.write_log_bytes
        };
        let logical_pages =
            (ssd.geometry.total_pages() as f64 * (1.0 - ssd.overprovisioning)) as u64;
        SsdController {
            flash: FlashArray::new(ssd.geometry, ssd.flash),
            ftl: Ftl::new(ssd),
            write_log,
            data_cache: DataCache::with_policies(
                cache_bytes,
                ssd.dram.data_cache_ways,
                cfg.policy.eviction,
                cfg.policy.admission,
            ),
            hotness: HotnessTracker::new(cfg.policy.hotness, cfg.migration.hotness_threshold),
            trigger: ThresholdPolicy::new(cfg.cs_threshold),
            device_triggered_ctx_swt: cfg.device_triggered_ctx_swt,
            prefetch_enable: true,
            dram_latency: ssd.dram.timing.access_latency,
            log_index_latency: ssd.dram.write_log_index_latency,
            cache_index_latency: ssd.dram.data_cache_index_latency,
            mshr_capacity: ssd.dram.mshrs as usize,
            logical_pages,
            inflight_fills: FastHashMap::default(),
            earliest_fill_done: Nanos::MAX,
            compaction_active_until: Nanos::ZERO,
            write_token: 0,
            stats: SsdStats::default(),
        }
    }

    /// Number of logical pages the device exposes over CXL (raw capacity
    /// minus over-provisioning).
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Handles a cacheline read arriving at the controller at `now`
    /// (R1/R2/R3 of Figure 11).
    pub fn handle_read(&mut self, lpa: Lpa, cl: CachelineIndex, now: Nanos) -> SsdAccessOutcome {
        self.stats.reads += 1;
        self.hotness.record_access(lpa);
        self.note_tracked_pages();
        self.lazy_tick(now);

        let index_latency = self.read_index_latency();
        let t_indexed = now + index_latency;

        // R2: the write log holds the newest copy of a logged cacheline.
        if let Some(log) = &mut self.write_log {
            if log.lookup(lpa, cl).is_some() {
                self.stats.read_log_hits += 1;
                return SsdAccessOutcome {
                    ready_at: t_indexed + self.dram_latency,
                    served_by: ServedBy::WriteLog,
                    delay_hint: false,
                    estimated_ready_at: Nanos::ZERO,
                    breakdown: AccessBreakdown {
                        indexing: index_latency,
                        ssd_dram: self.dram_latency,
                        flash: Nanos::ZERO,
                    },
                };
            }
        }

        // R1: data-cache hit.
        if self.data_cache.access(lpa, cl) {
            self.stats.read_cache_hits += 1;
            return SsdAccessOutcome {
                ready_at: t_indexed + self.dram_latency,
                served_by: ServedBy::DataCache,
                delay_hint: false,
                estimated_ready_at: Nanos::ZERO,
                breakdown: AccessBreakdown {
                    indexing: index_latency,
                    ssd_dram: self.dram_latency,
                    flash: Nanos::ZERO,
                },
            };
        }

        // Never-written pages are served as zeroes straight from DRAM.
        if !self.ftl.is_mapped(lpa) {
            self.stats.read_zero_fills += 1;
            self.insert_page_into_cache(lpa, t_indexed);
            return SsdAccessOutcome {
                ready_at: t_indexed + self.dram_latency,
                served_by: ServedBy::ZeroFill,
                delay_hint: false,
                estimated_ready_at: Nanos::ZERO,
                breakdown: AccessBreakdown {
                    indexing: index_latency,
                    ssd_dram: self.dram_latency,
                    flash: Nanos::ZERO,
                },
            };
        }

        // R3: flash fetch required.
        self.stats.read_flash_misses += 1;
        let decision = self
            .trigger
            .should_context_switch(lpa, now, &self.ftl, &self.flash);
        let flash_ready = self.fetch_page(lpa, t_indexed);
        self.insert_page_into_cache(lpa, flash_ready);
        self.data_cache.access(lpa, cl);
        self.maybe_prefetch(lpa, flash_ready);

        let ready_at = flash_ready + self.dram_latency;
        let delay_hint = self.device_triggered_ctx_swt && decision.trigger;
        if delay_hint {
            self.stats.delay_hints += 1;
        }
        SsdAccessOutcome {
            ready_at,
            served_by: ServedBy::Flash,
            delay_hint,
            estimated_ready_at: flash_ready + self.dram_latency,
            breakdown: AccessBreakdown {
                indexing: index_latency,
                ssd_dram: self.dram_latency,
                flash: flash_ready.since(t_indexed),
            },
        }
    }

    /// Handles a cacheline write arriving at the controller at `now`
    /// (W1/W2/W3 of Figure 11 when the write log is enabled; page-granular
    /// read-modify-write otherwise).
    pub fn handle_write(&mut self, lpa: Lpa, cl: CachelineIndex, now: Nanos) -> SsdAccessOutcome {
        self.stats.writes += 1;
        self.hotness.record_access(lpa);
        self.note_tracked_pages();
        self.lazy_tick(now);

        if self.write_log.is_some() {
            return self.handle_logged_write(lpa, cl, now);
        }
        self.handle_page_granular_write(lpa, cl, now)
    }

    /// SkyByte write path: append to the log, update the cached copy in
    /// parallel, never touch flash on the critical path.
    fn handle_logged_write(
        &mut self,
        lpa: Lpa,
        cl: CachelineIndex,
        now: Nanos,
    ) -> SsdAccessOutcome {
        self.write_token += 1;
        let token = self.write_token;
        let log = self.write_log.as_mut().expect("write log enabled");
        let outcome = log.append(lpa, cl, token);
        self.stats.write_log_appends += 1;

        // W2: parallel update of the cached copy (keeps reads through the
        // cache coherent without marking the page dirty — the log owns the
        // dirty data, so evictions stay clean).
        if self.data_cache.access(lpa, cl) {
            self.stats.write_cache_hits += 1;
        }

        if outcome.log_full {
            self.execute_compaction(now);
        }

        SsdAccessOutcome {
            ready_at: now + self.log_index_latency + self.dram_latency,
            served_by: ServedBy::WriteLog,
            delay_hint: false,
            estimated_ready_at: Nanos::ZERO,
            breakdown: AccessBreakdown {
                indexing: self.log_index_latency,
                ssd_dram: self.dram_latency,
                flash: Nanos::ZERO,
            },
        }
    }

    /// Base-CSSD write path: the DRAM cache is page-granular, so a write miss
    /// fetches the page from flash before the cacheline can be merged
    /// (read-modify-write), and dirty pages are written back in full on
    /// eviction.
    fn handle_page_granular_write(
        &mut self,
        lpa: Lpa,
        cl: CachelineIndex,
        now: Nanos,
    ) -> SsdAccessOutcome {
        let index_latency = self.cache_index_latency;
        let t_indexed = now + index_latency;

        if self.data_cache.access(lpa, cl) {
            self.data_cache.mark_dirty(lpa, cl);
            self.stats.write_cache_hits += 1;
            return SsdAccessOutcome {
                ready_at: t_indexed + self.dram_latency,
                served_by: ServedBy::DataCache,
                delay_hint: false,
                estimated_ready_at: Nanos::ZERO,
                breakdown: AccessBreakdown {
                    indexing: index_latency,
                    ssd_dram: self.dram_latency,
                    flash: Nanos::ZERO,
                },
            };
        }

        if !self.ftl.is_mapped(lpa) {
            // First touch of the page: materialise it in the cache.
            self.insert_page_into_cache(lpa, t_indexed);
            if !self.data_cache.mark_dirty(lpa, cl) {
                // The admission policy bypassed the page; the write cannot
                // be buffered, so it goes straight to flash.
                self.write_through(lpa, t_indexed);
            }
            return SsdAccessOutcome {
                ready_at: t_indexed + self.dram_latency,
                served_by: ServedBy::ZeroFill,
                delay_hint: false,
                estimated_ready_at: Nanos::ZERO,
                breakdown: AccessBreakdown {
                    indexing: index_latency,
                    ssd_dram: self.dram_latency,
                    flash: Nanos::ZERO,
                },
            };
        }

        self.stats.write_flash_misses += 1;
        let decision = self
            .trigger
            .should_context_switch(lpa, now, &self.ftl, &self.flash);
        let flash_ready = self.fetch_page(lpa, t_indexed);
        self.insert_page_into_cache(lpa, flash_ready);
        if !self.data_cache.mark_dirty(lpa, cl) {
            self.write_through(lpa, flash_ready);
        }

        let delay_hint = self.device_triggered_ctx_swt && decision.trigger;
        if delay_hint {
            self.stats.delay_hints += 1;
        }
        SsdAccessOutcome {
            ready_at: flash_ready + self.dram_latency,
            served_by: ServedBy::Flash,
            delay_hint,
            estimated_ready_at: flash_ready + self.dram_latency,
            breakdown: AccessBreakdown {
                indexing: index_latency,
                ssd_dram: self.dram_latency,
                flash: flash_ready.since(t_indexed),
            },
        }
    }

    /// Removes a page from the SSD caches because it has been promoted to
    /// host DRAM (§III-C): the data-cache entry is dropped and the write-log
    /// index entries are invalidated.
    pub fn promote_page(&mut self, lpa: Lpa) {
        self.data_cache.remove(lpa);
        if let Some(log) = &mut self.write_log {
            log.invalidate_page(lpa);
        }
        self.hotness.mark_promoted(lpa);
        self.note_tracked_pages();
        self.stats.pages_promoted += 1;
    }

    /// Accepts a page evicted from host DRAM back into the SSD: the page is
    /// written through the FTL and re-inserted clean into the data cache.
    /// Returns the completion time of the flash program.
    pub fn demote_page(&mut self, lpa: Lpa, now: Nanos) -> Nanos {
        self.hotness.mark_demoted(lpa);
        self.note_tracked_pages();
        let outcome = self.ftl.write_page(lpa, now, &mut self.flash);
        self.insert_page_into_cache(lpa, now);
        outcome.completes_at
    }

    /// Next promotion candidate that is still resident in the data cache, if
    /// any (adaptive policy of §III-C).
    pub fn promotion_candidate(&mut self) -> Option<Lpa> {
        let cache = &self.data_cache;
        let got = self.hotness.take_candidate(&mut |lpa| cache.contains(lpa));
        self.note_tracked_pages();
        got
    }

    /// Refreshes the tracker-memory gauge surfaced in
    /// [`SsdStats::tracked_pages`].
    fn note_tracked_pages(&mut self) {
        self.stats.tracked_pages = Some(self.hotness.tracked_pages());
    }

    /// Per-page access count observed by the controller.
    pub fn page_access_count(&self, lpa: Lpa) -> u32 {
        self.hotness.count(lpa)
    }

    /// Whether a garbage-collection campaign is blocking the device at `now`.
    pub fn gc_active(&self, now: Nanos) -> bool {
        self.ftl.gc_active(now)
    }

    /// Whether a log compaction is running at `now`.
    pub fn compaction_active(&self, now: Nanos) -> bool {
        now < self.compaction_active_until
    }

    /// Time at which the most recently scheduled log compaction finishes.
    pub fn compaction_active_until(&self) -> Nanos {
        self.compaction_active_until
    }

    /// Pre-populates the FTL mapping with the given logical pages
    /// (§VI-A preconditioning so GC triggers during measurement).
    pub fn precondition<I: IntoIterator<Item = Lpa>>(&mut self, lpas: I) {
        self.ftl.precondition(lpas);
    }

    /// Evaluates the context-switch trigger policy for a prospective read of
    /// `lpa` without performing the access.
    pub fn evaluate_trigger(&self, lpa: Lpa, now: Nanos) -> crate::trigger::TriggerDecision {
        self.trigger
            .should_context_switch(lpa, now, &self.ftl, &self.flash)
    }

    /// Controller statistics.
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Flash traffic statistics (Figure 18 / Figure 20).
    pub fn flash_stats(&self) -> &FlashStats {
        self.flash.stats()
    }

    /// FTL statistics (write amplification, GC).
    pub fn ftl_stats(&self) -> &FtlStats {
        self.ftl.stats()
    }

    /// Write-log statistics, if the log is enabled.
    pub fn write_log_stats(&self) -> Option<&WriteLogStats> {
        self.write_log.as_ref().map(|l| l.stats())
    }

    /// Memory footprint of the write-log index, if the log is enabled.
    pub fn write_log_index_bytes(&self) -> Option<u64> {
        self.write_log.as_ref().map(|l| l.index_memory_bytes())
    }

    /// Data-cache statistics.
    pub fn data_cache_stats(&self) -> &DataCacheStats {
        self.data_cache.stats()
    }

    /// Aggregate busy time of all flash channels (bandwidth utilisation).
    pub fn flash_busy_time(&self) -> Nanos {
        self.flash.total_busy_time()
    }

    /// Aggregate flash busy time attributable to the window `[0, horizon]`:
    /// service committed to a still-draining backlog beyond `horizon` is
    /// excluded, so the result is bounded by `horizon × channels` and the
    /// derived bandwidth-utilisation ratio needs no clamp.
    pub fn flash_busy_time_within(&self, horizon: Nanos) -> Nanos {
        self.flash.busy_time_within(horizon)
    }

    /// Compaction busy time attributable to the window `[0, horizon]`. The
    /// union-of-windows measure in [`SsdStats::compaction_time`] can extend
    /// past `horizon` when the last campaign is still running; the final
    /// window is contiguous, so the overhang past the horizon is exactly
    /// `compaction_active_until - horizon`.
    pub fn compaction_time_within(&self, horizon: Nanos) -> Nanos {
        let overhang = self.compaction_active_until.saturating_sub(horizon);
        self.stats.compaction_time.saturating_sub(overhang)
    }

    /// Number of entries resident in the write log's active buffer, if the
    /// log is enabled (input to the audit's entry-conservation invariant).
    pub fn write_log_resident_entries(&self) -> Option<u64> {
        self.write_log.as_ref().map(|l| l.resident_entries())
    }

    /// Write-log occupancy as `(entries, capacity)`, if the log is enabled.
    /// A read-only telemetry probe of the active buffer's fill state.
    pub fn write_log_occupancy(&self) -> Option<(u64, u64)> {
        self.write_log
            .as_ref()
            .map(|l| (l.len() as u64, l.capacity() as u64))
    }

    /// Number of on-demand cache fills currently in flight (issued to flash
    /// but not yet landed in the data cache). A read-only telemetry probe.
    pub fn inflight_fill_count(&self) -> usize {
        self.inflight_fills.len()
    }

    /// Per-channel flash queue depths, indexed by channel. A read-only
    /// telemetry probe (see [`FlashArray::channel_depths`]).
    pub fn channel_depths(&self) -> Vec<usize> {
        self.flash.channel_depths()
    }

    /// Flushes all dirty state to flash: in page-granular mode every dirty
    /// page in the data cache is written back; in write-log mode the active
    /// log buffer is compacted. Used at the end of a measurement run so the
    /// write traffic of the two designs is compared on equal footing.
    /// Returns the completion time of the last flush.
    pub fn flush_all(&mut self, now: Nanos) -> Nanos {
        self.lazy_tick(now);
        let mut finish = now;
        if self.write_log.is_some() {
            self.execute_compaction(now);
            finish = finish.max(self.compaction_active_until);
        }
        let dirty: Vec<Lpa> = self
            .data_cache
            .cached_pages()
            .into_iter()
            .filter(|lpa| self.data_cache.dirty_bitmap(*lpa).unwrap_or(0) != 0)
            .collect();
        for lpa in dirty {
            self.data_cache.clean(lpa);
            self.stats.eviction_writebacks += 1;
            let outcome = self.ftl.write_page(lpa, now, &mut self.flash);
            finish = finish.max(outcome.completes_at);
        }
        finish
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn read_index_latency(&self) -> Nanos {
        if self.write_log.is_some() {
            // Parallel lookup of both indexes: the slower one dominates.
            self.log_index_latency.max(self.cache_index_latency)
        } else {
            self.cache_index_latency
        }
    }

    /// Housekeeping performed at the start of every request: retire finished
    /// flash commands and recycle finished compactions / page fills.
    fn lazy_tick(&mut self, now: Nanos) {
        self.flash.retire_completed(now);
        if self.earliest_fill_done <= now {
            self.inflight_fills.retain(|_, ready| *ready > now);
            self.earliest_fill_done = self
                .inflight_fills
                .values()
                .min()
                .copied()
                .unwrap_or(Nanos::MAX);
        }
        if self.compaction_active_until <= now {
            if let Some(log) = &mut self.write_log {
                if log.compaction_in_progress() {
                    log.finish_compaction();
                }
            }
        }
    }

    /// Fetches a mapped page from flash, merging with an in-flight fill of
    /// the same page (controller MSHR behaviour). Returns the time the page
    /// is in SSD DRAM.
    fn fetch_page(&mut self, lpa: Lpa, now: Nanos) -> Nanos {
        if let Some(&ready) = self.inflight_fills.get(&lpa) {
            if ready > now {
                return ready;
            }
        }
        // Respect the controller MSHR capacity: when full, the new fetch
        // waits for the earliest outstanding fill to complete.
        let mut start = now;
        if self.inflight_fills.len() >= self.mshr_capacity {
            if let Some(&earliest) = self.inflight_fills.values().min() {
                start = start.max(earliest);
            }
        }
        let ready = self
            .ftl
            .read_page(lpa, start, &mut self.flash)
            .unwrap_or(start);
        self.inflight_fills.insert(lpa, ready);
        self.earliest_fill_done = self.earliest_fill_done.min(ready);
        ready
    }

    /// Inserts a page into the data cache, handling dirty evictions
    /// (page-granular writeback in Base-CSSD mode) and merging any logged
    /// cachelines so the cached copy is up to date (R3 of Figure 11).
    fn insert_page_into_cache(&mut self, lpa: Lpa, at: Nanos) {
        if let Some(evicted) = self.data_cache.insert(lpa) {
            if evicted.is_dirty() {
                // Page-granular writeback of the whole page.
                self.stats.eviction_writebacks += 1;
                self.ftl.write_page(evicted.lpa, at, &mut self.flash);
            }
        }
        // State-wise merge of logged cachelines into the cached page: the log
        // remains authoritative, so nothing further to track here.
    }

    /// Writes a whole page through to flash because the data cache's
    /// admission policy bypassed it and the dirty cacheline has nowhere else
    /// to live. Never taken under the default admit-all policy.
    fn write_through(&mut self, lpa: Lpa, at: Nanos) {
        self.stats.write_throughs += 1;
        self.ftl.write_page(lpa, at, &mut self.flash);
    }

    /// Simple next-page prefetcher (one of the Base-CSSD optimisations the
    /// paper's baseline incorporates).
    fn maybe_prefetch(&mut self, lpa: Lpa, at: Nanos) {
        if !self.prefetch_enable {
            return;
        }
        let next = Lpa::new(lpa.index() + 1);
        if next.index() >= self.logical_pages
            || self.data_cache.contains(next)
            || self.inflight_fills.contains_key(&next)
            || !self.ftl.is_mapped(next)
        {
            return;
        }
        if let Some(ready) = self.ftl.read_page(next, at, &mut self.flash) {
            self.inflight_fills.insert(next, ready);
            self.earliest_fill_done = self.earliest_fill_done.min(ready);
            self.insert_page_into_cache(next, ready);
            self.stats.prefetches += 1;
        }
    }

    /// Freezes the active log buffer and flushes the coalesced pages to flash
    /// in the background (Figure 13).
    fn execute_compaction(&mut self, now: Nanos) {
        let plan = match self.write_log.as_mut().and_then(|l| l.start_compaction()) {
            Some(p) => p,
            None => return,
        };
        self.stats.compactions += 1;
        self.stats.compaction_pages_flushed += plan.page_count() as u64;
        let mut finish = now;
        for flush in &plan.pages {
            let lpa = flush.lpa;
            let write_start = if self.data_cache.contains(lpa) {
                // L2: the cached copy already holds the merged data.
                self.data_cache.clean(lpa);
                now
            } else if self.ftl.is_mapped(lpa) {
                // L3/L4: load the page into the coalescing buffer and merge.
                self.ftl.read_page(lpa, now, &mut self.flash).unwrap_or(now)
            } else {
                // First write of this page: nothing to merge.
                now
            };
            // L5: write the merged page back, striped by the FTL allocator.
            let outcome = self.ftl.write_page(lpa, write_start, &mut self.flash);
            finish = finish.max(outcome.completes_at);
            if let Some(gc) = outcome.gc {
                finish = finish.max(gc.completes_at);
            }
        }
        // Account only the *non-overlapping extension* of the device's
        // compaction-busy window: overlapping campaigns used to each add
        // their full `finish - now` span, double-counting busy time that
        // `compaction_active_until` already modelled. The result is the
        // measure of the union of all campaign windows when campaigns start
        // in nondecreasing order, and a conservative lower bound otherwise
        // (a campaign whose whole window falls inside a gap *before*
        // `compaction_active_until` — possible because per-core clocks are
        // not globally monotone — contributes nothing rather than
        // double-counting). Either way the total never exceeds the covered
        // wall-clock span, which is what the conservation audit bounds by
        // the execution time.
        let busy_from = now.max(self.compaction_active_until);
        if finish > busy_from {
            self.stats.compaction_time += finish.since(busy_from);
        }
        self.compaction_active_until = self.compaction_active_until.max(finish);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::{SsdGeometry, VariantKind, MIB};

    fn small_cfg(variant: VariantKind) -> SimConfig {
        let mut cfg = SimConfig::default().with_variant(variant);
        cfg.ssd.geometry = SsdGeometry {
            channels: 4,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 32,
            page_size_bytes: 4096,
        };
        cfg.ssd.dram.data_cache_bytes = MIB;
        cfg.ssd.dram.write_log_bytes = 64 * 1024;
        cfg
    }

    #[test]
    fn skybyte_write_never_touches_flash_on_critical_path() {
        let cfg = small_cfg(VariantKind::SkyByteW);
        let mut ssd = SsdController::new(&cfg);
        let out = ssd.handle_write(Lpa::new(1), 0, Nanos::ZERO);
        assert_eq!(out.served_by, ServedBy::WriteLog);
        assert!(out.ready_at < Nanos::from_micros(1));
        assert_eq!(out.breakdown.flash, Nanos::ZERO);
        assert_eq!(ssd.flash_stats().pages_programmed, 0);
        assert_eq!(ssd.stats().write_log_appends, 1);
    }

    #[test]
    fn base_cssd_write_miss_fetches_page_from_flash() {
        let cfg = small_cfg(VariantKind::BaseCssd);
        let mut ssd = SsdController::new(&cfg);
        // Map the page first so the miss needs a real flash read.
        ssd.precondition([Lpa::new(1)]);
        let out = ssd.handle_write(Lpa::new(1), 0, Nanos::ZERO);
        assert_eq!(out.served_by, ServedBy::Flash);
        assert!(out.ready_at >= Nanos::from_micros(3));
        assert_eq!(ssd.stats().write_flash_misses, 1);
        // The second write to the same page hits the now-cached page.
        let out2 = ssd.handle_write(Lpa::new(1), 1, out.ready_at);
        assert_eq!(out2.served_by, ServedBy::DataCache);
    }

    #[test]
    fn read_after_logged_write_hits_the_log() {
        let cfg = small_cfg(VariantKind::SkyByteW);
        let mut ssd = SsdController::new(&cfg);
        ssd.handle_write(Lpa::new(5), 7, Nanos::ZERO);
        let r = ssd.handle_read(Lpa::new(5), 7, Nanos::new(500));
        assert_eq!(r.served_by, ServedBy::WriteLog);
        assert_eq!(ssd.stats().read_log_hits, 1);
        // A different cacheline of the same (unmapped) page is zero-filled.
        let r2 = ssd.handle_read(Lpa::new(5), 8, Nanos::new(1000));
        assert_eq!(r2.served_by, ServedBy::ZeroFill);
    }

    #[test]
    fn read_miss_of_mapped_page_goes_to_flash_and_caches() {
        let cfg = small_cfg(VariantKind::BaseCssd);
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition([Lpa::new(9)]);
        let r = ssd.handle_read(Lpa::new(9), 0, Nanos::ZERO);
        assert_eq!(r.served_by, ServedBy::Flash);
        assert!(r.breakdown.flash >= Nanos::from_micros(3));
        assert!(r.ready_at >= Nanos::from_micros(3));
        // Second read hits the data cache.
        let r2 = ssd.handle_read(Lpa::new(9), 1, r.ready_at);
        assert_eq!(r2.served_by, ServedBy::DataCache);
        assert_eq!(ssd.stats().read_cache_hits, 1);
    }

    #[test]
    fn delay_hint_only_when_enabled_and_slow() {
        // Context switching disabled: no hints even on flash misses.
        let cfg = small_cfg(VariantKind::BaseCssd);
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition([Lpa::new(1)]);
        let out = ssd.handle_read(Lpa::new(1), 0, Nanos::ZERO);
        assert!(!out.delay_hint);
        assert_eq!(ssd.stats().delay_hints, 0);

        // Context switching enabled: tR (3 µs) > threshold (2 µs) → hint.
        let cfg = small_cfg(VariantKind::SkyByteC);
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition([Lpa::new(1)]);
        let out = ssd.handle_read(Lpa::new(1), 0, Nanos::ZERO);
        assert!(out.delay_hint);
        assert!(out.estimated_ready_at >= Nanos::from_micros(3));
        assert_eq!(ssd.stats().delay_hints, 1);

        // SSD-DRAM hits never send hints.
        let out2 = ssd.handle_read(Lpa::new(1), 0, Nanos::from_millis(1));
        assert!(!out2.delay_hint);
    }

    #[test]
    fn compaction_coalesces_and_reduces_flash_writes() {
        let mut cfg = small_cfg(VariantKind::SkyByteW);
        // Tiny log: 8 KiB → 64 entries per buffer.
        cfg.ssd.dram.write_log_bytes = 8 * 1024;
        let mut ssd = SsdController::new(&cfg);
        let mut now = Nanos::ZERO;
        // 256 writes, all to the same 4 pages: heavy coalescing.
        for i in 0..256u64 {
            ssd.handle_write(Lpa::new(i % 4), (i % 64) as u8, now);
            now += Nanos::new(100);
        }
        // Allow background work to be accounted.
        ssd.handle_read(Lpa::new(0), 0, now + Nanos::from_millis(10));
        let flash_writes = ssd.flash_stats().pages_programmed;
        assert!(ssd.stats().compactions >= 1, "log never compacted");
        assert!(
            flash_writes < 256,
            "compaction must coalesce: {flash_writes} programs for 256 writes"
        );
        assert!(ssd.stats().compaction_pages_flushed >= 4);
        assert!(ssd.stats().avg_compaction_time() > Nanos::ZERO);
    }

    #[test]
    fn overlapping_compactions_are_not_double_counted() {
        // Requests reach the controller with per-core clocks, so a second
        // compaction can start at a timestamp *inside* the window the first
        // one already occupies. The busy-time accounting must count the
        // overlap once (the union of the windows), not once per campaign.
        let mut cfg = small_cfg(VariantKind::SkyByteW);
        cfg.ssd.dram.write_log_bytes = 8 * 1024; // 64 entries per buffer
        let mut ssd = SsdController::new(&cfg);
        // Campaign 1: fill the buffer with early-clock writes.
        for i in 0..64u64 {
            ssd.handle_write(Lpa::new(i % 16), (i % 64) as u8, Nanos::new(50 * i));
        }
        assert_eq!(ssd.stats().compactions, 1);
        let first_until = ssd.compaction_active_until();
        assert!(first_until > Nanos::from_micros(50));
        // A late-clock access retires campaign 1's frozen buffer.
        ssd.handle_read(Lpa::new(0), 0, first_until + Nanos::from_millis(10));
        // Campaign 2: an early-clock core fills the buffer again, starting a
        // compaction at a time the first window still covers.
        let overlap_start = Nanos::from_micros(5);
        for i in 0..64u64 {
            ssd.handle_write(Lpa::new(32 + i), 0, overlap_start);
        }
        assert_eq!(ssd.stats().compactions, 2, "need an overlapping campaign");
        // The busy-time union can never exceed the union span bound — with
        // the old per-campaign accounting the overlapping windows summed to
        // more than the covered wall-clock span.
        let span = ssd.compaction_active_until();
        assert!(
            ssd.stats().compaction_time <= span,
            "compaction busy time {} exceeds the union span bound {}",
            ssd.stats().compaction_time,
            span
        );
        assert!(ssd.stats().compaction_time > Nanos::ZERO);
    }

    #[test]
    fn windowed_compaction_time_is_bounded_by_the_horizon() {
        let mut cfg = small_cfg(VariantKind::SkyByteW);
        cfg.ssd.dram.write_log_bytes = 8 * 1024;
        let mut ssd = SsdController::new(&cfg);
        let mut now = Nanos::ZERO;
        for i in 0..128u64 {
            ssd.handle_write(Lpa::new(i % 8), (i % 64) as u8, now);
            now += Nanos::new(50);
        }
        assert!(ssd.stats().compactions >= 1);
        // The last campaign extends past `now`; the windowed view excludes
        // the part beyond the horizon.
        assert!(ssd.compaction_time_within(now) <= now);
        let far = Nanos::from_secs(1);
        assert_eq!(ssd.compaction_time_within(far), ssd.stats().compaction_time);
    }

    #[test]
    fn windowed_flash_busy_time_is_bounded_by_channel_capacity() {
        let cfg = small_cfg(VariantKind::BaseCssd);
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition((0..64).map(Lpa::new));
        let mut now = Nanos::ZERO;
        for i in 0..64u64 {
            let out = ssd.handle_read(Lpa::new(i), 0, now);
            now = now.max(out.ready_at / 2); // keep submissions dense
            now += Nanos::new(200);
        }
        let horizon = now;
        let channels = cfg.ssd.geometry.channels as u64;
        assert!(ssd.flash_busy_time_within(horizon) <= horizon * channels);
        // The unwindowed figure includes the draining backlog.
        assert!(ssd.flash_busy_time() >= ssd.flash_busy_time_within(horizon));
    }

    #[test]
    fn base_cssd_dirty_evictions_write_whole_pages() {
        let mut cfg = small_cfg(VariantKind::BaseCssd);
        // Cache of 4 pages so evictions happen quickly.
        cfg.ssd.dram.data_cache_bytes = 4 * 4096;
        cfg.ssd.dram.write_log_bytes = 4096; // unused (log disabled)
        let mut ssd = SsdController::new(&cfg);
        let mut now = Nanos::ZERO;
        for i in 0..64u64 {
            ssd.handle_write(Lpa::new(i), 0, now);
            now += Nanos::from_micros(1);
        }
        assert!(
            ssd.stats().eviction_writebacks > 0,
            "dirty pages must be written back on eviction"
        );
        assert!(ssd.flash_stats().pages_programmed > 0);
    }

    #[test]
    fn promotion_removes_page_and_demotion_restores_it() {
        let mut cfg = small_cfg(VariantKind::SkyByteFull);
        cfg.migration.hotness_threshold = 2;
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition([Lpa::new(3)]);
        let mut now = Nanos::ZERO;
        for _ in 0..3 {
            let out = ssd.handle_read(Lpa::new(3), 0, now);
            now = out.ready_at + Nanos::new(100);
        }
        let candidate = ssd.promotion_candidate();
        assert_eq!(candidate, Some(Lpa::new(3)));
        ssd.promote_page(Lpa::new(3));
        assert_eq!(ssd.stats().pages_promoted, 1);
        // After promotion the SSD no longer nominates the page.
        assert_eq!(ssd.promotion_candidate(), None);
        // Demotion programs the page back to flash.
        let done = ssd.demote_page(Lpa::new(3), now);
        assert!(done > now);
        assert!(ssd.page_access_count(Lpa::new(3)) == 0);
    }

    #[test]
    fn zero_fill_reads_do_not_touch_flash() {
        let cfg = small_cfg(VariantKind::BaseCssd);
        let mut ssd = SsdController::new(&cfg);
        let out = ssd.handle_read(Lpa::new(1234), 0, Nanos::ZERO);
        assert_eq!(out.served_by, ServedBy::ZeroFill);
        assert_eq!(ssd.flash_stats().pages_read, 0);
        assert_eq!(ssd.stats().read_zero_fills, 1);
    }

    #[test]
    fn inflight_fill_merging_avoids_duplicate_flash_reads() {
        let cfg = small_cfg(VariantKind::BaseCssd);
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition([Lpa::new(7), Lpa::new(8)]);
        let a = ssd.handle_read(Lpa::new(7), 0, Nanos::ZERO);
        let reads_after_first = ssd.flash_stats().pages_read;
        // Second access to the same missing page before the fill completes.
        let b = ssd.handle_read(Lpa::new(7), 1, Nanos::new(100));
        // The page fill is shared; no additional *demand* read is issued for
        // the same page (prefetches may add reads for other pages).
        assert!(b.ready_at <= a.ready_at + ssd_dram(&cfg));
        assert!(ssd.flash_stats().pages_read <= reads_after_first + 1);
    }

    fn ssd_dram(cfg: &SimConfig) -> Nanos {
        cfg.ssd.dram.timing.access_latency
    }

    #[test]
    fn logical_capacity_respects_overprovisioning() {
        let cfg = small_cfg(VariantKind::BaseCssd);
        let ssd = SsdController::new(&cfg);
        let raw = cfg.ssd.geometry.total_pages();
        assert!(ssd.logical_pages() < raw);
        assert!(ssd.logical_pages() > raw * 9 / 10 - 1);
    }

    #[test]
    fn evaluate_trigger_matches_handle_read_decision() {
        let cfg = small_cfg(VariantKind::SkyByteFull);
        let mut ssd = SsdController::new(&cfg);
        ssd.precondition([Lpa::new(11)]);
        let d = ssd.evaluate_trigger(Lpa::new(11), Nanos::ZERO);
        assert!(d.trigger);
        let out = ssd.handle_read(Lpa::new(11), 0, Nanos::ZERO);
        assert!(out.delay_hint);
    }
}
