//! Per-page access tracking for adaptive page migration (§III-C).
//!
//! The SSD controller counts accesses to each logical page. Pages whose count
//! exceeds a threshold become promotion candidates; SkyByte only promotes
//! pages that are resident in the SSD DRAM data cache (the candidate hot
//! pages are there by construction).

use serde::{Deserialize, Serialize};
use skybyte_types::Lpa;
use std::collections::HashMap;

/// Tracks per-page access counts and nominates promotion candidates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotPageTracker {
    threshold: u32,
    counts: HashMap<Lpa, u32>,
    /// Pages that crossed the threshold and have not been taken yet.
    candidates: Vec<Lpa>,
    promoted: HashMap<Lpa, ()>,
}

impl HotPageTracker {
    /// Creates a tracker that nominates pages after `threshold` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "hotness threshold must be at least 1");
        HotPageTracker {
            threshold,
            counts: HashMap::new(),
            candidates: Vec::new(),
            promoted: HashMap::new(),
        }
    }

    /// Records one access to `lpa`. Returns `true` if this access made the
    /// page cross the hotness threshold.
    pub fn record_access(&mut self, lpa: Lpa) -> bool {
        if self.promoted.contains_key(&lpa) {
            return false;
        }
        let count = self.counts.entry(lpa).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            self.candidates.push(lpa);
            true
        } else {
            false
        }
    }

    /// Access count of a page.
    pub fn count(&self, lpa: Lpa) -> u32 {
        self.counts.get(&lpa).copied().unwrap_or(0)
    }

    /// Takes the next promotion candidate, filtered by `eligible` (typically
    /// "is the page still resident in the data cache"). Ineligible candidates
    /// are dropped back to cold state so they can re-qualify later.
    pub fn take_candidate(&mut self, mut eligible: impl FnMut(Lpa) -> bool) -> Option<Lpa> {
        while let Some(lpa) = self.candidates.pop() {
            if eligible(lpa) {
                return Some(lpa);
            }
            // Reset so the page can become a candidate again if it stays hot.
            self.counts.insert(lpa, 0);
        }
        None
    }

    /// Number of pending candidates.
    pub fn pending_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Marks a page as promoted so it is no longer tracked.
    pub fn mark_promoted(&mut self, lpa: Lpa) {
        self.promoted.insert(lpa, ());
        self.counts.remove(&lpa);
        self.candidates.retain(|c| *c != lpa);
    }

    /// Marks a page as demoted back to the SSD so it is tracked again.
    pub fn mark_demoted(&mut self, lpa: Lpa) {
        self.promoted.remove(&lpa);
        self.counts.insert(lpa, 0);
    }

    /// Number of pages currently marked promoted.
    pub fn promoted_count(&self) -> usize {
        self.promoted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosses_threshold_once() {
        let mut t = HotPageTracker::new(3);
        assert!(!t.record_access(Lpa::new(1)));
        assert!(!t.record_access(Lpa::new(1)));
        assert!(t.record_access(Lpa::new(1)));
        // Further accesses do not re-nominate.
        assert!(!t.record_access(Lpa::new(1)));
        assert_eq!(t.count(Lpa::new(1)), 4);
        assert_eq!(t.pending_candidates(), 1);
    }

    #[test]
    fn take_candidate_respects_eligibility() {
        let mut t = HotPageTracker::new(1);
        t.record_access(Lpa::new(1));
        t.record_access(Lpa::new(2));
        // Page 2 is not eligible (e.g. evicted from the data cache).
        let got = t.take_candidate(|lpa| lpa == Lpa::new(1));
        assert_eq!(got, Some(Lpa::new(1)));
        assert_eq!(t.pending_candidates(), 0);
        // Page 2 was reset, not lost: it can re-qualify.
        assert_eq!(t.count(Lpa::new(2)), 0);
        assert!(t.record_access(Lpa::new(2)));
    }

    #[test]
    fn promoted_pages_are_not_tracked() {
        let mut t = HotPageTracker::new(2);
        t.record_access(Lpa::new(5));
        t.mark_promoted(Lpa::new(5));
        assert_eq!(t.promoted_count(), 1);
        assert!(!t.record_access(Lpa::new(5)));
        assert_eq!(t.count(Lpa::new(5)), 0);
        // After demotion the page is tracked again.
        t.mark_demoted(Lpa::new(5));
        assert_eq!(t.promoted_count(), 0);
        assert!(!t.record_access(Lpa::new(5)));
        assert!(t.record_access(Lpa::new(5)));
    }

    #[test]
    fn mark_promoted_clears_pending_candidacy() {
        let mut t = HotPageTracker::new(1);
        t.record_access(Lpa::new(9));
        assert_eq!(t.pending_candidates(), 1);
        t.mark_promoted(Lpa::new(9));
        assert_eq!(t.pending_candidates(), 0);
        assert_eq!(t.take_candidate(|_| true), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        let _ = HotPageTracker::new(0);
    }
}
