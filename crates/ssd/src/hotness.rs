//! Per-page access tracking for adaptive page migration (§III-C).
//!
//! The SSD controller counts accesses to each logical page and nominates
//! promotion candidates; SkyByte only promotes pages that are resident in
//! the SSD DRAM data cache (the candidate hot pages are there by
//! construction). *How* hotness is measured is a pluggable policy:
//!
//! * [`HotPageTracker`] — the paper's design and the default: exact per-page
//!   counters with a fixed nomination threshold. Exactness costs memory —
//!   one counter per distinct page ever touched (the [`tracked_pages`]
//!   gauge in `SsdStats` makes that growth observable). Zero-count entries
//!   are compacted away rather than stored.
//! * [`DecayTracker`] — exponentially decayed frequency: counters are halved
//!   every [`DECAY_PERIOD_ACCESSES`] recorded accesses and entries that
//!   decay to zero are dropped, bounding memory on long traces while still
//!   favouring sustained hotness over one-shot bursts.
//! * [`TopKTracker`] — windowed top-k: pages are counted inside a fixed
//!   window of [`TOPK_WINDOW_ACCESSES`] accesses and only the
//!   [`TOPK_CANDIDATES`] hottest re-referenced pages of each window are
//!   nominated; counts reset between windows, so memory is bounded by the
//!   window size.
//!
//! All three implement [`HotnessPolicy`]; the controller stores the
//! serializable [`HotnessTracker`] dispatch enum, built from
//! [`HotnessPolicyKind`].
//!
//! [`tracked_pages`]: HotnessPolicy::tracked_pages

use serde::{Deserialize, Serialize};
use skybyte_types::policy::HotnessPolicyKind;
use skybyte_types::{FastHashMap, FastHashSet, Lpa};
use std::cmp::Reverse;

use std::fmt;

/// Recorded accesses between two count-halving rounds of [`DecayTracker`].
pub const DECAY_PERIOD_ACCESSES: u32 = 4096;

/// Window length, in recorded accesses, of [`TopKTracker`].
pub const TOPK_WINDOW_ACCESSES: u32 = 1024;

/// Number of candidates [`TopKTracker`] nominates per window.
pub const TOPK_CANDIDATES: usize = 16;

/// The hotness seam of the SSD controller: decides which pages are
/// promotion candidates for adaptive migration.
pub trait HotnessPolicy: fmt::Debug {
    /// Which contender this is.
    fn kind(&self) -> HotnessPolicyKind;

    /// Records one access to `lpa`. Returns `true` if this access made the
    /// page a promotion candidate.
    fn record_access(&mut self, lpa: Lpa) -> bool;

    /// Current hotness count of a page (0 for untracked or promoted pages).
    fn count(&self, lpa: Lpa) -> u32;

    /// Takes the next promotion candidate, filtered by `eligible` (typically
    /// "is the page still resident in the data cache"). Ineligible
    /// candidates are dropped back to cold state so they can re-qualify.
    fn take_candidate(&mut self, eligible: &mut dyn FnMut(Lpa) -> bool) -> Option<Lpa>;

    /// Number of pending candidates.
    fn pending_candidates(&self) -> usize;

    /// Marks a page as promoted so it is no longer tracked.
    fn mark_promoted(&mut self, lpa: Lpa);

    /// Marks a page as demoted back to the SSD so it is tracked again.
    fn mark_demoted(&mut self, lpa: Lpa);

    /// Number of pages currently marked promoted.
    fn promoted_count(&self) -> usize;

    /// Number of pages the tracker currently holds state for (counters,
    /// pending candidates and promoted marks) — the memory-growth gauge
    /// surfaced as `SsdStats::tracked_pages`.
    fn tracked_pages(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Threshold (default)
// ---------------------------------------------------------------------------

/// Exact per-page access counters with a fixed nomination threshold — the
/// paper's controller design and the default hotness policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotPageTracker {
    threshold: u32,
    counts: FastHashMap<Lpa, u32>,
    /// Pages that crossed the threshold and have not been taken yet.
    candidates: Vec<Lpa>,
    promoted: FastHashSet<Lpa>,
}

impl HotPageTracker {
    /// Creates a tracker that nominates pages after `threshold` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "hotness threshold must be at least 1");
        HotPageTracker {
            threshold,
            counts: FastHashMap::default(),
            candidates: Vec::new(),
            promoted: FastHashSet::default(),
        }
    }
}

impl HotnessPolicy for HotPageTracker {
    fn kind(&self) -> HotnessPolicyKind {
        HotnessPolicyKind::Threshold
    }

    fn record_access(&mut self, lpa: Lpa) -> bool {
        if self.promoted.contains(&lpa) {
            return false;
        }
        let count = self.counts.entry(lpa).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            self.candidates.push(lpa);
            true
        } else {
            false
        }
    }

    fn count(&self, lpa: Lpa) -> u32 {
        self.counts.get(&lpa).copied().unwrap_or(0)
    }

    fn take_candidate(&mut self, eligible: &mut dyn FnMut(Lpa) -> bool) -> Option<Lpa> {
        while let Some(lpa) = self.candidates.pop() {
            if eligible(lpa) {
                return Some(lpa);
            }
            // Reset so the page can become a candidate again if it stays
            // hot. A zero count and an absent entry are indistinguishable,
            // so compact the entry away instead of storing the zero.
            self.counts.remove(&lpa);
        }
        None
    }

    fn pending_candidates(&self) -> usize {
        self.candidates.len()
    }

    fn mark_promoted(&mut self, lpa: Lpa) {
        self.promoted.insert(lpa);
        self.counts.remove(&lpa);
        self.candidates.retain(|c| *c != lpa);
    }

    fn mark_demoted(&mut self, lpa: Lpa) {
        self.promoted.remove(&lpa);
        self.counts.remove(&lpa);
    }

    fn promoted_count(&self) -> usize {
        self.promoted.len()
    }

    fn tracked_pages(&self) -> u64 {
        (self.counts.len() + self.candidates.len() + self.promoted.len()) as u64
    }
}

// ---------------------------------------------------------------------------
// Exponential decay
// ---------------------------------------------------------------------------

/// Exponentially decayed frequency counters: every
/// [`DECAY_PERIOD_ACCESSES`] recorded accesses all counts are halved and
/// zeroed entries dropped, so only pages with sustained traffic keep state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecayTracker {
    threshold: u32,
    since_decay: u32,
    counts: FastHashMap<Lpa, u32>,
    candidates: Vec<Lpa>,
    promoted: FastHashSet<Lpa>,
}

impl DecayTracker {
    /// Creates a decaying tracker that nominates pages whose decayed count
    /// reaches `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold > 0, "hotness threshold must be at least 1");
        DecayTracker {
            threshold,
            since_decay: 0,
            counts: FastHashMap::default(),
            candidates: Vec::new(),
            promoted: FastHashSet::default(),
        }
    }

    fn decay(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }
}

impl HotnessPolicy for DecayTracker {
    fn kind(&self) -> HotnessPolicyKind {
        HotnessPolicyKind::Decay
    }

    fn record_access(&mut self, lpa: Lpa) -> bool {
        if self.promoted.contains(&lpa) {
            return false;
        }
        self.since_decay += 1;
        if self.since_decay >= DECAY_PERIOD_ACCESSES {
            self.since_decay = 0;
            self.decay();
        }
        let count = self.counts.entry(lpa).or_insert(0);
        *count += 1;
        // Halving can bring a page back below the threshold, so guard
        // against duplicate nominations explicitly rather than relying on
        // crossing the threshold exactly once.
        if *count >= self.threshold && !self.candidates.contains(&lpa) {
            self.candidates.push(lpa);
            true
        } else {
            false
        }
    }

    fn count(&self, lpa: Lpa) -> u32 {
        self.counts.get(&lpa).copied().unwrap_or(0)
    }

    fn take_candidate(&mut self, eligible: &mut dyn FnMut(Lpa) -> bool) -> Option<Lpa> {
        while let Some(lpa) = self.candidates.pop() {
            if eligible(lpa) {
                return Some(lpa);
            }
            self.counts.remove(&lpa);
        }
        None
    }

    fn pending_candidates(&self) -> usize {
        self.candidates.len()
    }

    fn mark_promoted(&mut self, lpa: Lpa) {
        self.promoted.insert(lpa);
        self.counts.remove(&lpa);
        self.candidates.retain(|c| *c != lpa);
    }

    fn mark_demoted(&mut self, lpa: Lpa) {
        self.promoted.remove(&lpa);
        self.counts.remove(&lpa);
    }

    fn promoted_count(&self) -> usize {
        self.promoted.len()
    }

    fn tracked_pages(&self) -> u64 {
        (self.counts.len() + self.candidates.len() + self.promoted.len()) as u64
    }
}

// ---------------------------------------------------------------------------
// Windowed top-k
// ---------------------------------------------------------------------------

/// Windowed top-k: counts accesses inside a fixed window and nominates the
/// k hottest re-referenced pages when the window closes; counts reset
/// between windows, so memory never exceeds one window's distinct pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopKTracker {
    in_window: u32,
    counts: FastHashMap<Lpa, u32>,
    candidates: Vec<Lpa>,
    promoted: FastHashSet<Lpa>,
}

impl TopKTracker {
    /// Creates an empty windowed top-k tracker.
    pub fn new() -> Self {
        TopKTracker {
            in_window: 0,
            counts: FastHashMap::default(),
            candidates: Vec::new(),
            promoted: FastHashSet::default(),
        }
    }

    fn close_window(&mut self) -> bool {
        let mut hot: Vec<(Lpa, u32)> = self
            .counts
            .drain()
            .filter(|&(lpa, c)| c >= 2 && !self.candidates.contains(&lpa))
            .collect();
        // Deterministic order: hottest first, page index breaking ties.
        hot.sort_unstable_by_key(|&(lpa, c)| (Reverse(c), lpa.index()));
        let before = self.candidates.len();
        self.candidates
            .extend(hot.into_iter().take(TOPK_CANDIDATES).map(|(lpa, _)| lpa));
        self.candidates.len() > before
    }
}

impl Default for TopKTracker {
    fn default() -> Self {
        TopKTracker::new()
    }
}

impl HotnessPolicy for TopKTracker {
    fn kind(&self) -> HotnessPolicyKind {
        HotnessPolicyKind::TopK
    }

    fn record_access(&mut self, lpa: Lpa) -> bool {
        if self.promoted.contains(&lpa) {
            return false;
        }
        *self.counts.entry(lpa).or_insert(0) += 1;
        self.in_window += 1;
        if self.in_window >= TOPK_WINDOW_ACCESSES {
            self.in_window = 0;
            self.close_window()
        } else {
            false
        }
    }

    fn count(&self, lpa: Lpa) -> u32 {
        self.counts.get(&lpa).copied().unwrap_or(0)
    }

    fn take_candidate(&mut self, eligible: &mut dyn FnMut(Lpa) -> bool) -> Option<Lpa> {
        while let Some(lpa) = self.candidates.pop() {
            if eligible(lpa) {
                return Some(lpa);
            }
            // Window counts were already reset; nothing else to clear.
        }
        None
    }

    fn pending_candidates(&self) -> usize {
        self.candidates.len()
    }

    fn mark_promoted(&mut self, lpa: Lpa) {
        self.promoted.insert(lpa);
        self.counts.remove(&lpa);
        self.candidates.retain(|c| *c != lpa);
    }

    fn mark_demoted(&mut self, lpa: Lpa) {
        self.promoted.remove(&lpa);
        self.counts.remove(&lpa);
    }

    fn promoted_count(&self) -> usize {
        self.promoted.len()
    }

    fn tracked_pages(&self) -> u64 {
        (self.counts.len() + self.candidates.len() + self.promoted.len()) as u64
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// The serializable dispatch wrapper the controller stores; delegates every
/// [`HotnessPolicy`] method to the selected contender.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum HotnessTracker {
    /// See [`HotPageTracker`].
    Threshold(HotPageTracker),
    /// See [`DecayTracker`].
    Decay(DecayTracker),
    /// See [`TopKTracker`].
    TopK(TopKTracker),
}

impl HotnessTracker {
    /// Constructs the contender selected by `kind` with the configured
    /// nomination `threshold` (ignored by the windowed top-k policy, which
    /// ranks pages instead of thresholding them).
    ///
    /// # Panics
    ///
    /// Panics if a thresholded contender is given a zero `threshold`.
    pub fn new(kind: HotnessPolicyKind, threshold: u32) -> Self {
        match kind {
            HotnessPolicyKind::Threshold => {
                HotnessTracker::Threshold(HotPageTracker::new(threshold))
            }
            HotnessPolicyKind::Decay => HotnessTracker::Decay(DecayTracker::new(threshold)),
            HotnessPolicyKind::TopK => HotnessTracker::TopK(TopKTracker::new()),
        }
    }

    fn as_dyn(&self) -> &dyn HotnessPolicy {
        match self {
            HotnessTracker::Threshold(t) => t,
            HotnessTracker::Decay(t) => t,
            HotnessTracker::TopK(t) => t,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn HotnessPolicy {
        match self {
            HotnessTracker::Threshold(t) => t,
            HotnessTracker::Decay(t) => t,
            HotnessTracker::TopK(t) => t,
        }
    }
}

impl HotnessPolicy for HotnessTracker {
    fn kind(&self) -> HotnessPolicyKind {
        self.as_dyn().kind()
    }
    fn record_access(&mut self, lpa: Lpa) -> bool {
        self.as_dyn_mut().record_access(lpa)
    }
    fn count(&self, lpa: Lpa) -> u32 {
        self.as_dyn().count(lpa)
    }
    fn take_candidate(&mut self, eligible: &mut dyn FnMut(Lpa) -> bool) -> Option<Lpa> {
        self.as_dyn_mut().take_candidate(eligible)
    }
    fn pending_candidates(&self) -> usize {
        self.as_dyn().pending_candidates()
    }
    fn mark_promoted(&mut self, lpa: Lpa) {
        self.as_dyn_mut().mark_promoted(lpa)
    }
    fn mark_demoted(&mut self, lpa: Lpa) {
        self.as_dyn_mut().mark_demoted(lpa)
    }
    fn promoted_count(&self) -> usize {
        self.as_dyn().promoted_count()
    }
    fn tracked_pages(&self) -> u64 {
        self.as_dyn().tracked_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosses_threshold_once() {
        let mut t = HotPageTracker::new(3);
        assert!(!t.record_access(Lpa::new(1)));
        assert!(!t.record_access(Lpa::new(1)));
        assert!(t.record_access(Lpa::new(1)));
        // Further accesses do not re-nominate.
        assert!(!t.record_access(Lpa::new(1)));
        assert_eq!(t.count(Lpa::new(1)), 4);
        assert_eq!(t.pending_candidates(), 1);
    }

    #[test]
    fn take_candidate_respects_eligibility() {
        let mut t = HotPageTracker::new(1);
        t.record_access(Lpa::new(1));
        t.record_access(Lpa::new(2));
        // Page 2 is not eligible (e.g. evicted from the data cache).
        let got = t.take_candidate(&mut |lpa| lpa == Lpa::new(1));
        assert_eq!(got, Some(Lpa::new(1)));
        assert_eq!(t.pending_candidates(), 0);
        // Page 2 was reset, not lost: it can re-qualify.
        assert_eq!(t.count(Lpa::new(2)), 0);
        assert!(t.record_access(Lpa::new(2)));
    }

    #[test]
    fn promoted_pages_are_not_tracked() {
        let mut t = HotPageTracker::new(2);
        t.record_access(Lpa::new(5));
        t.mark_promoted(Lpa::new(5));
        assert_eq!(t.promoted_count(), 1);
        assert!(!t.record_access(Lpa::new(5)));
        assert_eq!(t.count(Lpa::new(5)), 0);
        // After demotion the page is tracked again.
        t.mark_demoted(Lpa::new(5));
        assert_eq!(t.promoted_count(), 0);
        assert!(!t.record_access(Lpa::new(5)));
        assert!(t.record_access(Lpa::new(5)));
    }

    #[test]
    fn mark_promoted_clears_pending_candidacy() {
        let mut t = HotPageTracker::new(1);
        t.record_access(Lpa::new(9));
        assert_eq!(t.pending_candidates(), 1);
        t.mark_promoted(Lpa::new(9));
        assert_eq!(t.pending_candidates(), 0);
        assert_eq!(t.take_candidate(&mut |_| true), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        let _ = HotPageTracker::new(0);
    }

    #[test]
    fn ineligible_candidates_are_compacted_away() {
        let mut t = HotPageTracker::new(1);
        t.record_access(Lpa::new(7));
        assert_eq!(t.take_candidate(&mut |_| false), None);
        // The reset entry is removed, not stored as an explicit zero …
        assert_eq!(t.tracked_pages(), 0);
        // … which is observationally identical to a zero count.
        assert_eq!(t.count(Lpa::new(7)), 0);
        assert!(t.record_access(Lpa::new(7)));
    }

    #[test]
    fn decay_halves_counts_and_drops_cold_entries() {
        let mut t = DecayTracker::new(1000);
        // One access each to many one-shot pages, then enough traffic to a
        // hot page to trigger a decay round.
        for i in 0..100u64 {
            t.record_access(Lpa::new(i));
        }
        for _ in 0..DECAY_PERIOD_ACCESSES {
            t.record_access(Lpa::new(777));
        }
        // The one-shot pages decayed to zero and were dropped; the hot page
        // survives with a halved count.
        assert_eq!(t.count(Lpa::new(5)), 0);
        assert!(t.count(Lpa::new(777)) > 0);
        assert!(t.tracked_pages() < 100);
    }

    #[test]
    fn decay_renominates_without_duplicates() {
        let mut t = DecayTracker::new(2);
        assert!(!t.record_access(Lpa::new(1)));
        assert!(t.record_access(Lpa::new(1)));
        // Above-threshold accesses do not duplicate the pending candidacy.
        assert!(!t.record_access(Lpa::new(1)));
        assert_eq!(t.pending_candidates(), 1);
    }

    #[test]
    fn topk_nominates_the_hottest_pages_of_a_window() {
        let mut t = TopKTracker::new();
        let mut nominated = false;
        for i in 0..TOPK_WINDOW_ACCESSES {
            // Concentrate traffic on pages 0..4, spread the rest widely.
            let lpa = if i % 2 == 0 {
                Lpa::new((i % 4) as u64)
            } else {
                Lpa::new(1000 + i as u64)
            };
            nominated |= t.record_access(lpa);
        }
        assert!(nominated, "closing the window nominates candidates");
        assert!(t.pending_candidates() <= TOPK_CANDIDATES);
        let got = t.take_candidate(&mut |_| true).expect("candidate");
        assert!(got.index() < 4, "only re-referenced hot pages qualify");
        // Counts reset between windows: memory stays bounded.
        assert_eq!(t.count(Lpa::new(0)), 0);
    }

    #[test]
    fn topk_memory_is_bounded_by_the_window() {
        let mut t = TopKTracker::new();
        for i in 0..10 * TOPK_WINDOW_ACCESSES as u64 {
            t.record_access(Lpa::new(i)); // every page distinct
        }
        assert!(t.tracked_pages() <= TOPK_WINDOW_ACCESSES as u64 + TOPK_CANDIDATES as u64);
    }

    #[test]
    fn dispatch_enum_reports_kind_and_delegates() {
        for kind in HotnessPolicyKind::ALL {
            let mut t = HotnessTracker::new(kind, 2);
            assert_eq!(t.kind(), kind);
            t.record_access(Lpa::new(1));
            t.mark_promoted(Lpa::new(9));
            assert_eq!(t.promoted_count(), 1);
            assert!(t.tracked_pages() >= 1);
            t.mark_demoted(Lpa::new(9));
            assert_eq!(t.promoted_count(), 0);
        }
    }
}
