//! The `.sbt` (SkyByte trace) binary format.
//!
//! An `.sbt` file is a self-describing, versioned container for the
//! per-thread access streams of one workload execution:
//!
//! ```text
//! magic   8 bytes   b"SBTRACE\0"
//! version varint    format version (1, or 2 when a tenant table follows)
//! threads varint    number of thread streams
//! footprint varint  workload footprint in bytes (provenance)
//! seed    varint    generator seed (provenance)
//! source  varint n + n bytes   UTF-8 identity of the producing source
//! tenants varint n + n varints   thread→tenant table (version 2 only;
//!                   n == threads, each id < threads)
//! chunk*            until EOF
//! ```
//!
//! Version 2 differs from version 1 **only** by the tenant table: a header
//! without one serialises byte-identically to version 1, so tenant-agnostic
//! producers keep emitting files older readers accept, and the golden
//! corpus stays bit-stable.
//!
//! Each chunk interleaves one thread's records:
//!
//! ```text
//! thread  varint    stream index (< threads)
//! count   varint    number of records in this chunk (>= 1)
//! bytes   varint    encoded payload length (allows O(1) skipping)
//! payload           count records:
//!     instructions  varint          (timestamp delta)
//!     addr-delta    zigzag varint   vs the previous record of the SAME thread
//!     op            1 byte          0 = read, 1 = write
//!     size          varint          access size in bytes
//! ```
//!
//! Address deltas chain per thread across chunks (wrapping `u64`
//! arithmetic), so hot/cold pointer-chasing streams stay compact while a
//! reader that filters a single thread can skip foreign chunks without
//! decoding them. Both [`TraceWriter`] and the readers stream with O(1)
//! memory: the writer buffers at most one chunk, the readers at most one
//! record.

use crate::error::TraceError;
use crate::record::TraceRecord;
use crate::varint;
use skybyte_types::AccessKind;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SBTRACE\0";

/// The base format version (no tenant table). Headers without a
/// [`TraceHeader::tenant_of_thread`] table are always written at this
/// version so tenant-agnostic files stay byte-identical to older releases.
pub const FORMAT_VERSION: u32 = 1;

/// The tenant-aware format version: identical to [`FORMAT_VERSION`] plus a
/// thread→tenant table at the end of the header. Written only when the
/// header carries a table.
pub const TENANT_FORMAT_VERSION: u32 = 2;

/// Records buffered per chunk by the writer before flushing.
const CHUNK_RECORDS: u64 = 512;

/// Maximum stored length of the header's source-identity string, in bytes.
/// The writer truncates longer identities (compositor identities compound
/// recursively and can grow without bound); the reader rejects anything
/// larger as corrupt.
pub const MAX_SOURCE_IDENTITY_BYTES: usize = 4096;

/// Truncates `s` to at most [`MAX_SOURCE_IDENTITY_BYTES`] on a UTF-8
/// boundary.
fn clip_identity(s: &str) -> &str {
    if s.len() <= MAX_SOURCE_IDENTITY_BYTES {
        return s;
    }
    let mut end = MAX_SOURCE_IDENTITY_BYTES;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// The self-describing provenance header of an `.sbt` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Number of per-thread streams in the file.
    pub threads: u32,
    /// Footprint of the traced workload in bytes (provenance; compositors
    /// propagate the maximum of their inputs).
    pub footprint_bytes: u64,
    /// Seed of the generator that produced the trace (provenance).
    pub seed: u64,
    /// Free-form identity of the producing source.
    pub source: String,
    /// Optional thread→tenant table (`table[thread] == tenant id`). `None`
    /// serialises as version 1, byte-identical to tenant-unaware files;
    /// `Some` bumps the file to [`TENANT_FORMAT_VERSION`]. When present the
    /// table must have exactly [`threads`](Self::threads) entries, each
    /// `< threads` (tenant ids are dense, at most one per thread).
    pub tenant_of_thread: Option<Vec<u32>>,
}

impl TraceHeader {
    /// Serialises the header. Source identities longer than
    /// [`MAX_SOURCE_IDENTITY_BYTES`] are truncated so the file stays
    /// readable (the reader rejects longer ones as corrupt).
    fn write_to<W: Write>(&self, out: &mut W) -> Result<(), TraceError> {
        let source = clip_identity(&self.source);
        let version = if self.tenant_of_thread.is_some() {
            TENANT_FORMAT_VERSION
        } else {
            FORMAT_VERSION
        };
        out.write_all(&MAGIC)?;
        varint::write_u64(out, version as u64)?;
        varint::write_u64(out, self.threads as u64)?;
        varint::write_u64(out, self.footprint_bytes)?;
        varint::write_u64(out, self.seed)?;
        varint::write_u64(out, source.len() as u64)?;
        out.write_all(source.as_bytes())?;
        if let Some(table) = &self.tenant_of_thread {
            if table.len() != self.threads as usize {
                return Err(TraceError::Corrupt(
                    "tenant table length does not match thread count",
                ));
            }
            varint::write_u64(out, table.len() as u64)?;
            for &tenant in table {
                if tenant >= self.threads {
                    return Err(TraceError::Corrupt("tenant id out of range"));
                }
                varint::write_u64(out, tenant as u64)?;
            }
        }
        Ok(())
    }

    /// Parses the header from the start of a stream.
    fn read_from<R: Read>(input: &mut R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated {
                    context: "file shorter than the magic",
                }
            } else {
                TraceError::Io(e)
            }
        })?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = varint::read_u64(input)? as u32;
        if version != FORMAT_VERSION && version != TENANT_FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let threads = varint::read_u64(input)?;
        if threads == 0 || threads > u32::MAX as u64 {
            return Err(TraceError::Corrupt("thread count out of range"));
        }
        let footprint_bytes = varint::read_u64(input)?;
        let seed = varint::read_u64(input)?;
        let name_len = varint::read_u64(input)?;
        if name_len > MAX_SOURCE_IDENTITY_BYTES as u64 {
            return Err(TraceError::Corrupt("source identity too long"));
        }
        let mut name = vec![0u8; name_len as usize];
        input.read_exact(&mut name).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated {
                    context: "header ended mid source identity",
                }
            } else {
                TraceError::Io(e)
            }
        })?;
        let source = String::from_utf8(name)
            .map_err(|_| TraceError::Corrupt("source identity is not UTF-8"))?;
        let tenant_of_thread = if version >= TENANT_FORMAT_VERSION {
            let len = varint::read_u64(input)?;
            if len != threads {
                return Err(TraceError::Corrupt(
                    "tenant table length does not match thread count",
                ));
            }
            let mut table = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let tenant = varint::read_u64(input)?;
                if tenant >= threads {
                    return Err(TraceError::Corrupt("tenant id out of range"));
                }
                table.push(tenant as u32);
            }
            Some(table)
        } else {
            None
        };
        Ok(TraceHeader {
            threads: threads as u32,
            footprint_bytes,
            seed,
            source,
            tenant_of_thread,
        })
    }
}

/// Streaming `.sbt` writer with O(1) memory (at most one buffered chunk).
///
/// Records are appended with [`push`](Self::push) in any thread interleaving;
/// [`finish`](Self::finish) flushes the trailing chunk. Dropping the writer
/// without finishing loses the buffered tail.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    threads: u32,
    /// Previous absolute address per thread (delta-chain state).
    last_addr: Vec<u64>,
    /// Thread the buffered chunk belongs to.
    chunk_thread: u32,
    /// Encoded records of the buffered chunk.
    chunk: Vec<u8>,
    chunk_count: u64,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `out`, writing the header immediately.
    pub fn new(mut out: W, header: &TraceHeader) -> Result<Self, TraceError> {
        header.write_to(&mut out)?;
        Ok(TraceWriter {
            out,
            threads: header.threads,
            last_addr: vec![0; header.threads as usize],
            chunk_thread: 0,
            chunk: Vec::new(),
            chunk_count: 0,
            records: 0,
        })
    }

    /// Appends one record to `thread`'s stream.
    pub fn push(&mut self, thread: u32, record: &TraceRecord) -> Result<(), TraceError> {
        if thread >= self.threads {
            return Err(TraceError::ThreadOutOfRange {
                threads: self.threads,
                requested: thread,
            });
        }
        if self.chunk_count > 0
            && (thread != self.chunk_thread || self.chunk_count >= CHUNK_RECORDS)
        {
            self.flush_chunk()?;
        }
        self.chunk_thread = thread;
        let prev = &mut self.last_addr[thread as usize];
        varint::write_u64(&mut self.chunk, record.instructions)?;
        let delta = varint::address_delta(*prev, record.addr());
        varint::write_u64(&mut self.chunk, varint::zigzag(delta))?;
        *prev = record.addr();
        self.chunk.push(record.access.kind.is_write() as u8);
        varint::write_u64(&mut self.chunk, record.size_bytes as u64)?;
        self.chunk_count += 1;
        self.records += 1;
        Ok(())
    }

    /// Total records pushed so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.chunk_count == 0 {
            return Ok(());
        }
        varint::write_u64(&mut self.out, self.chunk_thread as u64)?;
        varint::write_u64(&mut self.out, self.chunk_count)?;
        varint::write_u64(&mut self.out, self.chunk.len() as u64)?;
        self.out.write_all(&self.chunk)?;
        self.chunk.clear();
        self.chunk_count = 0;
        Ok(())
    }

    /// Flushes the trailing chunk and the underlying writer, returning it.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush_chunk()?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl TraceWriter<BufWriter<std::fs::File>> {
    /// Creates (truncating) an `.sbt` file at `path`.
    pub fn create(path: &Path, header: &TraceHeader) -> Result<Self, TraceError> {
        let file = std::fs::File::create(path)?;
        Self::new(BufWriter::new(file), header)
    }
}

/// One decoded chunk header.
#[derive(Debug, Clone, Copy)]
struct ChunkHeader {
    thread: u32,
    count: u64,
    bytes: u64,
}

/// Shared low-level decoding over any byte stream.
#[derive(Debug)]
struct Decoder<R: Read> {
    input: R,
    threads: u32,
}

impl<R: Read> Decoder<R> {
    /// Reads the next chunk header, or `None` on clean EOF. EOF is clean only
    /// at a chunk boundary.
    fn next_chunk(&mut self) -> Result<Option<ChunkHeader>, TraceError> {
        // Probe one byte so EOF at a boundary is distinguishable from
        // truncation inside a varint.
        let mut first = [0u8; 1];
        match self.input.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        let thread = varint::read_u64(&mut (&first[..]).chain(&mut self.input))?;
        if thread >= self.threads as u64 {
            return Err(TraceError::Corrupt("chunk thread index out of range"));
        }
        let count = varint::read_u64(&mut self.input)?;
        if count == 0 {
            return Err(TraceError::Corrupt("empty chunk"));
        }
        let bytes = varint::read_u64(&mut self.input)?;
        Ok(Some(ChunkHeader {
            thread: thread as u32,
            count,
            bytes,
        }))
    }

    /// Decodes one record, updating the per-thread delta-chain state.
    fn read_record(&mut self, last_addr: &mut u64) -> Result<TraceRecord, TraceError> {
        let instructions = varint::read_u64(&mut self.input)?;
        let delta = varint::unzigzag(varint::read_u64(&mut self.input)?);
        let addr = varint::apply_delta(*last_addr, delta);
        *last_addr = addr;
        let mut op = [0u8; 1];
        self.input.read_exact(&mut op).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated {
                    context: "record ended before the op byte",
                }
            } else {
                TraceError::Io(e)
            }
        })?;
        let kind = match op[0] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err(TraceError::Corrupt("unknown op byte")),
        };
        let size = varint::read_u64(&mut self.input)?;
        if size > u32::MAX as u64 {
            return Err(TraceError::Corrupt("access size overflows u32"));
        }
        Ok(TraceRecord::new(instructions, addr, kind, size as u32))
    }

    /// Skips `bytes` of payload without decoding.
    fn skip(&mut self, bytes: u64) -> Result<(), TraceError> {
        let copied = std::io::copy(&mut (&mut self.input).take(bytes), &mut std::io::sink())?;
        if copied != bytes {
            return Err(TraceError::Truncated {
                context: "chunk payload shorter than its declared length",
            });
        }
        Ok(())
    }
}

/// Streaming reader over **all** thread streams of an `.sbt` file, yielding
/// `(thread, record)` pairs in file order. Used by the `stat` pass and the
/// compositor CLI.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    decoder: Decoder<R>,
    header: TraceHeader,
    last_addr: Vec<u64>,
    /// `(thread, records remaining)` of the chunk being decoded.
    current: Option<(u32, u64)>,
    records_read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Parses the header and prepares to stream records.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let header = TraceHeader::read_from(&mut input)?;
        let threads = header.threads;
        Ok(TraceReader {
            decoder: Decoder { input, threads },
            last_addr: vec![0; threads as usize],
            header,
            current: None,
            records_read: 0,
        })
    }

    /// The file's provenance header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// The next `(thread, record)` pair, or `None` at clean EOF.
    #[allow(clippy::should_implement_trait)] // fallible streaming next
    pub fn next(&mut self) -> Result<Option<(u32, TraceRecord)>, TraceError> {
        loop {
            if let Some((thread, remaining)) = self.current {
                if remaining == 0 {
                    self.current = None;
                    continue;
                }
                let record = self
                    .decoder
                    .read_record(&mut self.last_addr[thread as usize])?;
                self.current = Some((thread, remaining - 1));
                self.records_read += 1;
                return Ok(Some((thread, record)));
            }
            match self.decoder.next_chunk()? {
                Some(chunk) => self.current = Some((chunk.thread, chunk.count)),
                None => return Ok(None),
            }
        }
    }
}

impl TraceReader<BufReader<std::fs::File>> {
    /// Opens an `.sbt` file for sequential reading.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Self::new(BufReader::new(file))
    }
}

/// Streaming reader filtered to **one** thread stream; chunks of other
/// threads are skipped without decoding (their lengths are in the chunk
/// headers). This is what per-thread replay uses — one cursor per thread,
/// each with its own file handle, O(1) memory each.
#[derive(Debug)]
pub struct ThreadReader<R: Read> {
    decoder: Decoder<R>,
    thread: u32,
    last_addr: u64,
    /// Records remaining in the current chunk of *this* thread.
    remaining: u64,
}

impl<R: Read> ThreadReader<R> {
    /// Wraps a fresh stream (header not yet consumed), filtering `thread`.
    pub fn new(mut input: R, thread: u32) -> Result<Self, TraceError> {
        let header = TraceHeader::read_from(&mut input)?;
        if thread >= header.threads {
            return Err(TraceError::ThreadOutOfRange {
                threads: header.threads,
                requested: thread,
            });
        }
        Ok(ThreadReader {
            decoder: Decoder {
                input,
                threads: header.threads,
            },
            thread,
            last_addr: 0,
            remaining: 0,
        })
    }

    /// The next record of this thread's stream, or `None` at clean EOF.
    #[allow(clippy::should_implement_trait)] // fallible streaming next
    pub fn next(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        loop {
            if self.remaining > 0 {
                self.remaining -= 1;
                return Ok(Some(self.decoder.read_record(&mut self.last_addr)?));
            }
            match self.decoder.next_chunk()? {
                Some(chunk) if chunk.thread == self.thread => self.remaining = chunk.count,
                Some(chunk) => self.decoder.skip(chunk.bytes)?,
                None => return Ok(None),
            }
        }
    }
}

impl ThreadReader<BufReader<std::fs::File>> {
    /// Opens `path` with an independent file handle filtered to `thread`.
    pub fn open(path: &Path, thread: u32) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Self::new(BufReader::new(file), thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn header(threads: u32) -> TraceHeader {
        TraceHeader {
            threads,
            footprint_bytes: 8 << 20,
            seed: 42,
            source: "unit-test".to_string(),
            tenant_of_thread: None,
        }
    }

    fn encode(threads: u32, records: &[(u32, TraceRecord)]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &header(threads)).unwrap();
        for (t, r) in records {
            w.push(*t, r).unwrap();
        }
        w.finish().unwrap()
    }

    fn decode_all(bytes: &[u8]) -> Vec<(u32, TraceRecord)> {
        let mut r = TraceReader::new(bytes).unwrap();
        let mut out = Vec::new();
        while let Some(pair) = r.next().unwrap() {
            out.push(pair);
        }
        out
    }

    #[test]
    fn header_round_trips() {
        let bytes = encode(3, &[]);
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header(), &header(3));
    }

    #[test]
    fn records_round_trip_across_threads_and_chunks() {
        let mut records = Vec::new();
        // Interleave threads so chunk switching is exercised, with more
        // records than one chunk holds.
        for i in 0..2_000u64 {
            let t = (i % 3) as u32;
            let r = if i % 4 == 0 {
                TraceRecord::write(i, i * 4096 + t as u64 * 64)
            } else {
                TraceRecord::read(i, (2_000 - i) * 64)
            };
            records.push((t, r));
        }
        let bytes = encode(3, &records);
        assert_eq!(decode_all(&bytes), records);
    }

    #[test]
    fn thread_reader_filters_and_skips() {
        let records: Vec<(u32, TraceRecord)> = (0..600u64)
            .map(|i| ((i % 2) as u32, TraceRecord::read(i, i * 64)))
            .collect();
        let bytes = encode(2, &records);
        for t in 0..2 {
            let mut r = ThreadReader::new(bytes.as_slice(), t).unwrap();
            let mut got = Vec::new();
            while let Some(rec) = r.next().unwrap() {
                got.push(rec);
            }
            let want: Vec<TraceRecord> = records
                .iter()
                .filter(|(rt, _)| *rt == t)
                .map(|(_, r)| *r)
                .collect();
            assert_eq!(got, want, "thread {t}");
        }
        assert!(matches!(
            ThreadReader::new(bytes.as_slice(), 2),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
    }

    #[test]
    fn overlong_source_identities_are_clipped_to_stay_readable() {
        // Compositor identities compound recursively; the writer must clip
        // them so its own output never trips the reader's corruption cap.
        let huge = TraceHeader {
            threads: 1,
            footprint_bytes: 1,
            seed: 0,
            source: "é".repeat(3 * MAX_SOURCE_IDENTITY_BYTES),
            tenant_of_thread: None,
        };
        let mut w = TraceWriter::new(Vec::new(), &huge).unwrap();
        w.push(0, &TraceRecord::read(1, 64)).unwrap();
        let bytes = w.finish().unwrap();
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(r.header().source.len() <= MAX_SOURCE_IDENTITY_BYTES);
        assert!(r.header().source.starts_with('é'));
    }

    #[test]
    fn tenantless_headers_stay_version_1() {
        // The whole compatibility story: a header without a tenant table
        // must serialise exactly as the previous release did, so the golden
        // corpus verifies without re-pinning.
        let bytes = encode(2, &[]);
        assert_eq!(bytes[MAGIC.len()], FORMAT_VERSION as u8);
        let r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header().tenant_of_thread, None);
    }

    #[test]
    fn tenant_tables_bump_the_version_and_round_trip() {
        let mut h = header(4);
        h.tenant_of_thread = Some(vec![0, 0, 1, 1]);
        let mut w = TraceWriter::new(Vec::new(), &h).unwrap();
        w.push(3, &TraceRecord::read(5, 640)).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[MAGIC.len()], TENANT_FORMAT_VERSION as u8);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header(), &h);
        assert_eq!(r.next().unwrap(), Some((3, TraceRecord::read(5, 640))));
        // The filtered reader parses the extended header too.
        let mut t = ThreadReader::new(bytes.as_slice(), 3).unwrap();
        assert_eq!(t.next().unwrap(), Some(TraceRecord::read(5, 640)));
    }

    #[test]
    fn malformed_tenant_tables_are_typed_errors() {
        // Writer side: a table that disagrees with the thread count or
        // names an out-of-range tenant never reaches disk.
        let mut short = header(3);
        short.tenant_of_thread = Some(vec![0]);
        assert!(matches!(
            TraceWriter::new(Vec::new(), &short),
            Err(TraceError::Corrupt(_))
        ));
        let mut wild = header(2);
        wild.tenant_of_thread = Some(vec![0, 7]);
        assert!(matches!(
            TraceWriter::new(Vec::new(), &wild),
            Err(TraceError::Corrupt(_))
        ));
        // Reader side: a version-2 header whose table lies about its length
        // or tenant ids is corrupt, not a panic.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        varint::write_u64(&mut bytes, TENANT_FORMAT_VERSION as u64).unwrap();
        varint::write_u64(&mut bytes, 2).unwrap(); // threads
        varint::write_u64(&mut bytes, 1).unwrap(); // footprint
        varint::write_u64(&mut bytes, 0).unwrap(); // seed
        varint::write_u64(&mut bytes, 0).unwrap(); // empty source
        let mut bad_len = bytes.clone();
        varint::write_u64(&mut bad_len, 1).unwrap();
        varint::write_u64(&mut bad_len, 0).unwrap();
        assert!(matches!(
            TraceReader::new(bad_len.as_slice()),
            Err(TraceError::Corrupt(
                "tenant table length does not match thread count"
            ))
        ));
        let mut bad_id = bytes.clone();
        varint::write_u64(&mut bad_id, 2).unwrap();
        varint::write_u64(&mut bad_id, 0).unwrap();
        varint::write_u64(&mut bad_id, 9).unwrap();
        assert!(matches!(
            TraceReader::new(bad_id.as_slice()),
            Err(TraceError::Corrupt("tenant id out of range"))
        ));
        // And a table cut mid-varint is a truncation, never a panic.
        varint::write_u64(&mut bytes, 2).unwrap();
        varint::write_u64(&mut bytes, 0).unwrap();
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn writer_rejects_out_of_range_threads() {
        let mut w = TraceWriter::new(Vec::new(), &header(2)).unwrap();
        assert!(matches!(
            w.push(2, &TraceRecord::read(0, 0)),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        assert!(matches!(
            TraceReader::new(&b"NOTATRACE-------"[..]),
            Err(TraceError::BadMagic)
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        varint::write_u64(&mut bytes, 99).unwrap();
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error_never_a_panic() {
        let records: Vec<(u32, TraceRecord)> = (0..40u64)
            .map(|i| ((i % 2) as u32, TraceRecord::write(i, u64::MAX - i * 7)))
            .collect();
        let bytes = encode(2, &records);
        for cut in 0..bytes.len() {
            let mut r = match TraceReader::new(&bytes[..cut]) {
                Ok(r) => r,
                Err(
                    TraceError::Truncated { .. } | TraceError::Corrupt(_) | TraceError::BadMagic,
                ) => continue,
                Err(e) => panic!("unexpected header error at cut {cut}: {e}"),
            };
            loop {
                match r.next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break, // truncation fell on a chunk boundary
                    Err(TraceError::Truncated { .. } | TraceError::Corrupt(_)) => break,
                    Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn arbitrary_streams_round_trip(
            raw in proptest::collection::vec(
                (0u32..4, any::<u64>(), any::<u64>(), any::<bool>(), 0u32..(1 << 20)),
                0..300,
            )
        ) {
            // Arbitrary record streams — including u64-extreme addresses
            // (wrapping deltas) and zero-size ops — encode and decode
            // identically.
            let records: Vec<(u32, TraceRecord)> = raw
                .into_iter()
                .map(|(t, instructions, addr, write, size)| {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    (t, TraceRecord::new(instructions, addr, kind, size))
                })
                .collect();
            let bytes = encode(4, &records);
            prop_assert_eq!(decode_all(&bytes), records);
        }

        #[test]
        fn tenant_tables_round_trip_for_arbitrary_partitions(
            has_table in any::<bool>(),
            partition in proptest::collection::vec(0u32..6, 6..7),
            raw in proptest::collection::vec((0u32..6, any::<u64>(), any::<bool>()), 0..80),
        ) {
            // Any thread→tenant partition (or its absence) survives the
            // header round trip, and absence keeps the file at version 1.
            let table = has_table.then_some(partition);
            let mut h = header(6);
            h.tenant_of_thread = table.clone();
            let mut w = TraceWriter::new(Vec::new(), &h).unwrap();
            for (t, addr, write) in raw {
                let kind = if write { AccessKind::Write } else { AccessKind::Read };
                w.push(t, &TraceRecord::new(0, addr, kind, 64)).unwrap();
            }
            let bytes = w.finish().unwrap();
            let expected_version = if table.is_some() {
                TENANT_FORMAT_VERSION
            } else {
                FORMAT_VERSION
            };
            prop_assert_eq!(bytes[MAGIC.len()] as u32, expected_version);
            let r = TraceReader::new(bytes.as_slice()).unwrap();
            prop_assert_eq!(&r.header().tenant_of_thread, &table);
        }

        #[test]
        fn truncated_arbitrary_streams_never_panic(
            raw in proptest::collection::vec((0u32..3, any::<u64>(), any::<bool>()), 1..60),
            cut_permille in 0u32..1000,
        ) {
            let records: Vec<(u32, TraceRecord)> = raw
                .into_iter()
                .map(|(t, addr, write)| {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    (t, TraceRecord::new(0, addr, kind, 0))
                })
                .collect();
            let bytes = encode(3, &records);
            let cut = (bytes.len() as u64 * cut_permille as u64 / 1000) as usize;
            if let Ok(mut r) = TraceReader::new(&bytes[..cut]) {
                while let Ok(Some(_)) = r.next() {}
            }
        }
    }
}
