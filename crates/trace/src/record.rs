//! The in-memory trace record.

use skybyte_types::{AccessKind, MemAccess, VirtAddr, CACHELINE_SIZE};

/// One replayable event of a thread's access stream: a compute gap followed
/// by one off-chip memory access of `size_bytes` bytes.
///
/// On disk (see [`crate::format`]) the record is delta-encoded as
/// `(timestamp-delta, address-delta, op, size)`; in memory the address is
/// absolute. The compute gap is measured in instructions — the
/// timestamp-delta of the instruction-driven simulator — so a recorded
/// synthetic trace replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Instructions executed before the access (the timestamp delta).
    pub instructions: u64,
    /// The access itself: absolute virtual address plus read/write kind.
    pub access: MemAccess,
    /// Bytes touched by the access; one cacheline for CPU-originated traces.
    pub size_bytes: u32,
}

impl TraceRecord {
    /// A single-cacheline read after `instructions` instructions.
    pub fn read(instructions: u64, addr: u64) -> Self {
        Self::new(instructions, addr, AccessKind::Read, CACHELINE_SIZE as u32)
    }

    /// A single-cacheline write after `instructions` instructions.
    pub fn write(instructions: u64, addr: u64) -> Self {
        Self::new(instructions, addr, AccessKind::Write, CACHELINE_SIZE as u32)
    }

    /// A fully specified record.
    pub fn new(instructions: u64, addr: u64, kind: AccessKind, size_bytes: u32) -> Self {
        TraceRecord {
            instructions,
            access: MemAccess::new(VirtAddr::new(addr), kind),
            size_bytes,
        }
    }

    /// The absolute address as a raw integer.
    pub fn addr(&self) -> u64 {
        self.access.addr.as_u64()
    }

    /// Returns a copy with the address shifted by `offset` bytes (wrapping).
    pub fn shifted(mut self, offset: u64) -> Self {
        self.access.addr = VirtAddr::new(self.addr().wrapping_add(offset));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let r = TraceRecord::read(12, 0x1000);
        assert_eq!(r.instructions, 12);
        assert_eq!(r.addr(), 0x1000);
        assert!(r.access.kind.is_read());
        assert_eq!(r.size_bytes, 64);
        let w = TraceRecord::write(0, 64);
        assert!(w.access.kind.is_write());
    }

    #[test]
    fn shift_wraps() {
        let r = TraceRecord::read(1, u64::MAX).shifted(2);
        assert_eq!(r.addr(), 1);
        assert_eq!(TraceRecord::read(1, 0x40).shifted(0x40).addr(), 0x80);
    }
}
