//! `skybyte-trace`: record, replay and compose access traces.
//!
//! The SkyByte artifact replays PIN instruction traces of real applications;
//! this crate is the reproduction's equivalent ingestion layer. It defines
//!
//! * the **`.sbt` binary trace format** ([`format`]): a compact, versioned,
//!   self-describing container — a provenance header followed by per-thread
//!   streams of varint + zigzag delta-encoded `(timestamp-delta,
//!   address-delta, op, size)` records,
//! * **streaming I/O** with O(1) memory: [`TraceWriter`], the all-stream
//!   [`TraceReader`], the single-stream [`ThreadReader`], and a
//!   [`TraceStats`] pass whose footprint / write-ratio / page-coverage
//!   read-outs are directly comparable to the paper's Table I and
//!   Figures 5–6,
//! * the [`TraceSource`] trait unifying live generators and replayed files,
//!   with a [`Record`] adapter that tees any source to disk, and
//! * **compositors** ([`Mix`], [`Concat`], [`LoopN`], [`Shift`], and the
//!   thread-stacking [`Tenants`]) that build multi-tenant scenarios out of
//!   existing traces; every source reports its thread → tenant partition
//!   through [`TraceSource::tenant_map`].
//!
//! Everything is deterministic, so a recorded trace replayed through the
//! simulator produces bit-identical results to the live run that recorded
//! it (`tests/trace_replay.rs` at the workspace root locks this).
//!
//! # Example
//!
//! ```
//! use skybyte_trace::{TraceHeader, TraceReader, TraceRecord, TraceWriter};
//!
//! let header = TraceHeader {
//!     threads: 1,
//!     footprint_bytes: 1 << 20,
//!     seed: 7,
//!     source: "doc-example".into(),
//!     tenant_of_thread: None,
//! };
//! let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
//! writer.push(0, &TraceRecord::read(12, 0x4000)).unwrap();
//! writer.push(0, &TraceRecord::write(3, 0x4040)).unwrap();
//! let bytes = writer.finish().unwrap();
//!
//! let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
//! assert_eq!(reader.header().source, "doc-example");
//! let (thread, first) = reader.next().unwrap().unwrap();
//! assert_eq!((thread, first.addr()), (0, 0x4000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod error;
pub mod format;
pub mod record;
pub mod source;
pub mod stats;
mod varint;

pub use compose::{BoxedSource, Concat, LoopN, Mix, Shift, Tenants};
pub use error::TraceError;
pub use format::{
    ThreadReader, TraceHeader, TraceReader, TraceWriter, FORMAT_VERSION, MAGIC,
    MAX_SOURCE_IDENTITY_BYTES, TENANT_FORMAT_VERSION,
};
pub use record::TraceRecord;
pub use source::{record_to_file, Record, TraceFileSource, TraceSource, VecSource};
pub use stats::TraceStats;
