//! Trace compositors: build multi-tenant and repeated scenarios from
//! existing traces without writing new generator code.
//!
//! * [`Mix`] — deterministic proportional interleave of N sources by weight,
//! * [`Concat`] — one source after another, per thread,
//! * [`LoopN`] — repeat a rewindable source a fixed number of times,
//! * [`Shift`] — re-base a source's footprint by a byte offset,
//! * [`Tenants`] — stack sources side by side on the thread axis, one
//!   tenant per input.
//!
//! All compositors are themselves [`TraceSource`]s, so they nest: a two
//! tenant mix of a shifted replay and a live generator is
//! `Mix::new(vec![(Box::new(Shift::new(a, off)), 2), (Box::new(b), 1)])`.
//!
//! Every compositor also reports the thread → tenant partition of its
//! output ([`TraceSource::tenant_of`]): [`Shift`] and [`LoopN`] forward
//! their inner source's tenancy, [`Mix`] and [`Concat`] report the tenant
//! of the first input contributing to a thread (their output threads merge
//! streams, so tenancy is per-thread, not per-record), and [`Tenants`]
//! assigns each input a fresh tenant id.

use crate::error::TraceError;
use crate::record::TraceRecord;
use crate::source::TraceSource;
use skybyte_types::TenantId;

/// A boxed source, the currency of composition.
pub type BoxedSource = Box<dyn TraceSource>;

/// Deterministic proportional interleave of N sources.
///
/// Per thread, each source carries a credit counter; every pull adds each
/// live source's weight to its credit and emits from the highest-credit
/// source (ties broken by input order), subtracting the total live weight —
/// the classic smooth weighted round-robin. A 2:1 mix of `a` and `b`
/// therefore yields `a b a a b a …` until a source runs dry, after which the
/// remaining sources continue in proportion. Every record of every input is
/// emitted exactly once, so a mix conserves total access count.
#[derive(Debug)]
pub struct Mix {
    inputs: Vec<(BoxedSource, u64)>,
    /// Per thread, per source: (credit, exhausted).
    state: Vec<Vec<(i64, bool)>>,
    threads: u32,
}

impl Mix {
    /// Mixes `inputs` proportionally by the given weights.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any weight is zero.
    pub fn new(inputs: Vec<(BoxedSource, u64)>) -> Self {
        assert!(!inputs.is_empty(), "Mix needs at least one input");
        assert!(
            inputs.iter().all(|(_, w)| *w > 0),
            "Mix weights must be positive"
        );
        let threads = inputs.iter().map(|(s, _)| s.threads()).max().unwrap_or(1);
        let state = (0..threads)
            .map(|_| inputs.iter().map(|_| (0i64, false)).collect())
            .collect();
        Mix {
            inputs,
            state,
            threads,
        }
    }
}

impl TraceSource for Mix {
    fn threads(&self) -> u32 {
        self.threads
    }

    fn identity(&self) -> String {
        let parts: Vec<String> = self
            .inputs
            .iter()
            .map(|(s, w)| format!("{}*{w}", s.identity()))
            .collect();
        format!("mix({})", parts.join(","))
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        if thread >= self.threads {
            return Err(TraceError::ThreadOutOfRange {
                threads: self.threads,
                requested: thread,
            });
        }
        let state = &mut self.state[thread as usize];
        loop {
            // A source participates while it still has this thread's stream.
            let mut live_weight = 0i64;
            for (i, (source, weight)) in self.inputs.iter().enumerate() {
                if !state[i].1 && thread < source.threads() {
                    live_weight += *weight as i64;
                }
            }
            if live_weight == 0 {
                return Ok(None);
            }
            let mut best: Option<usize> = None;
            for (i, (source, weight)) in self.inputs.iter().enumerate() {
                if state[i].1 || thread >= source.threads() {
                    continue;
                }
                state[i].0 += *weight as i64;
                if best.is_none_or(|b| state[i].0 > state[b].0) {
                    best = Some(i);
                }
            }
            let chosen = best.expect("live_weight > 0 implies a live source");
            state[chosen].0 -= live_weight;
            match self.inputs[chosen].0.next_record(thread)? {
                Some(record) => return Ok(Some(record)),
                None => state[chosen].1 = true,
            }
        }
    }

    /// A mixed thread interleaves records of several inputs, so tenancy is
    /// resolved per thread: the first input carrying the thread names it.
    fn tenant_of(&self, thread: u32) -> TenantId {
        self.inputs
            .iter()
            .find(|(s, _)| thread < s.threads())
            .map(|(s, _)| s.tenant_of(thread))
            .unwrap_or(TenantId::ZERO)
    }
}

/// Plays sources back to back: per thread, the whole stream of the first
/// input, then the second, and so on.
#[derive(Debug)]
pub struct Concat {
    inputs: Vec<BoxedSource>,
    /// Per thread: index of the input currently being drained.
    current: Vec<usize>,
    threads: u32,
}

impl Concat {
    /// Concatenates `inputs` in order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<BoxedSource>) -> Self {
        assert!(!inputs.is_empty(), "Concat needs at least one input");
        let threads = inputs.iter().map(|s| s.threads()).max().unwrap_or(1);
        Concat {
            current: vec![0; threads as usize],
            inputs,
            threads,
        }
    }
}

impl TraceSource for Concat {
    fn threads(&self) -> u32 {
        self.threads
    }

    fn identity(&self) -> String {
        let parts: Vec<String> = self.inputs.iter().map(|s| s.identity()).collect();
        format!("concat({})", parts.join(","))
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        if thread >= self.threads {
            return Err(TraceError::ThreadOutOfRange {
                threads: self.threads,
                requested: thread,
            });
        }
        let current = &mut self.current[thread as usize];
        while *current < self.inputs.len() {
            let source = &mut self.inputs[*current];
            if thread < source.threads() {
                if let Some(record) = source.next_record(thread)? {
                    return Ok(Some(record));
                }
            }
            *current += 1;
        }
        Ok(None)
    }

    /// A concatenated thread plays several inputs back to back, so tenancy
    /// is resolved per thread: the first input carrying the thread names it.
    fn tenant_of(&self, thread: u32) -> TenantId {
        self.inputs
            .iter()
            .find(|s| thread < s.threads())
            .map(|s| s.tenant_of(thread))
            .unwrap_or(TenantId::ZERO)
    }
}

/// Repeats a rewindable source `times` times, per thread.
///
/// The inner source must support [`TraceSource::reset_thread`] (recorded
/// `.sbt` files and synthetic generators do); a non-rewindable inner source
/// yields [`TraceError::Unsupported`] at the first loop boundary.
#[derive(Debug)]
pub struct LoopN {
    inner: BoxedSource,
    times: u32,
    /// Per thread: completed iterations.
    done: Vec<u32>,
}

impl LoopN {
    /// Loops `inner` `times` times (`times == 0` is an empty source).
    pub fn new(inner: BoxedSource, times: u32) -> Self {
        let threads = inner.threads();
        LoopN {
            inner,
            times,
            done: vec![0; threads as usize],
        }
    }
}

impl TraceSource for LoopN {
    fn threads(&self) -> u32 {
        self.inner.threads()
    }

    fn identity(&self) -> String {
        format!("loop({},{})", self.inner.identity(), self.times)
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        if thread >= self.inner.threads() {
            return Err(TraceError::ThreadOutOfRange {
                threads: self.inner.threads(),
                requested: thread,
            });
        }
        loop {
            let done = self.done[thread as usize];
            if done >= self.times {
                return Ok(None);
            }
            if let Some(record) = self.inner.next_record(thread)? {
                return Ok(Some(record));
            }
            self.done[thread as usize] = done + 1;
            if self.done[thread as usize] >= self.times {
                return Ok(None);
            }
            if !self.inner.reset_thread(thread)? {
                return Err(TraceError::Unsupported(
                    "LoopN requires a rewindable inner source",
                ));
            }
        }
    }

    fn tenant_of(&self, thread: u32) -> TenantId {
        self.inner.tenant_of(thread)
    }
}

/// Re-bases a source's footprint by adding a byte offset to every address
/// (wrapping), so multiple tenants can occupy disjoint address ranges.
#[derive(Debug)]
pub struct Shift {
    inner: BoxedSource,
    offset_bytes: u64,
}

impl Shift {
    /// Shifts every address of `inner` up by `offset_bytes`.
    pub fn new(inner: BoxedSource, offset_bytes: u64) -> Self {
        Shift {
            inner,
            offset_bytes,
        }
    }
}

impl TraceSource for Shift {
    fn threads(&self) -> u32 {
        self.inner.threads()
    }

    fn identity(&self) -> String {
        format!("shift({},{})", self.inner.identity(), self.offset_bytes)
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        Ok(self
            .inner
            .next_record(thread)?
            .map(|r| r.shifted(self.offset_bytes)))
    }

    fn reset_thread(&mut self, thread: u32) -> Result<bool, TraceError> {
        self.inner.reset_thread(thread)
    }

    fn tenant_of(&self, thread: u32) -> TenantId {
        self.inner.tenant_of(thread)
    }
}

/// Stacks sources side by side on the thread axis: input 0 provides threads
/// `0..n0`, input 1 provides threads `n0..n0+n1`, and so on. This is the
/// engine-facing construction for co-locating independent applications on
/// one simulated device — each input keeps its own streams and footprint
/// (wrap inputs in [`Shift`] for disjoint address ranges), and the output's
/// [`TraceSource::tenant_map`] records the partition the per-tenant
/// counters are attributed by.
///
/// Tenancy: an input that reports an explicit (nonzero) tenant for a stream
/// keeps it; untagged streams ([`TenantId::ZERO`], the single-tenant
/// default every plain source reports) are assigned their input's position
/// as the tenant id. A caller's explicit tag is therefore never silently
/// overridden, while stacking plain sources still yields one tenant per
/// input.
#[derive(Debug)]
pub struct Tenants {
    inputs: Vec<BoxedSource>,
    /// Exclusive prefix sums of the inputs' thread counts.
    starts: Vec<u32>,
    threads: u32,
}

impl Tenants {
    /// Stacks `inputs`, assigning input `i` the tenant id `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or the total thread count overflows
    /// `u32`.
    pub fn new(inputs: Vec<BoxedSource>) -> Self {
        assert!(!inputs.is_empty(), "Tenants needs at least one input");
        let mut starts = Vec::with_capacity(inputs.len());
        let mut total: u32 = 0;
        for s in &inputs {
            starts.push(total);
            total = total
                .checked_add(s.threads())
                .expect("total thread count overflows u32");
        }
        Tenants {
            inputs,
            starts,
            threads: total,
        }
    }

    /// Maps a global thread index to `(input index, local thread index)`.
    fn locate(&self, thread: u32) -> Result<(usize, u32), TraceError> {
        if thread >= self.threads {
            return Err(TraceError::ThreadOutOfRange {
                threads: self.threads,
                requested: thread,
            });
        }
        let i = self.starts.partition_point(|&s| s <= thread) - 1;
        Ok((i, thread - self.starts[i]))
    }
}

impl TraceSource for Tenants {
    fn threads(&self) -> u32 {
        self.threads
    }

    fn identity(&self) -> String {
        let parts: Vec<String> = self.inputs.iter().map(|s| s.identity()).collect();
        format!("tenants({})", parts.join(","))
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        let (i, local) = self.locate(thread)?;
        self.inputs[i].next_record(local)
    }

    fn reset_thread(&mut self, thread: u32) -> Result<bool, TraceError> {
        let (i, local) = self.locate(thread)?;
        self.inputs[i].reset_thread(local)
    }

    fn tenant_of(&self, thread: u32) -> TenantId {
        match self.locate(thread) {
            Ok((i, local)) => {
                let tagged = self.inputs[i].tenant_of(local);
                if tagged == TenantId::ZERO {
                    TenantId(i as u32)
                } else {
                    tagged
                }
            }
            Err(_) => TenantId::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use skybyte_types::AccessKind;

    fn tagged(n: u64, tag: u64) -> Vec<TraceRecord> {
        // Encode the source tag in the instruction count so interleavings
        // are observable.
        (0..n)
            .map(|i| TraceRecord::new(tag, i * 64, AccessKind::Read, 64))
            .collect()
    }

    fn boxed(name: &str, streams: Vec<Vec<TraceRecord>>) -> BoxedSource {
        Box::new(VecSource::new(name, streams))
    }

    fn drain(source: &mut dyn TraceSource, thread: u32) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        while let Some(r) = source.next_record(thread).unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn mix_interleaves_proportionally_and_conserves_counts() {
        let mut mix = Mix::new(vec![
            (boxed("a", vec![tagged(20, 1)]), 2),
            (boxed("b", vec![tagged(10, 2)]), 1),
        ]);
        let out = drain(&mut mix, 0);
        assert_eq!(out.len(), 30, "mix must conserve the total record count");
        // Proportionality: among the first 15 pulls, 10 come from a, 5 from b.
        let head_a = out[..15].iter().filter(|r| r.instructions == 1).count();
        assert_eq!(head_a, 10);
        // Determinism.
        let mut mix2 = Mix::new(vec![
            (boxed("a", vec![tagged(20, 1)]), 2),
            (boxed("b", vec![tagged(10, 2)]), 1),
        ]);
        assert_eq!(drain(&mut mix2, 0), out);
        assert!(mix.identity().starts_with("mix("));
    }

    #[test]
    fn mix_continues_after_one_source_dries_up() {
        let mut mix = Mix::new(vec![
            (boxed("a", vec![tagged(2, 1)]), 1),
            (boxed("b", vec![tagged(8, 2)]), 1),
        ]);
        let out = drain(&mut mix, 0);
        assert_eq!(out.len(), 10);
        assert_eq!(out.iter().filter(|r| r.instructions == 2).count(), 8);
    }

    #[test]
    fn mix_spans_unequal_thread_counts() {
        let mut mix = Mix::new(vec![
            (boxed("a", vec![tagged(4, 1), tagged(4, 1)]), 1),
            (boxed("b", vec![tagged(4, 2)]), 1),
        ]);
        assert_eq!(mix.threads(), 2);
        assert_eq!(drain(&mut mix, 0).len(), 8);
        // Thread 1 only exists in source a.
        let t1 = drain(&mut mix, 1);
        assert_eq!(t1.len(), 4);
        assert!(t1.iter().all(|r| r.instructions == 1));
    }

    #[test]
    fn concat_plays_streams_back_to_back() {
        let mut cat = Concat::new(vec![
            boxed("a", vec![tagged(3, 1)]),
            boxed("b", vec![tagged(2, 2)]),
        ]);
        let out = drain(&mut cat, 0);
        let tags: Vec<u64> = out.iter().map(|r| r.instructions).collect();
        assert_eq!(tags, vec![1, 1, 1, 2, 2]);
        assert!(cat.identity().starts_with("concat("));
    }

    #[test]
    fn loop_repeats_rewindable_sources() {
        let mut looped = LoopN::new(boxed("a", vec![tagged(3, 1)]), 3);
        let out = drain(&mut looped, 0);
        assert_eq!(out.len(), 9);
        assert_eq!(out[0], out[3]);
        assert_eq!(out[0], out[6]);
        assert_eq!(looped.identity(), "loop(vec:a,3)");
        // Zero iterations is empty.
        let mut zero = LoopN::new(boxed("a", vec![tagged(3, 1)]), 0);
        assert!(drain(&mut zero, 0).is_empty());
    }

    #[test]
    fn loop_over_non_rewindable_source_errors() {
        // A Mix never rewinds.
        let inner = Mix::new(vec![(boxed("a", vec![tagged(2, 1)]), 1)]);
        let mut looped = LoopN::new(Box::new(inner), 2);
        assert!(looped.next_record(0).unwrap().is_some());
        assert!(looped.next_record(0).unwrap().is_some());
        assert!(matches!(
            looped.next_record(0),
            Err(TraceError::Unsupported(_))
        ));
    }

    #[test]
    fn shift_rebases_addresses() {
        let mut shifted = Shift::new(boxed("a", vec![tagged(3, 1)]), 1 << 30);
        let out = drain(&mut shifted, 0);
        assert_eq!(out[0].addr(), 1 << 30);
        assert_eq!(out[2].addr(), (1 << 30) + 128);
        assert!(shifted.identity().starts_with("shift(vec:a,"));
        // Shift preserves rewindability.
        assert!(shifted.reset_thread(0).unwrap());
        assert_eq!(shifted.next_record(0).unwrap().unwrap().addr(), 1 << 30);
    }

    #[test]
    fn tenants_stacks_threads_and_assigns_tenant_ids() {
        let mut stacked = Tenants::new(vec![
            boxed("a", vec![tagged(3, 1), tagged(3, 1)]),
            boxed("b", vec![tagged(2, 2)]),
        ]);
        assert_eq!(stacked.threads(), 3);
        assert_eq!(stacked.identity(), "tenants(vec:a,vec:b)");
        // Threads 0–1 replay source a; thread 2 replays source b's thread 0.
        assert!(drain(&mut stacked, 0).iter().all(|r| r.instructions == 1));
        assert!(drain(&mut stacked, 1).iter().all(|r| r.instructions == 1));
        let t2 = drain(&mut stacked, 2);
        assert_eq!(t2.len(), 2);
        assert!(t2.iter().all(|r| r.instructions == 2));
        // The tenant partition follows the stacking.
        assert_eq!(stacked.tenant_of(0), TenantId(0));
        assert_eq!(stacked.tenant_of(1), TenantId(0));
        assert_eq!(stacked.tenant_of(2), TenantId(1));
        let map = stacked.tenant_map();
        assert_eq!(map.tenant_count(), 2);
        assert_eq!(map.threads_of(TenantId(0)), 2);
        assert_eq!(map.threads_of(TenantId(1)), 1);
        // Stacked streams stay rewindable.
        assert!(stacked.reset_thread(2).unwrap());
        assert_eq!(stacked.next_record(2).unwrap(), Some(t2[0]));
        assert!(matches!(
            stacked.next_record(3),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
    }

    #[test]
    fn tenants_honours_explicit_inner_tags() {
        // An inner source's explicit nonzero tenant wins over the
        // positional id; untagged inputs fall back to their position.
        #[derive(Debug)]
        struct Tagged(VecSource, TenantId);
        impl TraceSource for Tagged {
            fn threads(&self) -> u32 {
                self.0.threads()
            }
            fn identity(&self) -> String {
                self.0.identity()
            }
            fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
                self.0.next_record(thread)
            }
            fn tenant_of(&self, _thread: u32) -> TenantId {
                self.1
            }
        }
        let explicit = Tagged(VecSource::new("a", vec![tagged(1, 1)]), TenantId(5));
        let stacked = Tenants::new(vec![
            Box::new(explicit) as BoxedSource,
            boxed("b", vec![tagged(1, 2)]),
        ]);
        assert_eq!(stacked.tenant_of(0), TenantId(5), "explicit tag kept");
        assert_eq!(stacked.tenant_of(1), TenantId(1), "untagged: positional");
        assert_eq!(stacked.tenant_map().tenant_count(), 6);
    }

    #[test]
    fn compositors_forward_tenancy() {
        // Shift and LoopN forward the inner partition; Mix and Concat report
        // the first contributing input's tenant per thread.
        let stacked = || {
            Box::new(Tenants::new(vec![
                boxed("a", vec![tagged(2, 1)]),
                boxed("b", vec![tagged(2, 2)]),
            ])) as BoxedSource
        };
        let shifted = Shift::new(stacked(), 4096);
        assert_eq!(shifted.tenant_of(1), TenantId(1));
        let looped = LoopN::new(stacked(), 2);
        assert_eq!(looped.tenant_of(0), TenantId(0));
        assert_eq!(looped.tenant_of(1), TenantId(1));
        let mix = Mix::new(vec![(stacked(), 1), (boxed("c", vec![tagged(2, 3)]), 1)]);
        assert_eq!(mix.tenant_of(0), TenantId(0));
        assert_eq!(mix.tenant_of(1), TenantId(1));
        let cat = Concat::new(vec![boxed("c", vec![tagged(2, 3)]), stacked()]);
        // Thread 0 exists in the first (single-tenant) input, thread 1 only
        // in the stacked one.
        assert_eq!(cat.tenant_of(0), TenantId(0));
        assert_eq!(cat.tenant_of(1), TenantId(1));
        // Plain sources default to a single tenant.
        assert_eq!(
            boxed("a", vec![tagged(1, 1)]).tenant_map().tenant_count(),
            1
        );
    }

    #[test]
    fn compositors_reject_out_of_range_threads() {
        let mut mix = Mix::new(vec![(boxed("a", vec![tagged(1, 1)]), 1)]);
        assert!(matches!(
            mix.next_record(5),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
        let mut cat = Concat::new(vec![boxed("a", vec![tagged(1, 1)])]);
        assert!(matches!(
            cat.next_record(5),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
        let mut looped = LoopN::new(boxed("a", vec![tagged(1, 1)]), 1);
        assert!(matches!(
            looped.next_record(5),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
    }
}
