//! LEB128 varint and zigzag primitives of the `.sbt` codec.
//!
//! The build environment is offline, so the encoding is implemented locally
//! instead of pulling a varint crate. Unsigned values are encoded as standard
//! LEB128 (7 payload bits per byte, continuation bit 0x80, at most 10 bytes
//! for a `u64`); signed deltas are mapped to unsigned space with zigzag so
//! that small negative address deltas stay short.

use crate::error::TraceError;
use std::io::{Read, Write};

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Encodes `value` as LEB128 into `out`.
pub fn write_u64<W: Write>(out: &mut W, mut value: u64) -> std::io::Result<()> {
    let mut buf = [0u8; MAX_VARINT_LEN];
    let mut n = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf[n] = byte;
            n += 1;
            break;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
    out.write_all(&buf[..n])
}

/// Decodes one LEB128 `u64` from `input`.
///
/// Returns [`TraceError::Truncated`] when the stream ends mid-varint (an
/// empty stream is reported the same way; callers that allow clean EOF probe
/// the first byte themselves) and [`TraceError::Corrupt`] when the encoding
/// overflows 64 bits.
pub fn read_u64<R: Read>(input: &mut R) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match input.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated {
                    context: "varint ended mid-value",
                });
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        let payload = (byte[0] & 0x7F) as u64;
        if shift == 63 && payload > 1 {
            return Err(TraceError::Corrupt("varint overflows u64"));
        }
        if shift > 63 {
            return Err(TraceError::Corrupt("varint longer than 10 bytes"));
        }
        value |= payload << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta to unsigned space (`0, -1, 1, -2, … → 0, 1, 2,
/// 3, …`).
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// The wrapping difference `to - from` as a zigzag-ready signed delta.
///
/// Wrapping arithmetic makes the delta chain total: even a `u64`-wrapping
/// address jump round-trips exactly through [`apply_delta`].
pub fn address_delta(from: u64, to: u64) -> i64 {
    to.wrapping_sub(from) as i64
}

/// Applies a decoded delta to the previous absolute address.
pub fn apply_delta(from: u64, delta: i64) -> u64 {
    from.wrapping_add(delta as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        assert!(buf.len() <= MAX_VARINT_LEN);
        read_u64(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            256,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        for cut in 0..buf.len() {
            assert!(matches!(
                read_u64(&mut &buf[..cut]),
                Err(TraceError::Truncated { .. })
            ));
        }
        // 10 continuation bytes followed by a large final payload overflow.
        let overlong = [0xFFu8; 9]
            .iter()
            .copied()
            .chain(std::iter::once(0x7F))
            .collect::<Vec<_>>();
        assert!(matches!(
            read_u64(&mut overlong.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
        let too_long = [0xFFu8; 10]
            .iter()
            .copied()
            .chain(std::iter::once(0x01))
            .collect::<Vec<_>>();
        assert!(matches!(
            read_u64(&mut too_long.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 123_456, -123_456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn address_deltas_survive_u64_wrap() {
        for (from, to) in [
            (0u64, u64::MAX),
            (u64::MAX, 0),
            (5, 3),
            (3, 5),
            (u64::MAX - 2, 4),
        ] {
            let d = address_delta(from, to);
            assert_eq!(apply_delta(from, d), to);
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }
}
