//! The typed error of the trace subsystem.
//!
//! Every failure mode of the `.sbt` codec — I/O, malformed headers,
//! truncation, corruption — surfaces as a [`TraceError`]; the reader never
//! panics on hostile input (locked by the proptest suite in `format.rs`).

use std::fmt;

/// Anything that can go wrong while reading, writing or composing traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `.sbt` magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The stream ended in the middle of a header, chunk or record.
    Truncated {
        /// What was being decoded when the stream ended.
        context: &'static str,
    },
    /// The stream is structurally invalid (bad varint, unknown op byte,
    /// thread index out of range, …).
    Corrupt(&'static str),
    /// Two composed traces (or a trace and a simulation) disagree on the
    /// number of thread streams.
    ThreadMismatch {
        /// The thread count the consumer expected.
        expected: u32,
        /// The thread count the trace declares.
        got: u32,
    },
    /// A caller asked for a thread stream the source does not have.
    ThreadOutOfRange {
        /// Streams the source provides.
        threads: u32,
        /// The stream index that was requested.
        requested: u32,
    },
    /// The requested operation is not supported by this source (e.g. looping
    /// a non-rewindable stream).
    Unsupported(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not an .sbt trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported .sbt format version {v}")
            }
            TraceError::Truncated { context } => {
                write!(f, "truncated trace: {context}")
            }
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::ThreadMismatch { expected, got } => {
                write!(f, "trace has {got} thread stream(s), expected {expected}")
            }
            TraceError::ThreadOutOfRange { threads, requested } => {
                write!(
                    f,
                    "thread {requested} requested, but the source has only \
                     {threads} stream(s)"
                )
            }
            TraceError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let cases: Vec<(TraceError, &str)> = vec![
            (TraceError::BadMagic, "magic"),
            (TraceError::UnsupportedVersion(9), "version 9"),
            (TraceError::Truncated { context: "header" }, "header"),
            (TraceError::Corrupt("bad op"), "bad op"),
            (
                TraceError::ThreadMismatch {
                    expected: 4,
                    got: 2,
                },
                "2 thread",
            ),
            (
                TraceError::ThreadOutOfRange {
                    threads: 2,
                    requested: 5,
                },
                "thread 5",
            ),
            (TraceError::Unsupported("loop"), "loop"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
        let io = TraceError::from(std::io::Error::other("disk on fire"));
        assert!(io.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&io).is_some());
        assert!(std::error::Error::source(&TraceError::BadMagic).is_none());
    }
}
