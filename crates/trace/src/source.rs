//! The [`TraceSource`] abstraction: anything that can feed per-thread access
//! streams to the simulator — live synthetic generators, recorded `.sbt`
//! files, and compositions thereof ([`crate::compose`]).

use crate::error::TraceError;
use crate::format::{ThreadReader, TraceHeader, TraceReader, TraceWriter};
use crate::record::TraceRecord;
use skybyte_types::{TenantId, TenantMap};
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};

/// A set of independent per-thread access streams.
///
/// The simulation engine pulls each thread's stream strictly in order but
/// interleaves pulls *across* threads in simulated-time order; a source must
/// therefore keep the streams independent — the records of thread `t` may
/// not depend on when (or whether) other threads are polled. All sources in
/// this workspace are deterministic, which is what makes record → replay
/// bit-identical and memoized parallel runs sound.
pub trait TraceSource: std::fmt::Debug {
    /// Number of per-thread streams.
    fn threads(&self) -> u32;

    /// A stable, human-readable identity used for provenance headers and as
    /// the trace component of run-request fingerprints.
    fn identity(&self) -> String;

    /// The next record of `thread`'s stream; `Ok(None)` when exhausted.
    /// Generators are typically unbounded and never return `None`.
    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError>;

    /// Rewinds one thread's stream to its beginning, if the source supports
    /// it. Returns `Ok(false)` (the default) when it cannot rewind.
    fn reset_thread(&mut self, _thread: u32) -> Result<bool, TraceError> {
        Ok(false)
    }

    /// The tenant that `thread`'s stream belongs to. Single-tenant sources
    /// (the default) report [`TenantId::ZERO`] for every thread; compositors
    /// forward their inputs' tenancy, and [`crate::compose::Tenants`] stacks
    /// inputs into distinct tenants.
    fn tenant_of(&self, _thread: u32) -> TenantId {
        TenantId::ZERO
    }

    /// The full thread → tenant partition of this source, built from
    /// [`tenant_of`](Self::tenant_of). This is what the simulation engine
    /// reads once at startup to attribute every access to a tenant.
    fn tenant_map(&self) -> TenantMap {
        TenantMap::from_fn(self.threads(), |t| self.tenant_of(t))
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn threads(&self) -> u32 {
        (**self).threads()
    }

    fn identity(&self) -> String {
        (**self).identity()
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        (**self).next_record(thread)
    }

    fn reset_thread(&mut self, thread: u32) -> Result<bool, TraceError> {
        (**self).reset_thread(thread)
    }

    fn tenant_of(&self, thread: u32) -> TenantId {
        (**self).tenant_of(thread)
    }
}

/// Tees any source to an `.sbt` writer: every record pulled through the
/// adapter is also appended to the trace file, so a live simulation records
/// exactly the stream it consumed.
#[derive(Debug)]
pub struct Record<S: TraceSource, W: Write> {
    inner: S,
    writer: TraceWriter<W>,
}

impl<S: TraceSource, W: Write> Record<S, W> {
    /// Wraps `inner`, teeing to `writer` (whose header is already written).
    pub fn new(inner: S, writer: TraceWriter<W>) -> Self {
        Record { inner, writer }
    }

    /// Records pushed to the writer so far.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }

    /// Flushes the writer and returns the inner source.
    pub fn finish(self) -> Result<S, TraceError> {
        self.writer.finish()?;
        Ok(self.inner)
    }
}

impl<S: TraceSource, W: Write + std::fmt::Debug> TraceSource for Record<S, W> {
    fn threads(&self) -> u32 {
        self.inner.threads()
    }

    fn identity(&self) -> String {
        self.inner.identity()
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        let record = self.inner.next_record(thread)?;
        if let Some(r) = &record {
            self.writer.push(thread, r)?;
        }
        Ok(record)
    }

    // reset_thread deliberately keeps the default: rewinding a tee would
    // re-record the rewound prefix.

    fn tenant_of(&self, thread: u32) -> TenantId {
        self.inner.tenant_of(thread)
    }
}

/// Replays an `.sbt` file as a [`TraceSource`].
///
/// Each thread gets its own [`ThreadReader`] over an independent file
/// handle, so the engine can interleave threads in any order with O(1)
/// memory per stream.
///
/// A version-1 `.sbt` file is tenant-agnostic (tenancy is a
/// composition-time concept), so every replayed stream reports
/// [`TenantId::ZERO`]. A tenant-aware (version-2) file carries its
/// thread→tenant table in the header, and replay reports each stream's
/// recorded tenant — so a mix recorded from [`crate::compose::Tenants`]
/// replays with the same tenant partition it was simulated with.
#[derive(Debug)]
pub struct TraceFileSource {
    path: PathBuf,
    header: TraceHeader,
    cursors: Vec<ThreadReader<BufReader<std::fs::File>>>,
}

impl TraceFileSource {
    /// Opens `path` for replay.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let header = TraceReader::open(path)?.header().clone();
        let cursors = (0..header.threads)
            .map(|t| ThreadReader::open(path, t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TraceFileSource {
            path: path.to_path_buf(),
            header,
            cursors,
        })
    }

    /// The file's provenance header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The path being replayed.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSource for TraceFileSource {
    fn threads(&self) -> u32 {
        self.header.threads
    }

    fn identity(&self) -> String {
        format!(
            "sbt:{}:threads={}:fp={}:seed={}:src={}",
            self.path.display(),
            self.header.threads,
            self.header.footprint_bytes,
            self.header.seed,
            self.header.source
        )
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        match self.cursors.get_mut(thread as usize) {
            Some(cursor) => cursor.next(),
            None => Err(TraceError::ThreadOutOfRange {
                threads: self.header.threads,
                requested: thread,
            }),
        }
    }

    fn reset_thread(&mut self, thread: u32) -> Result<bool, TraceError> {
        if thread >= self.header.threads {
            return Err(TraceError::ThreadOutOfRange {
                threads: self.header.threads,
                requested: thread,
            });
        }
        self.cursors[thread as usize] = ThreadReader::open(&self.path, thread)?;
        Ok(true)
    }

    fn tenant_of(&self, thread: u32) -> TenantId {
        match &self.header.tenant_of_thread {
            Some(table) => table
                .get(thread as usize)
                .copied()
                .map_or(TenantId::ZERO, TenantId),
            None => TenantId::ZERO,
        }
    }
}

/// An in-memory source over explicit per-thread record vectors — the unit of
/// account for compositor tests and a convenient way to hand-craft streams.
#[derive(Debug, Clone)]
pub struct VecSource {
    name: String,
    streams: Vec<Vec<TraceRecord>>,
    positions: Vec<usize>,
}

impl VecSource {
    /// A source named `name` over one record vector per thread.
    pub fn new(name: &str, streams: Vec<Vec<TraceRecord>>) -> Self {
        assert!(!streams.is_empty(), "at least one thread stream required");
        let positions = vec![0; streams.len()];
        VecSource {
            name: name.to_string(),
            streams,
            positions,
        }
    }
}

impl TraceSource for VecSource {
    fn threads(&self) -> u32 {
        self.streams.len() as u32
    }

    fn identity(&self) -> String {
        format!("vec:{}", self.name)
    }

    fn next_record(&mut self, thread: u32) -> Result<Option<TraceRecord>, TraceError> {
        let t = thread as usize;
        match self.streams.get(t) {
            Some(stream) => {
                let pos = self.positions[t];
                if pos < stream.len() {
                    self.positions[t] += 1;
                    Ok(Some(stream[pos]))
                } else {
                    Ok(None)
                }
            }
            None => Err(TraceError::ThreadOutOfRange {
                threads: self.threads(),
                requested: thread,
            }),
        }
    }

    fn reset_thread(&mut self, thread: u32) -> Result<bool, TraceError> {
        if (thread as usize) < self.positions.len() {
            self.positions[thread as usize] = 0;
            Ok(true)
        } else {
            Err(TraceError::ThreadOutOfRange {
                threads: self.threads(),
                requested: thread,
            })
        }
    }
}

/// Drains every stream of `source` into an `.sbt` file at `path`.
///
/// This is the offline "record without simulating" path: it pulls each
/// thread's stream to exhaustion, or up to `limit_per_thread` records for
/// unbounded generator sources.
pub fn record_to_file<S: TraceSource>(
    source: &mut S,
    path: &Path,
    header: &TraceHeader,
    limit_per_thread: u64,
) -> Result<u64, TraceError> {
    let mut writer = TraceWriter::create(path, header)?;
    for thread in 0..source.threads() {
        let mut taken = 0u64;
        while taken < limit_per_thread {
            match source.next_record(thread)? {
                Some(record) => writer.push(thread, &record)?,
                None => break,
            }
            taken += 1;
        }
    }
    let total = writer.records_written();
    writer.finish()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;

    fn records(n: u64, base: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::read(i, base + i * 64))
            .collect()
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("skybyte-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.sbt", std::process::id()))
    }

    #[test]
    fn vec_source_streams_and_resets() {
        let mut s = VecSource::new("a", vec![records(3, 0), records(2, 4096)]);
        assert_eq!(s.threads(), 2);
        assert_eq!(s.next_record(0).unwrap(), Some(TraceRecord::read(0, 0)));
        assert_eq!(s.next_record(1).unwrap(), Some(TraceRecord::read(0, 4096)));
        assert_eq!(s.next_record(0).unwrap(), Some(TraceRecord::read(1, 64)));
        assert!(s.reset_thread(0).unwrap());
        assert_eq!(s.next_record(0).unwrap(), Some(TraceRecord::read(0, 0)));
        assert!(matches!(
            s.next_record(7),
            Err(TraceError::ThreadOutOfRange { .. })
        ));
    }

    #[test]
    fn record_tee_then_file_replay_is_identical() {
        let path = tmp_path("tee");
        let streams = vec![records(700, 0), records(650, 1 << 20)];
        let header = TraceHeader {
            threads: 2,
            footprint_bytes: 2 << 20,
            seed: 1,
            source: "vec:a".into(),
            tenant_of_thread: None,
        };
        let writer = TraceWriter::create(&path, &header).unwrap();
        let mut tee = Record::new(VecSource::new("a", streams.clone()), writer);
        // Interleave pulls the way an engine would.
        let mut pulled: Vec<Vec<TraceRecord>> = vec![Vec::new(), Vec::new()];
        loop {
            let mut progressed = false;
            for t in 0..2u32 {
                if let Some(r) = tee.next_record(t).unwrap() {
                    pulled[t as usize].push(r);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(tee.records_written(), 1350);
        tee.finish().unwrap();
        assert_eq!(pulled, streams);

        let mut replay = TraceFileSource::open(&path).unwrap();
        assert_eq!(replay.header().source, "vec:a");
        for (t, stream) in streams.iter().enumerate() {
            let mut got = Vec::new();
            while let Some(r) = replay.next_record(t as u32).unwrap() {
                got.push(r);
            }
            assert_eq!(&got, stream, "thread {t}");
        }
        // Rewind one thread and replay it again.
        assert!(replay.reset_thread(1).unwrap());
        assert_eq!(replay.next_record(1).unwrap(), Some(streams[1][0]));
        assert!(replay.identity().contains("vec:a"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_to_file_respects_limits() {
        let path = tmp_path("limit");
        let header = TraceHeader {
            threads: 1,
            footprint_bytes: 1 << 20,
            seed: 0,
            source: "vec:b".into(),
            tenant_of_thread: None,
        };
        let mut src = VecSource::new("b", vec![records(100, 0)]);
        let n = record_to_file(&mut src, &path, &header, 40).unwrap();
        assert_eq!(n, 40);
        let mut replay = TraceFileSource::open(&path).unwrap();
        let mut count = 0;
        while replay.next_record(0).unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 40);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tenant_aware_files_replay_their_recorded_partition() {
        let path = tmp_path("tenants");
        let header = TraceHeader {
            threads: 4,
            footprint_bytes: 1 << 20,
            seed: 3,
            source: "vec:t".into(),
            tenant_of_thread: Some(vec![0, 0, 1, 1]),
        };
        let mut src = VecSource::new(
            "t",
            (0..4).map(|t| records(5, t * 4096)).collect::<Vec<_>>(),
        );
        record_to_file(&mut src, &path, &header, u64::MAX).unwrap();
        let replay = TraceFileSource::open(&path).unwrap();
        for (thread, want) in [(0u32, 0u32), (1, 0), (2, 1), (3, 1)] {
            assert_eq!(replay.tenant_of(thread), TenantId(want));
        }
        let map = replay.tenant_map();
        assert_eq!(map.tenant_count(), 2);
        // A version-1 file (no table) stays single-tenant.
        let mut agnostic = header.clone();
        agnostic.tenant_of_thread = None;
        let path1 = tmp_path("tenantless");
        let mut src = VecSource::new(
            "t",
            (0..4).map(|t| records(5, t * 4096)).collect::<Vec<_>>(),
        );
        record_to_file(&mut src, &path1, &agnostic, u64::MAX).unwrap();
        let replay1 = TraceFileSource::open(&path1).unwrap();
        assert_eq!(replay1.tenant_map().tenant_count(), 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path1).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            TraceFileSource::open(Path::new("/nonexistent/definitely-not-here.sbt")),
            Err(TraceError::Io(_))
        ));
    }
}
