//! A streaming statistics pass over a trace.
//!
//! [`TraceStats`] accumulates the characteristics the paper tabulates for
//! its workloads: footprint and write ratio (Table I) and the per-page
//! cacheline-coverage distribution (Figures 5–6). Pages hold 64 cachelines,
//! so coverage is tracked as one `u64` bitmap per touched page.

use crate::error::TraceError;
use crate::format::{TraceHeader, TraceReader};
use crate::record::TraceRecord;
use skybyte_types::{CACHELINES_PER_PAGE, CACHELINE_SIZE, PAGE_SIZE};
use std::collections::HashMap;
use std::io::Read;
use std::path::Path;

/// Aggregate characteristics of a trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total records.
    pub records: u64,
    /// Read records.
    pub reads: u64,
    /// Write records.
    pub writes: u64,
    /// Sum of the compute gaps (instructions).
    pub total_instructions: u64,
    /// Records per thread stream.
    pub per_thread: Vec<u64>,
    /// Smallest address touched.
    pub min_addr: u64,
    /// Largest address touched (inclusive of the access size).
    pub max_addr_end: u64,
    /// Per touched page: bitmap of touched cachelines.
    coverage: HashMap<u64, u64>,
}

impl TraceStats {
    /// Folds one record of `thread` into the statistics.
    pub fn add(&mut self, thread: u32, record: &TraceRecord) {
        if self.per_thread.len() <= thread as usize {
            self.per_thread.resize(thread as usize + 1, 0);
        }
        self.per_thread[thread as usize] += 1;
        self.records += 1;
        if record.access.kind.is_write() {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.total_instructions += record.instructions;
        let addr = record.addr();
        if self.records == 1 || addr < self.min_addr {
            self.min_addr = addr;
        }
        let end = addr.saturating_add(record.size_bytes.max(1) as u64);
        if end > self.max_addr_end {
            self.max_addr_end = end;
        }
        // Mark every cacheline the access spans (zero-size ops count as one).
        let first_cl = addr / CACHELINE_SIZE as u64;
        let last_cl = end.saturating_sub(1) / CACHELINE_SIZE as u64;
        for cl in first_cl..=last_cl {
            let page = cl / CACHELINES_PER_PAGE as u64;
            let bit = cl % CACHELINES_PER_PAGE as u64;
            *self.coverage.entry(page).or_insert(0) |= 1u64 << bit;
        }
    }

    /// Runs the pass over every record of `reader`, returning the header and
    /// the accumulated statistics.
    pub fn scan<R: Read>(
        mut reader: TraceReader<R>,
    ) -> Result<(TraceHeader, TraceStats), TraceError> {
        let mut stats = TraceStats::default();
        while let Some((thread, record)) = reader.next()? {
            stats.add(thread, &record);
        }
        Ok((reader.header().clone(), stats))
    }

    /// Convenience: [`scan`](Self::scan) over an `.sbt` file.
    pub fn scan_file(path: &Path) -> Result<(TraceHeader, TraceStats), TraceError> {
        Self::scan(TraceReader::open(path)?)
    }

    /// Fraction of records that are writes (Table I's write ratio).
    pub fn write_ratio(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.writes as f64 / self.records as f64
        }
    }

    /// Number of distinct 4 KiB pages touched.
    pub fn footprint_pages(&self) -> u64 {
        self.coverage.len() as u64
    }

    /// Touched footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_pages() * PAGE_SIZE as u64
    }

    /// Mean instructions between consecutive accesses (1000 / MPKI).
    pub fn mean_instructions_per_access(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.total_instructions as f64 / self.records as f64
        }
    }

    /// Mean fraction of each touched page's 64 cachelines that were touched.
    pub fn mean_page_coverage(&self) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        let touched: u64 = self.coverage.values().map(|b| b.count_ones() as u64).sum();
        touched as f64 / (self.coverage.len() as u64 * CACHELINES_PER_PAGE as u64) as f64
    }

    /// Fraction of touched pages whose cacheline coverage is below
    /// `fraction` (the Figures 5–6 CDF read-out; the paper's observation is
    /// that most workloads keep > 75 % of pages under 0.4).
    pub fn pages_with_coverage_below(&self, fraction: f64) -> f64 {
        if self.coverage.is_empty() {
            return 0.0;
        }
        let threshold = fraction * CACHELINES_PER_PAGE as f64;
        let under = self
            .coverage
            .values()
            .filter(|b| (b.count_ones() as f64) < threshold)
            .count();
        under as f64 / self.coverage.len() as f64
    }

    /// Renders the statistics as an aligned plain-text report.
    pub fn render(&self, header: &TraceHeader) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== trace statistics ==");
        let _ = writeln!(out, "source                {}", header.source);
        let _ = writeln!(out, "format threads        {}", header.threads);
        let _ = writeln!(
            out,
            "declared footprint    {} bytes",
            header.footprint_bytes
        );
        let _ = writeln!(out, "declared seed         {}", header.seed);
        let _ = writeln!(out, "records               {}", self.records);
        let _ = writeln!(
            out,
            "reads / writes        {} / {} (write ratio {:.3})",
            self.reads,
            self.writes,
            self.write_ratio()
        );
        let _ = writeln!(
            out,
            "touched footprint     {} pages ({} bytes)",
            self.footprint_pages(),
            self.footprint_bytes()
        );
        let _ = writeln!(
            out,
            "address range         [{:#x}, {:#x})",
            self.min_addr, self.max_addr_end
        );
        let _ = writeln!(
            out,
            "mean instr / access   {:.2}",
            self.mean_instructions_per_access()
        );
        let _ = writeln!(
            out,
            "mean page coverage    {:.3} of 64 cachelines",
            self.mean_page_coverage()
        );
        let _ = writeln!(
            out,
            "pages under 40% cov.  {:.1}%",
            self.pages_with_coverage_below(0.4) * 100.0
        );
        for (t, n) in self.per_thread.iter().enumerate() {
            let _ = writeln!(out, "thread {t:<3} records    {n}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;

    #[test]
    fn stats_accumulate_reads_writes_and_coverage() {
        let mut s = TraceStats::default();
        // Two records on page 0 (cachelines 0 and 1), one write on page 2.
        s.add(0, &TraceRecord::read(10, 0));
        s.add(0, &TraceRecord::read(20, 64));
        s.add(1, &TraceRecord::write(30, 2 * 4096));
        assert_eq!(s.records, 3);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert!((s.write_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.footprint_pages(), 2);
        assert_eq!(s.footprint_bytes(), 2 * 4096);
        assert_eq!(s.per_thread, vec![2, 1]);
        assert_eq!(s.min_addr, 0);
        assert_eq!(s.max_addr_end, 2 * 4096 + 64);
        assert!((s.mean_instructions_per_access() - 20.0).abs() < 1e-12);
        // Page 0 has 2/64 coverage, page 2 has 1/64.
        assert!((s.mean_page_coverage() - (3.0 / 128.0)).abs() < 1e-12);
        assert_eq!(s.pages_with_coverage_below(0.4), 1.0);
        assert_eq!(s.pages_with_coverage_below(0.01), 0.0);
    }

    #[test]
    fn multi_cacheline_accesses_span_pages() {
        let mut s = TraceStats::default();
        // A 256-byte access starting 64 bytes before a page boundary.
        s.add(
            0,
            &TraceRecord::new(0, 4096 - 64, skybyte_types::AccessKind::Read, 256),
        );
        assert_eq!(s.footprint_pages(), 2);
        // One cacheline on page 0, three on page 1.
        assert!((s.mean_page_coverage() - (4.0 / 128.0)).abs() < 1e-12);
        // Zero-size ops still count one cacheline.
        let mut z = TraceStats::default();
        z.add(
            0,
            &TraceRecord::new(0, 0, skybyte_types::AccessKind::Read, 0),
        );
        assert_eq!(z.footprint_pages(), 1);
    }

    #[test]
    fn scan_streams_a_whole_file() {
        let header = TraceHeader {
            threads: 2,
            footprint_bytes: 1 << 20,
            seed: 3,
            source: "stat-test".into(),
            tenant_of_thread: None,
        };
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        for i in 0..100u64 {
            let r = if i % 5 == 0 {
                TraceRecord::write(i, i * 4096)
            } else {
                TraceRecord::read(i, i * 64)
            };
            w.push((i % 2) as u32, &r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let (h, s) = TraceStats::scan(TraceReader::new(bytes.as_slice()).unwrap()).unwrap();
        assert_eq!(h, header);
        assert_eq!(s.records, 100);
        assert_eq!(s.writes, 20);
        assert_eq!(s.per_thread, vec![50, 50]);
        let rendered = s.render(&h);
        assert!(rendered.contains("records               100"));
        assert!(rendered.contains("stat-test"));
        assert!(rendered.contains("write ratio 0.200"));
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = TraceStats::default();
        assert_eq!(s.write_ratio(), 0.0);
        assert_eq!(s.mean_page_coverage(), 0.0);
        assert_eq!(s.pages_with_coverage_below(0.4), 0.0);
        assert_eq!(s.mean_instructions_per_access(), 0.0);
    }
}
