//! Virtual memory: page table and TLB.
//!
//! The whole CXL-SSD is mapped into the system physical address space as
//! host-managed device memory. The OS page table records, for every virtual
//! page of the workload, whether it currently lives in host DRAM (because it
//! was promoted) or in the CXL-SSD. Page migration updates the PTE and
//! invalidates the TLB entry, triggering a TLB shootdown on every core
//! (modelled as a fixed cost counted by the simulator).

use serde::{Deserialize, Serialize};
use skybyte_types::{FastHashMap, Lpa, Nanos, PageNumber};
use std::collections::VecDeque;

/// Where a virtual page currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePlacement {
    /// The page has been promoted to host DRAM at the given host page.
    HostDram(PageNumber),
    /// The page lives in the CXL-SSD at the given logical page address.
    CxlSsd(Lpa),
}

impl PagePlacement {
    /// Whether the page is in host DRAM.
    pub fn is_host(&self) -> bool {
        matches!(self, PagePlacement::HostDram(_))
    }
}

/// The OS page table for the simulated workload address space.
///
/// By default every virtual page is identity-mapped into the CXL-SSD
/// (virtual page *n* → LPA *n*), which models the paper's setup where "all
/// data are initially stored in CXL-SSD". Promotions and demotions update
/// individual entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PageTable {
    overrides: FastHashMap<PageNumber, PagePlacement>,
    promoted_pages: u64,
    updates: u64,
}

impl PageTable {
    /// Creates a page table with the default all-in-SSD identity mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Translates a virtual page to its current placement.
    pub fn translate(&self, vpage: PageNumber) -> PagePlacement {
        // Variants that never migrate (Base-CSSD) keep the override map
        // empty for the whole run; skip hashing into it on that path.
        if self.overrides.is_empty() {
            return PagePlacement::CxlSsd(Lpa::new(vpage.index()));
        }
        self.overrides
            .get(&vpage)
            .copied()
            .unwrap_or(PagePlacement::CxlSsd(Lpa::new(vpage.index())))
    }

    /// Points a virtual page at a host DRAM page (promotion). Returns the
    /// previous placement.
    pub fn promote(&mut self, vpage: PageNumber, host_page: PageNumber) -> PagePlacement {
        let old = self.translate(vpage);
        self.overrides
            .insert(vpage, PagePlacement::HostDram(host_page));
        if !old.is_host() {
            self.promoted_pages += 1;
        }
        self.updates += 1;
        old
    }

    /// Points a virtual page back at the CXL-SSD (demotion/eviction). Returns
    /// the previous placement.
    pub fn demote(&mut self, vpage: PageNumber, lpa: Lpa) -> PagePlacement {
        let old = self.translate(vpage);
        self.overrides.insert(vpage, PagePlacement::CxlSsd(lpa));
        if old.is_host() {
            self.promoted_pages = self.promoted_pages.saturating_sub(1);
        }
        self.updates += 1;
        old
    }

    /// Number of virtual pages currently placed in host DRAM.
    pub fn promoted_pages(&self) -> u64 {
        self.promoted_pages
    }

    /// Number of PTE updates performed (promotions + demotions).
    pub fn pte_updates(&self) -> u64 {
        self.updates
    }
}

/// A fully-associative LRU TLB with shootdown accounting.
///
/// Recency is a strict total order (`tick` increments on every access), so
/// LRU selection does not depend on storage order. Entries map page →
/// last-access tick, and recency is tracked with a lazy-deletion access log:
/// every access appends `(tick, page)` to a deque, and eviction pops from
/// the front, skipping records whose tick no longer matches the page's
/// current tick (the page was re-accessed or shot down since). The log is
/// compacted whenever stale records outnumber live ones, so both access and
/// eviction are amortised O(1) — where the previous flat `Vec` paid an O(n)
/// scan on every access. The observable hit/miss/eviction behaviour is
/// identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    capacity: usize,
    entries: FastHashMap<PageNumber, u64>,
    access_log: VecDeque<(u64, PageNumber)>,
    tick: u64,
    hits: u64,
    misses: u64,
    shootdowns: u64,
    miss_penalty: Nanos,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries and the given page-walk penalty
    /// charged on each miss.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, miss_penalty: Nanos) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            entries: FastHashMap::with_capacity_and_hasher(capacity, Default::default()),
            access_log: VecDeque::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
            shootdowns: 0,
            miss_penalty,
        }
    }

    /// Looks up a virtual page, filling the TLB on a miss. Returns the
    /// latency contributed by translation (zero on a hit, the walk penalty on
    /// a miss).
    pub fn access(&mut self, vpage: PageNumber) -> Nanos {
        self.tick += 1;
        let tick = self.tick;
        self.maybe_compact_log();
        if let Some(t) = self.entries.get_mut(&vpage) {
            *t = tick;
            self.access_log.push_back((tick, vpage));
            self.hits += 1;
            return Nanos::ZERO;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Pop log records until one still names a page's most recent
            // access; that page is the true LRU victim.
            loop {
                let (t, victim) = self.access_log.pop_front().expect("log covers all entries");
                if self.entries.get(&victim) == Some(&t) {
                    self.entries.remove(&victim);
                    break;
                }
            }
        }
        self.entries.insert(vpage, tick);
        self.access_log.push_back((tick, vpage));
        self.miss_penalty
    }

    /// Drops stale access-log records once they outnumber live entries, so
    /// the log stays O(capacity) without changing which records survive.
    fn maybe_compact_log(&mut self) {
        if self.access_log.len() >= 2 * self.entries.len().max(self.capacity) {
            let entries = &self.entries;
            self.access_log
                .retain(|&(t, page)| entries.get(&page) == Some(&t));
        }
    }

    /// Invalidates the entry for `vpage` (TLB shootdown after a migration).
    /// Returns `true` if an entry was present.
    pub fn shootdown(&mut self, vpage: PageNumber) -> bool {
        self.shootdowns += 1;
        // The page's log records become stale and are skipped (or compacted)
        // lazily.
        self.entries.remove(&vpage).is_some()
    }

    /// (hits, misses) counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of shootdowns received.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mapping_is_identity_into_ssd() {
        let pt = PageTable::new();
        assert_eq!(
            pt.translate(PageNumber(42)),
            PagePlacement::CxlSsd(Lpa::new(42))
        );
        assert!(!pt.translate(PageNumber(42)).is_host());
        assert_eq!(pt.promoted_pages(), 0);
    }

    #[test]
    fn promote_and_demote_update_counts() {
        let mut pt = PageTable::new();
        let old = pt.promote(PageNumber(1), PageNumber(1000));
        assert_eq!(old, PagePlacement::CxlSsd(Lpa::new(1)));
        assert_eq!(
            pt.translate(PageNumber(1)),
            PagePlacement::HostDram(PageNumber(1000))
        );
        assert_eq!(pt.promoted_pages(), 1);
        // Promoting an already-promoted page does not double count.
        pt.promote(PageNumber(1), PageNumber(1001));
        assert_eq!(pt.promoted_pages(), 1);
        let old = pt.demote(PageNumber(1), Lpa::new(1));
        assert!(old.is_host());
        assert_eq!(pt.promoted_pages(), 0);
        assert_eq!(pt.pte_updates(), 3);
    }

    #[test]
    fn tlb_hit_miss_and_lru() {
        let mut tlb = Tlb::new(2, Nanos::new(100));
        assert_eq!(tlb.access(PageNumber(1)), Nanos::new(100));
        assert_eq!(tlb.access(PageNumber(1)), Nanos::ZERO);
        tlb.access(PageNumber(2));
        // Touch 1 so 2 is LRU, then insert 3: 2 evicted.
        tlb.access(PageNumber(1));
        tlb.access(PageNumber(3));
        assert_eq!(tlb.access(PageNumber(2)), Nanos::new(100));
        let (hits, misses) = tlb.hit_miss();
        assert!(hits >= 2 && misses >= 3);
    }

    #[test]
    fn tlb_shootdown_invalidates() {
        let mut tlb = Tlb::new(4, Nanos::new(50));
        tlb.access(PageNumber(9));
        assert!(tlb.shootdown(PageNumber(9)));
        assert!(!tlb.shootdown(PageNumber(9)));
        assert_eq!(tlb.shootdowns(), 2);
        assert_eq!(tlb.access(PageNumber(9)), Nanos::new(50));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn tlb_rejects_zero_capacity() {
        let _ = Tlb::new(0, Nanos::ZERO);
    }
}
