//! TPP-style software page-hotness sampling (§VI-H).
//!
//! TPP (Transparent Page Placement, ASPLOS'23) extends Linux NUMA balancing:
//! it periodically samples page accesses and promotes pages that are touched
//! again within the sampling window. This is less accurate than SkyByte's
//! per-page counters in the SSD controller, which is why the paper's
//! SkyByte-CT variant trails SkyByte-CP slightly. The sampler here reproduces
//! that behaviour: only accesses that fall inside the sampling window are
//! observed, and a bounded number of promotions is allowed per window.

use serde::{Deserialize, Serialize};
use skybyte_types::{Lpa, MigrationConfig, Nanos};
use std::collections::HashMap;

/// Periodic-sampling hotness estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TppSampler {
    period: Nanos,
    promotions_per_period: u32,
    window_start: Nanos,
    /// Accesses observed in the current window.
    window_counts: HashMap<Lpa, u32>,
    /// Candidates produced at the end of the previous window.
    candidates: Vec<Lpa>,
    windows: u64,
}

impl TppSampler {
    /// Creates a sampler from the migration configuration.
    pub fn new(cfg: &MigrationConfig) -> Self {
        TppSampler {
            period: cfg.tpp_sample_period,
            promotions_per_period: cfg.tpp_promotions_per_period,
            window_start: Nanos::ZERO,
            window_counts: HashMap::new(),
            candidates: Vec::new(),
            windows: 0,
        }
    }

    /// Records an access to an SSD-resident page at time `now`. TPP's NUMA
    /// hint faults sample only a subset of accesses; sampling 1 in 8 keeps
    /// the bookkeeping cost realistic while still finding hot pages.
    pub fn record_access(&mut self, lpa: Lpa, now: Nanos) {
        self.roll_window(now);
        // Deterministic 1-in-8 sampling keyed by page and window count.
        if (lpa.index().wrapping_add(self.windows)).is_multiple_of(8) {
            *self.window_counts.entry(lpa).or_insert(0) += 1;
        }
    }

    /// Advances the sampling window if `now` has passed its end, turning the
    /// pages sampled at least twice into promotion candidates (second-touch
    /// promotion as in TPP/NUMA balancing).
    pub fn roll_window(&mut self, now: Nanos) {
        while now >= self.window_start + self.period {
            let mut hot: Vec<(Lpa, u32)> = self
                .window_counts
                .drain()
                .filter(|(_, c)| *c >= 2)
                .collect();
            hot.sort_unstable_by_key(|(lpa, c)| (std::cmp::Reverse(*c), lpa.index()));
            self.candidates.extend(
                hot.into_iter()
                    .take(self.promotions_per_period as usize)
                    .map(|(l, _)| l),
            );
            self.window_start += self.period;
            self.windows += 1;
        }
    }

    /// Takes the next promotion candidate, if any.
    pub fn take_candidate(&mut self) -> Option<Lpa> {
        self.candidates.pop()
    }

    /// Number of candidates waiting to be promoted.
    pub fn pending_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of completed sampling windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> TppSampler {
        let cfg = MigrationConfig {
            tpp_sample_period: Nanos::from_micros(100),
            tpp_promotions_per_period: 4,
            ..MigrationConfig::default()
        };
        TppSampler::new(&cfg)
    }

    #[test]
    fn hot_pages_become_candidates_after_a_window() {
        let mut s = sampler();
        // LPA 0 is sampled (0 % 8 == 0 in window 0); touch it many times.
        for i in 0..20u64 {
            s.record_access(Lpa::new(0), Nanos::new(i * 1000));
        }
        assert_eq!(s.pending_candidates(), 0, "no candidates mid-window");
        s.roll_window(Nanos::from_micros(200));
        assert!(s.windows() >= 1);
        assert_eq!(s.take_candidate(), Some(Lpa::new(0)));
        assert_eq!(s.take_candidate(), None);
    }

    #[test]
    fn single_touch_pages_are_not_promoted() {
        let mut s = sampler();
        s.record_access(Lpa::new(0), Nanos::new(10));
        s.roll_window(Nanos::from_micros(200));
        assert_eq!(s.pending_candidates(), 0);
    }

    #[test]
    fn promotions_per_window_are_bounded() {
        let mut s = sampler();
        // Touch many sampled pages (multiples of 8 are sampled in window 0).
        for page in (0..200u64).map(|p| p * 8) {
            for t in 0..3u64 {
                s.record_access(Lpa::new(page), Nanos::new(t * 10));
            }
        }
        s.roll_window(Nanos::from_micros(150));
        assert_eq!(
            s.pending_candidates(),
            4,
            "bounded by promotions_per_period"
        );
    }

    #[test]
    fn sampling_misses_unsampled_pages() {
        let mut s = sampler();
        // LPA 3 is not sampled in window 0 (3 % 8 != 0): never promoted even
        // if very hot — the inaccuracy the paper attributes to TPP.
        for i in 0..50u64 {
            s.record_access(Lpa::new(3), Nanos::new(i * 100));
        }
        s.roll_window(Nanos::from_micros(200));
        assert_eq!(s.pending_candidates(), 0);
    }
}
