//! The CXL-aware thread scheduler (§III-A).
//!
//! When the Long Delay Exception handler yields the CPU, the scheduler picks
//! the next runnable thread according to one of three policies evaluated in
//! the paper (Figure 10): Round-Robin, Random, or CFS (smallest received
//! execution time). The yielded thread is re-enqueued (or blocked until the
//! SSD expects its data to be ready) so it can be scheduled again later.

use crate::thread::{BlockReason, ThreadControlBlock, ThreadId, ThreadState};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use skybyte_types::{Nanos, SchedPolicy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Scheduler activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Context switches performed (thread yielded and another picked).
    pub context_switches: u64,
    /// Total time charged for context-switch overhead.
    pub context_switch_time: Nanos,
    /// Number of times a core asked for work and found no runnable thread.
    pub idle_picks: u64,
}

/// The run queue plus per-thread bookkeeping.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedPolicy,
    cs_overhead: Nanos,
    threads: Vec<ThreadControlBlock>,
    running: HashMap<u32, ThreadId>,
    rng: ChaCha12Rng,
    rr_counter: u64,
    stats: SchedStats,
    // Pending wake-ups of blocked threads, keyed `(until, thread index)`.
    // Exact by construction: a thread enters `Blocked` only through
    // `yield_current` (one heap push) and leaves it only through
    // `unblock_expired` (one pop) or `finish_thread` (which purges its
    // entry), so the heap top IS the next wake-up — no polling scan.
    wakeups: BinaryHeap<Reverse<(Nanos, u32)>>,
    // Reusable drain buffer for `unblock_expired`; kept on the struct so the
    // hot path does not allocate per call.
    expired_scratch: Vec<u32>,
}

impl Scheduler {
    /// Creates a scheduler with the given policy, context-switch overhead
    /// (2 µs in Table II) and RNG seed (used by the Random policy only).
    pub fn new(policy: SchedPolicy, cs_overhead: Nanos, seed: u64) -> Self {
        Scheduler {
            policy,
            cs_overhead,
            threads: Vec::new(),
            running: HashMap::new(),
            rng: ChaCha12Rng::seed_from_u64(seed),
            rr_counter: 0,
            stats: SchedStats::default(),
            wakeups: BinaryHeap::new(),
            expired_scratch: Vec::new(),
        }
    }

    /// Creates a new runnable thread and returns its id.
    pub fn spawn(&mut self) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        let mut tcb = ThreadControlBlock::new(id);
        self.rr_counter += 1;
        tcb.rr_seq = self.rr_counter;
        self.threads.push(tcb);
        id
    }

    /// The scheduling policy in use.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The per-switch overhead charged to the core.
    pub fn context_switch_overhead(&self) -> Nanos {
        self.cs_overhead
    }

    /// Immutable access to a thread's control block.
    ///
    /// # Panics
    ///
    /// Panics if the thread id was not produced by [`Scheduler::spawn`].
    pub fn thread(&self, id: ThreadId) -> &ThreadControlBlock {
        &self.threads[id.0 as usize]
    }

    /// Number of threads that have not finished.
    pub fn unfinished_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.is_finished()).count()
    }

    /// Whether every thread has finished its trace.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(ThreadControlBlock::is_finished)
    }

    /// Number of runnable threads waiting for a core.
    pub fn runnable_count(&self) -> usize {
        self.threads.iter().filter(|t| t.is_runnable()).count()
    }

    /// The thread currently running on `core`, if any.
    pub fn running_on(&self, core: u32) -> Option<ThreadId> {
        self.running.get(&core).copied()
    }

    /// Makes blocked threads whose wake-up time has passed runnable again.
    ///
    /// Fires on the wake-up heap rather than scanning every thread: O(1)
    /// when nothing expired. Expired threads are made runnable in thread
    /// index order, preserving the rotation sequence the old full scan
    /// assigned.
    pub fn unblock_expired(&mut self, now: Nanos) {
        if !matches!(self.wakeups.peek(), Some(&Reverse((until, _))) if until <= now) {
            return;
        }
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        while let Some(&Reverse((until, idx))) = self.wakeups.peek() {
            if until > now {
                break;
            }
            self.wakeups.pop();
            expired.push(idx);
        }
        expired.sort_unstable();
        for idx in expired.iter().copied() {
            let t = &mut self.threads[idx as usize];
            debug_assert!(matches!(t.state, ThreadState::Blocked { .. }));
            t.state = ThreadState::Runnable;
            self.rr_counter += 1;
            t.rr_seq = self.rr_counter;
        }
        self.expired_scratch = expired;
    }

    /// Earliest wake-up time among blocked threads, if any (used by idle
    /// cores to decide how long to sleep). O(1): the wake-up heap's top.
    pub fn next_wakeup(&self) -> Option<Nanos> {
        self.wakeups.peek().map(|&Reverse((until, _))| until)
    }

    /// Picks the next thread to run on `core` according to the policy and
    /// marks it running. Returns `None` (and counts an idle pick) if no
    /// thread is runnable.
    pub fn schedule_on(&mut self, core: u32, now: Nanos) -> Option<ThreadId> {
        self.unblock_expired(now);
        let candidate = self.pick_next(&mut |_| true);
        self.commit_pick(core, candidate)
    }

    /// Like [`Scheduler::schedule_on`], but restricts the pick to runnable
    /// threads for which `allow` returns `true`, falling back to any
    /// runnable thread when no allowed one exists (work conserving). Used by
    /// tenant-aware scheduling hooks that bias cores toward particular
    /// tenants without ever idling a core that has work.
    pub fn schedule_on_filtered(
        &mut self,
        core: u32,
        now: Nanos,
        allow: &mut dyn FnMut(ThreadId) -> bool,
    ) -> Option<ThreadId> {
        self.unblock_expired(now);
        let candidate = self
            .pick_next(allow)
            .or_else(|| self.pick_next(&mut |_| true));
        self.commit_pick(core, candidate)
    }

    fn commit_pick(&mut self, core: u32, candidate: Option<ThreadId>) -> Option<ThreadId> {
        match candidate {
            Some(id) => {
                self.threads[id.0 as usize].state = ThreadState::Running { core };
                self.running.insert(core, id);
                Some(id)
            }
            None => {
                self.stats.idle_picks += 1;
                None
            }
        }
    }

    /// Handles the Long Delay Exception (or a voluntary yield) of the thread
    /// running on `core`: the thread stops running, is blocked until
    /// `wake_at` (or immediately runnable if `wake_at <= now`), and the
    /// context-switch overhead is recorded. The caller then calls
    /// [`Scheduler::schedule_on`] to pick the next thread.
    ///
    /// Returns the yielded thread, or `None` if the core was idle.
    pub fn yield_current(
        &mut self,
        core: u32,
        now: Nanos,
        wake_at: Nanos,
        reason: BlockReason,
    ) -> Option<ThreadId> {
        let id = self.running.remove(&core)?;
        let t = &mut self.threads[id.0 as usize];
        t.switches += 1;
        if wake_at > now {
            t.state = ThreadState::Blocked {
                reason,
                until: wake_at,
            };
            self.wakeups.push(Reverse((wake_at, id.0)));
        } else {
            t.state = ThreadState::Runnable;
            self.rr_counter += 1;
            t.rr_seq = self.rr_counter;
        }
        self.stats.context_switches += 1;
        self.stats.context_switch_time += self.cs_overhead;
        Some(id)
    }

    /// Charges `delta` of received execution time to a thread (its CFS
    /// vruntime; all threads have equal weight).
    pub fn account_runtime(&mut self, id: ThreadId, delta: Nanos) {
        self.threads[id.0 as usize].vruntime += delta;
    }

    /// Marks a thread as finished and frees its core if it was running.
    pub fn finish_thread(&mut self, id: ThreadId) {
        match self.threads[id.0 as usize].state {
            ThreadState::Running { core } => {
                self.running.remove(&core);
            }
            // Finishing a blocked thread (not something the engine does, but
            // the API allows it) must not leave a stale wake-up behind:
            // cold path, so an O(n) heap rebuild is fine.
            ThreadState::Blocked { .. } => {
                let keep: Vec<_> = self
                    .wakeups
                    .drain()
                    .filter(|&Reverse((_, idx))| idx != id.0)
                    .collect();
                self.wakeups = BinaryHeap::from(keep);
            }
            _ => {}
        }
        self.threads[id.0 as usize].state = ThreadState::Finished;
    }

    /// Records `n` idle picks without going through a schedule call — used
    /// by the event-driven engine when it coalesces a parked core's pending
    /// 1 µs idle iterations into one batched advance.
    pub fn record_idle_picks(&mut self, n: u64) {
        self.stats.idle_picks += n;
    }

    /// Scheduler statistics.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    // Picks among runnable threads satisfying `allow` without materialising
    // the candidate set: one (for Random, two) iterator pass(es) over the
    // thread table, no per-call allocation. `allow` must be pure — the
    // Random policy evaluates it once per thread per pass.
    fn pick_next(&mut self, allow: &mut dyn FnMut(ThreadId) -> bool) -> Option<ThreadId> {
        match self.policy {
            // `min_by_key` keeps the first minimum, i.e. the lowest thread
            // index on equal keys — same tie-break as the old indexed scan.
            SchedPolicy::RoundRobin => self
                .threads
                .iter()
                .filter(|t| t.is_runnable() && allow(t.id))
                .min_by_key(|t| t.rr_seq)
                .map(|t| t.id),
            SchedPolicy::Random => {
                let count = self
                    .threads
                    .iter()
                    .filter(|t| t.is_runnable() && allow(t.id))
                    .count();
                if count == 0 {
                    // The RNG must stay untouched on an empty pick so the
                    // random stream matches the collected-Vec original.
                    return None;
                }
                let idx = self.rng.gen_range(0..count);
                self.threads
                    .iter()
                    .filter(|t| t.is_runnable() && allow(t.id))
                    .nth(idx)
                    .map(|t| t.id)
            }
            SchedPolicy::Cfs => self
                .threads
                .iter()
                .filter(|t| t.is_runnable() && allow(t.id))
                .min_by_key(|t| (t.vruntime, t.id.0))
                .map(|t| t.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: SchedPolicy) -> Scheduler {
        Scheduler::new(policy, Nanos::from_micros(2), 7)
    }

    #[test]
    fn spawn_and_schedule() {
        let mut s = sched(SchedPolicy::Cfs);
        let a = s.spawn();
        let b = s.spawn();
        assert_eq!(s.runnable_count(), 2);
        let first = s.schedule_on(0, Nanos::ZERO).unwrap();
        assert!(first == a || first == b);
        assert_eq!(s.running_on(0), Some(first));
        assert_eq!(s.runnable_count(), 1);
        let second = s.schedule_on(1, Nanos::ZERO).unwrap();
        assert_ne!(first, second);
        assert!(s.schedule_on(2, Nanos::ZERO).is_none());
        assert_eq!(s.stats().idle_picks, 1);
    }

    #[test]
    fn cfs_prefers_least_vruntime() {
        let mut s = sched(SchedPolicy::Cfs);
        let a = s.spawn();
        let b = s.spawn();
        s.account_runtime(a, Nanos::from_micros(100));
        s.account_runtime(b, Nanos::from_micros(1));
        let picked = s.schedule_on(0, Nanos::ZERO).unwrap();
        assert_eq!(picked, b);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = sched(SchedPolicy::RoundRobin);
        let a = s.spawn();
        let b = s.spawn();
        let c = s.spawn();
        // Spawn order determines the first rotation.
        let first = s.schedule_on(0, Nanos::ZERO).unwrap();
        assert_eq!(first, a);
        // Yield a (immediately runnable again): it goes to the back.
        s.yield_current(0, Nanos::ZERO, Nanos::ZERO, BlockReason::LongSsdAccess);
        assert_eq!(s.schedule_on(0, Nanos::ZERO).unwrap(), b);
        s.yield_current(0, Nanos::ZERO, Nanos::ZERO, BlockReason::LongSsdAccess);
        assert_eq!(s.schedule_on(0, Nanos::ZERO).unwrap(), c);
        s.yield_current(0, Nanos::ZERO, Nanos::ZERO, BlockReason::LongSsdAccess);
        assert_eq!(s.schedule_on(0, Nanos::ZERO).unwrap(), a);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = Scheduler::new(SchedPolicy::Random, Nanos::ZERO, seed);
            for _ in 0..8 {
                s.spawn();
            }
            let mut order = Vec::new();
            for _ in 0..8 {
                let t = s.schedule_on(0, Nanos::ZERO).unwrap();
                order.push(t);
                s.yield_current(0, Nanos::ZERO, Nanos::from_secs(1), BlockReason::Other);
            }
            order
        };
        assert_eq!(run(1), run(1));
        // With eight threads two different seeds almost surely differ.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn yield_blocks_until_wakeup() {
        let mut s = sched(SchedPolicy::Cfs);
        let a = s.spawn();
        s.schedule_on(0, Nanos::ZERO);
        let wake = Nanos::from_micros(10);
        let yielded = s
            .yield_current(0, Nanos::ZERO, wake, BlockReason::LongSsdAccess)
            .unwrap();
        assert_eq!(yielded, a);
        assert_eq!(s.runnable_count(), 0);
        assert_eq!(s.next_wakeup(), Some(wake));
        // Before the wakeup time nothing is runnable.
        assert!(s.schedule_on(0, Nanos::from_micros(5)).is_none());
        // After it, the thread runs again.
        assert_eq!(s.schedule_on(0, wake), Some(a));
        assert_eq!(s.stats().context_switches, 1);
        assert_eq!(s.stats().context_switch_time, Nanos::from_micros(2));
        assert_eq!(s.thread(a).switches, 1);
    }

    #[test]
    fn yield_on_idle_core_is_none() {
        let mut s = sched(SchedPolicy::Cfs);
        s.spawn();
        assert!(s
            .yield_current(3, Nanos::ZERO, Nanos::ZERO, BlockReason::Other)
            .is_none());
    }

    #[test]
    fn filtered_schedule_prefers_allowed_threads_but_is_work_conserving() {
        let mut s = sched(SchedPolicy::Cfs);
        let a = s.spawn();
        let b = s.spawn();
        // CFS would pick `a` (equal vruntime, lowest id); the filter steers
        // the pick to `b`.
        let picked = s
            .schedule_on_filtered(0, Nanos::ZERO, &mut |id| id == b)
            .unwrap();
        assert_eq!(picked, b);
        // With no allowed thread runnable, the pick falls back to any
        // runnable thread rather than idling the core.
        let fallback = s
            .schedule_on_filtered(1, Nanos::ZERO, &mut |id| id == b)
            .unwrap();
        assert_eq!(fallback, a);
        // A filtered pick is not a context switch.
        assert_eq!(s.stats().context_switches, 0);
        // Nothing runnable at all still counts an idle pick.
        assert!(s
            .schedule_on_filtered(2, Nanos::ZERO, &mut |_| true)
            .is_none());
        assert_eq!(s.stats().idle_picks, 1);
    }

    #[test]
    fn finish_thread_frees_core() {
        let mut s = sched(SchedPolicy::Cfs);
        let a = s.spawn();
        s.schedule_on(0, Nanos::ZERO);
        s.finish_thread(a);
        assert!(s.all_finished());
        assert_eq!(s.unfinished_threads(), 0);
        assert_eq!(s.running_on(0), None);
        assert!(s.schedule_on(0, Nanos::ZERO).is_none());
    }
}
