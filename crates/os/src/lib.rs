//! Host operating-system substrate for the SkyByte simulator.
//!
//! SkyByte co-designs the OS with the SSD controller. The OS-side pieces
//! modelled here are:
//!
//! * [`sched`] — the run queue and the CXL-aware thread scheduling policies
//!   (Round-Robin, Random, CFS) invoked by the *Long Delay Exception* handler
//!   (§III-A);
//! * [`thread`] — thread control blocks with vruntime and blocking state;
//! * [`vm`] — the page table mapping virtual pages to host DRAM or the
//!   CXL-SSD, plus a TLB model with shootdown accounting (page migrations
//!   update the PTE and invalidate the TLB entry, §III-C);
//! * [`memory`] — the host-DRAM promotion pool with Linux-style
//!   active/inactive lists used to pick "cold" pages for eviction back to the
//!   SSD when the promotion budget fills up;
//! * [`tpp`] — a TPP-style periodic-sampling hotness estimator used by the
//!   SkyByte-CT / SkyByte-WCT comparison points (§VI-H).
//!
//! # Example
//!
//! ```
//! use skybyte_os::prelude::*;
//! use skybyte_types::prelude::*;
//!
//! let mut sched = Scheduler::new(SchedPolicy::Cfs, Nanos::from_micros(2), 42);
//! let t0 = sched.spawn();
//! let t1 = sched.spawn();
//! let core = 0;
//! let first = sched.schedule_on(core, Nanos::ZERO).unwrap();
//! assert!(first == t0 || first == t1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod sched;
pub mod thread;
pub mod tpp;
pub mod vm;

/// Commonly used items.
pub mod prelude {
    pub use crate::memory::{HostMemoryPool, PoolDecision};
    pub use crate::sched::{SchedStats, Scheduler};
    pub use crate::thread::{BlockReason, ThreadId, ThreadState};
    pub use crate::tpp::TppSampler;
    pub use crate::vm::{PagePlacement, PageTable, Tlb};
}

pub use memory::{HostMemoryPool, PoolDecision};
pub use sched::{SchedStats, Scheduler};
pub use thread::{BlockReason, ThreadControlBlock, ThreadId, ThreadState};
pub use tpp::TppSampler;
pub use vm::{PagePlacement, PageTable, Tlb};
