//! The host-DRAM promotion pool and Linux-style page reclamation.
//!
//! The host reserves a bounded budget of DRAM (2 GiB in Table II) for pages
//! promoted from the CXL-SSD. When the budget is exhausted, SkyByte uses the
//! existing Linux page-reclamation machinery to find a relatively cold page —
//! tracked with active/inactive lists — evict it back to the SSD, and reuse
//! its host frame (§III-C).

use serde::{Deserialize, Serialize};
use skybyte_types::{FastHashMap, Lpa, PageNumber, PAGE_SIZE};
use std::collections::VecDeque;

/// Result of asking the pool to make room for a new promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolDecision {
    /// A free host frame was available.
    Allocated(PageNumber),
    /// The budget is full: the given cold page must be evicted back to the
    /// SSD first, then the promotion can retry.
    NeedsEviction(Lpa),
}

/// The bounded pool of host-DRAM frames holding promoted SSD pages, with
/// active/inactive LRU lists for reclamation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostMemoryPool {
    capacity_pages: u64,
    next_frame: u64,
    free_frames: Vec<PageNumber>,
    /// Promoted pages: SSD LPA → host frame.
    resident: FastHashMap<Lpa, PageNumber>,
    /// Recently-used promoted pages (most recent at the back).
    active: VecDeque<Lpa>,
    /// Not recently used pages, candidates for eviction (oldest at front).
    inactive: VecDeque<Lpa>,
    promotions: u64,
    evictions: u64,
}

impl HostMemoryPool {
    /// Creates a pool with a budget of `capacity_bytes` of host DRAM.
    pub fn new(capacity_bytes: u64) -> Self {
        HostMemoryPool {
            capacity_pages: capacity_bytes / PAGE_SIZE as u64,
            next_frame: 0,
            free_frames: Vec::new(),
            resident: FastHashMap::default(),
            active: VecDeque::new(),
            inactive: VecDeque::new(),
            promotions: 0,
            evictions: 0,
        }
    }

    /// Maximum number of promoted pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Number of pages currently promoted.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Whether `lpa` is currently promoted.
    pub fn contains(&self, lpa: Lpa) -> bool {
        self.resident.contains_key(&lpa)
    }

    /// The host frame holding `lpa`, if promoted.
    pub fn host_page_of(&self, lpa: Lpa) -> Option<PageNumber> {
        self.resident.get(&lpa).copied()
    }

    /// Tries to allocate a host frame for promoting `lpa`.
    ///
    /// Returns [`PoolDecision::Allocated`] and records the residency when a
    /// frame is available, or [`PoolDecision::NeedsEviction`] naming the
    /// coldest resident page when the budget is full. Promoting a page that
    /// is already resident returns its existing frame.
    pub fn promote(&mut self, lpa: Lpa) -> PoolDecision {
        if let Some(&frame) = self.resident.get(&lpa) {
            return PoolDecision::Allocated(frame);
        }
        if self.resident.len() as u64 >= self.capacity_pages {
            let victim = self.reclaim_candidate();
            return match victim {
                Some(v) => PoolDecision::NeedsEviction(v),
                // Capacity zero: force the caller to skip promotion.
                None => PoolDecision::NeedsEviction(lpa),
            };
        }
        let frame = self.free_frames.pop().unwrap_or_else(|| {
            let f = PageNumber(self.next_frame);
            self.next_frame += 1;
            f
        });
        self.resident.insert(lpa, frame);
        self.inactive.push_back(lpa);
        self.promotions += 1;
        PoolDecision::Allocated(frame)
    }

    /// Records an access to a promoted page: second touches move the page
    /// from the inactive to the active list, like the Linux workingset code.
    pub fn record_access(&mut self, lpa: Lpa) {
        if !self.resident.contains_key(&lpa) {
            return;
        }
        if let Some(pos) = self.inactive.iter().position(|l| *l == lpa) {
            self.inactive.remove(pos);
            self.active.push_back(lpa);
        } else if let Some(pos) = self.active.iter().position(|l| *l == lpa) {
            // Refresh LRU position within the active list.
            self.active.remove(pos);
            self.active.push_back(lpa);
        }
    }

    /// Evicts a promoted page, freeing its frame. Returns the freed frame, or
    /// `None` if the page was not resident.
    pub fn evict(&mut self, lpa: Lpa) -> Option<PageNumber> {
        let frame = self.resident.remove(&lpa)?;
        self.active.retain(|l| *l != lpa);
        self.inactive.retain(|l| *l != lpa);
        self.free_frames.push(frame);
        self.evictions += 1;
        Some(frame)
    }

    /// The page the reclamation policy would evict next: the oldest inactive
    /// page, falling back to the oldest active page (with active pages aged
    /// into the inactive list first, as in Linux).
    pub fn reclaim_candidate(&mut self) -> Option<Lpa> {
        if self.inactive.is_empty() {
            // Age the active list: move the oldest half to inactive.
            let n = self.active.len().div_ceil(2);
            for _ in 0..n {
                if let Some(l) = self.active.pop_front() {
                    self.inactive.push_back(l);
                }
            }
        }
        self.inactive.front().copied()
    }

    /// Number of promotions performed.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Number of evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(pages: u64) -> HostMemoryPool {
        HostMemoryPool::new(pages * PAGE_SIZE as u64)
    }

    #[test]
    fn promote_until_full_then_reclaim() {
        let mut p = pool(2);
        assert_eq!(p.capacity_pages(), 2);
        let a = p.promote(Lpa::new(1));
        let b = p.promote(Lpa::new(2));
        assert!(matches!(a, PoolDecision::Allocated(_)));
        assert!(matches!(b, PoolDecision::Allocated(_)));
        assert_eq!(p.resident_pages(), 2);
        // Third promotion requires evicting the coldest page (LPA 1, never
        // re-touched).
        match p.promote(Lpa::new(3)) {
            PoolDecision::NeedsEviction(victim) => assert_eq!(victim, Lpa::new(1)),
            other => panic!("expected eviction, got {other:?}"),
        }
        let freed = p.evict(Lpa::new(1)).unwrap();
        match p.promote(Lpa::new(3)) {
            PoolDecision::Allocated(frame) => assert_eq!(frame, freed),
            other => panic!("expected allocation, got {other:?}"),
        }
        assert_eq!(p.promotions(), 3);
        assert_eq!(p.evictions(), 1);
    }

    #[test]
    fn accessed_pages_are_protected_from_reclaim() {
        let mut p = pool(2);
        p.promote(Lpa::new(1));
        p.promote(Lpa::new(2));
        // Touch page 1: it moves to the active list; page 2 stays inactive.
        p.record_access(Lpa::new(1));
        match p.promote(Lpa::new(3)) {
            PoolDecision::NeedsEviction(victim) => assert_eq!(victim, Lpa::new(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn active_list_ages_when_inactive_empty() {
        let mut p = pool(2);
        p.promote(Lpa::new(1));
        p.promote(Lpa::new(2));
        p.record_access(Lpa::new(1));
        p.record_access(Lpa::new(2));
        // Both active; reclamation must still find a victim by aging.
        let victim = p.reclaim_candidate();
        assert!(victim.is_some());
    }

    #[test]
    fn repromoting_resident_page_returns_same_frame() {
        let mut p = pool(2);
        let first = match p.promote(Lpa::new(5)) {
            PoolDecision::Allocated(f) => f,
            _ => unreachable!(),
        };
        match p.promote(Lpa::new(5)) {
            PoolDecision::Allocated(f) => assert_eq!(f, first),
            _ => panic!("resident page should stay allocated"),
        }
        assert_eq!(p.resident_pages(), 1);
        assert_eq!(p.host_page_of(Lpa::new(5)), Some(first));
        assert!(p.contains(Lpa::new(5)));
    }

    #[test]
    fn evicting_missing_page_is_none() {
        let mut p = pool(1);
        assert!(p.evict(Lpa::new(9)).is_none());
        p.record_access(Lpa::new(9)); // harmless on non-resident pages
    }

    #[test]
    fn zero_capacity_pool_never_allocates() {
        let mut p = pool(0);
        assert!(matches!(
            p.promote(Lpa::new(1)),
            PoolDecision::NeedsEviction(_)
        ));
        assert_eq!(p.resident_pages(), 0);
    }
}
