//! Thread control blocks.

use serde::{Deserialize, Serialize};
use skybyte_types::Nanos;
use std::fmt;

/// Identifier of an application thread.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// Waiting for a long CXL-SSD access; the thread was context-switched
    /// away by the Long Delay Exception and becomes runnable when the SSD
    /// data is expected to be ready.
    LongSsdAccess,
    /// Waiting for a page migration involving one of its pages to finish.
    PageMigration,
    /// Any other reason (I/O, synchronisation) — not used by the core
    /// experiments but kept for completeness.
    Other,
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Ready to run, sitting in the run queue.
    Runnable,
    /// Currently executing on a core.
    Running {
        /// The core the thread occupies.
        core: u32,
    },
    /// Blocked until (at least) the given time.
    Blocked {
        /// Reason for blocking.
        reason: BlockReason,
        /// Earliest time the thread becomes runnable again.
        until: Nanos,
    },
    /// The thread has exhausted its trace.
    Finished,
}

/// Book-keeping for one thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadControlBlock {
    /// The thread identifier.
    pub id: ThreadId,
    /// Current state.
    pub state: ThreadState,
    /// Total CPU time received (the CFS vruntime; all threads share the same
    /// weight, so vruntime equals received execution time).
    pub vruntime: Nanos,
    /// Number of times this thread has been context-switched away.
    pub switches: u64,
    /// Round-robin enqueue sequence number (used by the RR policy).
    pub(crate) rr_seq: u64,
}

impl ThreadControlBlock {
    /// Creates a runnable thread.
    pub fn new(id: ThreadId) -> Self {
        ThreadControlBlock {
            id,
            state: ThreadState::Runnable,
            vruntime: Nanos::ZERO,
            switches: 0,
            rr_seq: 0,
        }
    }

    /// Whether the thread can be picked by the scheduler.
    pub fn is_runnable(&self) -> bool {
        matches!(self.state, ThreadState::Runnable)
    }

    /// Whether the thread has finished its trace.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, ThreadState::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_thread_is_runnable() {
        let t = ThreadControlBlock::new(ThreadId(3));
        assert!(t.is_runnable());
        assert!(!t.is_finished());
        assert_eq!(t.vruntime, Nanos::ZERO);
        assert_eq!(format!("{}", t.id), "T3");
    }

    #[test]
    fn state_transitions_reflect_predicates() {
        let mut t = ThreadControlBlock::new(ThreadId(0));
        t.state = ThreadState::Running { core: 1 };
        assert!(!t.is_runnable());
        t.state = ThreadState::Blocked {
            reason: BlockReason::LongSsdAccess,
            until: Nanos::from_micros(5),
        };
        assert!(!t.is_runnable());
        t.state = ThreadState::Finished;
        assert!(t.is_finished());
    }
}
