//! Plain-text rendering of the regenerated figures and tables.

use crate::experiments::{self, ExperimentTable};
use crate::runner::Runner;
use crate::scale::ExperimentScale;
use std::fmt::Write as _;

/// Renders an [`ExperimentTable`] as an aligned plain-text table.
pub fn render(table: &ExperimentTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", table.id, table.title);
    // Column widths.
    let label_width = table
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once("workload".len()))
        .max()
        .unwrap_or(8);
    let col_width = table
        .columns
        .iter()
        .map(|c| c.len().max(10))
        .collect::<Vec<_>>();
    let _ = write!(out, "{:label_width$}", "");
    for (c, w) in table.columns.iter().zip(&col_width) {
        let _ = write!(out, "  {c:>w$}");
    }
    let _ = writeln!(out);
    for (label, values) in &table.rows {
        let _ = write!(out, "{label:label_width$}");
        for (v, w) in values.iter().zip(&col_width) {
            if v.abs() >= 1000.0 {
                let _ = write!(out, "  {v:>w$.0}");
            } else {
                let _ = write!(out, "  {v:>w$.3}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Regenerates one figure's [`ExperimentTable`] by number, executing the
/// required simulations on `runner` (sharing its memo table with every other
/// figure regenerated through the same runner).
///
/// Supported figures: 2, 3, 4, 5, 6, 9, 10, 14, 15, 16, 17, 18, 19, 20, 21,
/// 22 and 23 (the remaining figures are architecture diagrams with no data).
///
/// # Panics
///
/// Panics if the figure number has no data series in the paper.
pub fn figure_table(runner: &Runner, figure: u32, scale: &ExperimentScale) -> ExperimentTable {
    match figure {
        2 => experiments::fig02_dram_vs_cssd(runner, scale),
        3 => experiments::fig03_latency_distribution(runner, scale),
        4 => experiments::fig04_boundedness(runner, scale),
        5 => experiments::fig05_06_locality_cdf(scale, false),
        6 => experiments::fig05_06_locality_cdf(scale, true),
        9 => experiments::fig09_threshold_sweep(runner, scale),
        10 => experiments::fig10_sched_policies(runner, scale),
        14 => experiments::fig14_main_ablation(runner, scale),
        15 => experiments::fig15_thread_scaling(runner, scale),
        16 => experiments::fig16_request_breakdown(runner, scale),
        17 => experiments::fig17_amat(runner, scale),
        18 => experiments::fig18_write_traffic(runner, scale),
        19 | 20 => experiments::fig19_20_write_log_sweep(runner, scale),
        21 => experiments::fig21_dram_size_sweep(runner, scale),
        22 => experiments::fig22_flash_latency_sweep(runner, scale),
        23 => experiments::fig23_migration_mechanisms(runner, scale),
        other => panic!("figure {other} has no data series (architecture diagram)"),
    }
}

/// Regenerates a figure by the harness's name for it: a paper figure number
/// (`"14"`) or one of the repository's own experiments (`"mt"`, the
/// multi-tenant interference study, `"policy"`, the pluggable-policy
/// ablation, or `"fleet"`, the multi-device placement sweep). This is what
/// `figures --fig` resolves.
pub fn figure_table_named(
    runner: &Runner,
    name: &str,
    scale: &ExperimentScale,
) -> Result<ExperimentTable, String> {
    if name == "mt" {
        return Ok(experiments::fig_mt_interference(runner, scale));
    }
    if name == "policy" {
        return Ok(experiments::fig_policy_ablation(runner, scale));
    }
    if name == "fleet" {
        return Ok(crate::fleet::fig_fleet(runner, scale));
    }
    let number: u32 = name.parse().map_err(|_| {
        format!("unknown figure '{name}' (paper figure number, 'mt', 'policy' or 'fleet')")
    })?;
    if !DATA_FIGURES.contains(&number) {
        return Err(format!(
            "figure {number} has no data series (architecture diagram)"
        ));
    }
    Ok(figure_table(runner, number, scale))
}

/// Regenerates one paper table's [`ExperimentTable`] by number (1–4).
///
/// # Panics
///
/// Panics if the table number is not 1, 2, 3 or 4.
pub fn paper_table(runner: &Runner, table: u32, scale: &ExperimentScale) -> ExperimentTable {
    match table {
        1 => experiments::table1_workloads(),
        2 => experiments::table2_parameters(),
        3 => experiments::table3_flash_read_latency(runner, scale),
        4 => experiments::table4_nand_parameters(),
        other => panic!("table {other} does not exist in the paper"),
    }
}

/// Regenerates and renders one figure of the paper by number; see
/// [`figure_table`].
///
/// # Panics
///
/// Panics if the figure number has no data series in the paper.
pub fn render_figure(runner: &Runner, figure: u32, scale: &ExperimentScale) -> String {
    render(&figure_table(runner, figure, scale))
}

/// Regenerates and renders one table of the paper by number (1–4); see
/// [`paper_table`].
///
/// # Panics
///
/// Panics if the table number is not 1, 2, 3 or 4.
pub fn render_table(runner: &Runner, table: u32, scale: &ExperimentScale) -> String {
    render(&paper_table(runner, table, scale))
}

/// The figures that carry data series (everything the harness can render).
pub const DATA_FIGURES: [u32; 17] = [2, 3, 4, 5, 6, 9, 10, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentTable;

    #[test]
    fn render_formats_rows_and_columns() {
        let mut t = ExperimentTable {
            id: "figure-xx".into(),
            title: "demo".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![],
        };
        t.rows.push(("bc".into(), vec![1.0, 12345.0]));
        let s = render(&t);
        assert!(s.contains("figure-xx"));
        assert!(s.contains("bc"));
        assert!(s.contains("12345"));
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn tables_1_and_4_render_without_simulation() {
        let runner = Runner::new(1);
        let scale = crate::scale::ExperimentScale::tiny();
        let t1 = render_table(&runner, 1, &scale);
        assert!(t1.contains("tpcc"));
        let t4 = render_table(&runner, 4, &scale);
        assert!(t4.contains("MLC"));
        let t2 = render_table(&runner, 2, &scale);
        assert!(t2.contains("cs.threshold_us"));
        assert_eq!(runner.runs_executed(), 0, "tables 1/2/4 simulate nothing");
    }

    #[test]
    fn csv_export_round_trips_labels_and_values() {
        let mut t = ExperimentTable {
            id: "figure-xx".into(),
            title: "demo".into(),
            columns: vec!["plain".into(), "with,comma".into()],
            rows: vec![],
        };
        t.rows.push(("bc".into(), vec![0.5, 31.4]));
        t.rows.push(("a\"b".into(), vec![1.0, 2.0]));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,plain,\"with,comma\""));
        assert_eq!(lines.next(), Some("bc,0.5,31.4"));
        assert_eq!(lines.next(), Some("\"a\"\"b\",1,2"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn figure_and_paper_tables_back_the_renderers() {
        let runner = Runner::new(1);
        let scale = crate::scale::ExperimentScale::tiny().with_accesses_per_thread(200);
        let t = paper_table(&runner, 1, &scale);
        assert_eq!(render(&t), render_table(&runner, 1, &scale));
        let f = figure_table(&runner, 5, &scale);
        assert_eq!(f.id, "figure-05");
        assert!(!f.to_csv().is_empty());
    }

    #[test]
    fn figure_5_renders_quickly() {
        let runner = Runner::new(1);
        let scale = crate::scale::ExperimentScale::tiny().with_accesses_per_thread(200);
        let s = render_figure(&runner, 5, &scale);
        assert!(s.contains("figure-05"));
        assert!(s.contains("dlrm"));
    }

    #[test]
    fn named_lookup_resolves_numbers_and_mt() {
        let runner = Runner::new(1);
        let scale = crate::scale::ExperimentScale::tiny().with_accesses_per_thread(200);
        let f5 = figure_table_named(&runner, "5", &scale).unwrap();
        assert_eq!(f5.id, "figure-05");
        assert!(figure_table_named(&runner, "7", &scale)
            .unwrap_err()
            .contains("architecture diagram"));
        assert!(figure_table_named(&runner, "bogus", &scale)
            .unwrap_err()
            .contains("'fleet'"));
        assert!(figure_table_named(&runner, "bogus", &scale)
            .unwrap_err()
            .contains("unknown figure"));
    }

    #[test]
    #[should_panic(expected = "architecture diagram")]
    fn unknown_figures_panic() {
        let scale = crate::scale::ExperimentScale::tiny();
        let _ = render_figure(&Runner::new(1), 7, &scale);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_tables_panic() {
        let scale = crate::scale::ExperimentScale::tiny();
        let _ = render_table(&Runner::new(1), 9, &scale);
    }
}
