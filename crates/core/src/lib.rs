//! SkyByte full-system simulator.
//!
//! This crate is the top of the stack: it wires the host-side models
//! ([`skybyte_cpu`], [`skybyte_os`], [`skybyte_cxl`]) to the device-side
//! [`skybyte_ssd::SsdController`], drives them with the synthetic workloads
//! of [`skybyte_workloads`], and implements every design point compared in
//! the paper's evaluation:
//!
//! * `Base-CSSD` — the state-of-the-art baseline CXL-SSD,
//! * `SkyByte-C` / `-P` / `-W` / `-CP` / `-WP` / `-Full` — the ablation of
//!   coordinated context switches (C), adaptive page promotion (P) and the
//!   CXL-aware write log (W),
//! * `DRAM-Only` — the infinite-host-DRAM ideal,
//! * `SkyByte-CT` / `-WCT` — TPP-style software migration (§VI-H),
//! * `AstriFlash-CXL` — the AstriFlash comparison point (§VI-H).
//!
//! The [`experiments`] module regenerates every table and figure of the
//! evaluation section; see `EXPERIMENTS.md` at the repository root for the
//! mapping.
//!
//! # Quick start
//!
//! ```
//! use skybyte_sim::{ExperimentScale, Simulation};
//! use skybyte_types::prelude::*;
//! use skybyte_workloads::WorkloadKind;
//!
//! // A deliberately tiny run so the doctest finishes quickly.
//! let scale = ExperimentScale::tiny();
//! let result = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale)
//!     .run();
//! assert!(result.exec_time > Nanos::ZERO);
//! assert!(result.total_accesses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod event;
pub mod experiments;
pub mod fleet;
pub mod metrics;
pub mod migration;
pub mod report;
pub mod runner;
pub mod scale;
pub mod system;
pub mod telemetry;
pub mod tenant_sched;
pub mod thread_exec;

pub use engine::{Simulation, TraceDrive};
pub use event::{Event, EventQueue};
pub use fleet::{
    audit_fleet, device_groups, fig_fleet, interference_scores, placement_policy, rebalance_policy,
    run_fleet, DeviceOutcome, FleetConfig, FleetResult, PlacementPolicy, RebalancePolicy,
    TenantDemand,
};
pub use metrics::{AmatBreakdown, LayerCounters, RequestBreakdown, SimResult, TenantCounters};
pub use migration::{
    AdaptiveTrigger, AstriFlashTrigger, DisabledTrigger, MigrationEngine, MigrationTrigger,
    TppTrigger,
};
pub use report::{figure_table, figure_table_named, paper_table, render_figure, render_table};
pub use runner::{PerfReport, RunRequest, RunTiming, Runner};
pub use scale::ExperimentScale;
pub use system::SystemState;
pub use telemetry::{
    chrome_trace_json, metrics_csv, MetricsLog, MetricsSample, Telemetry, TelemetryOutput,
    Timeline, TimelineEvent,
};
pub use tenant_sched::{FairShareScheduler, PassthroughScheduler, QosScheduler, TenantScheduler};
pub use thread_exec::ThreadExecutor;
