//! Experiment scaling.
//!
//! The paper simulates a 128 GiB SSD with a 512 MiB DRAM cache and workloads
//! of 8–16 GiB; replaying hundreds of millions of trace instructions takes
//! days on a large server (the artifact quotes ~3 days on 32 cores). To keep
//! this reproduction runnable on a laptop, every experiment is executed at a
//! reduced scale that preserves the *ratios* that drive the paper's results:
//!
//! * workload footprint : SSD DRAM cache size (≈16–32 : 1),
//! * SSD DRAM : write log (7 : 1 by default),
//! * host promotion budget : SSD DRAM (4 : 1),
//! * flash geometry scaled so the footprint occupies a comparable fraction
//!   of the device and garbage collection still triggers.
//!
//! The absolute numbers therefore differ from the paper, but the relative
//! behaviour (speed-ups, crossovers, traffic reductions) is preserved, which
//! is what `EXPERIMENTS.md` compares.

use serde::{Deserialize, Serialize};
use skybyte_types::{SimConfig, SsdGeometry, KIB, MIB};
use skybyte_workloads::{WorkloadKind, WorkloadSpec};

/// Scaled-down sizes used by an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Scaled workload footprint in bytes.
    pub footprint_bytes: u64,
    /// Scaled SSD DRAM data-cache size in bytes.
    pub ssd_data_cache_bytes: u64,
    /// Scaled write-log size in bytes.
    pub write_log_bytes: u64,
    /// Scaled host-DRAM promotion budget in bytes.
    pub host_dram_bytes: u64,
    /// Work units (off-chip accesses) executed per thread.
    pub accesses_per_thread: u64,
    /// Scaled flash geometry.
    pub geometry: SsdGeometry,
    /// Fraction of the footprint preconditioned into the FTL before the run
    /// (so GC can trigger, §VI-A).
    pub precondition_fraction: f64,
    /// RNG seed for workload generation and the Random scheduler.
    pub seed: u64,
}

impl ExperimentScale {
    /// The default scale used by the figure harness: a 1 GiB flash device
    /// with a 16 MiB SSD DRAM (14 MiB cache + 2 MiB log), a 64 MiB host
    /// promotion budget and a 256 MiB workload footprint (footprint : SSD
    /// DRAM = 16 : 1 as in the paper's 1:16 locality bucket).
    pub fn default_scale() -> Self {
        ExperimentScale {
            footprint_bytes: 256 * MIB,
            ssd_data_cache_bytes: 14 * MIB,
            write_log_bytes: 2 * MIB,
            host_dram_bytes: 64 * MIB,
            accesses_per_thread: 20_000,
            geometry: SsdGeometry {
                channels: 16,
                chips_per_channel: 2,
                dies_per_chip: 1,
                planes_per_die: 1,
                blocks_per_plane: 128,
                pages_per_block: 64,
                page_size_bytes: 4096,
            },
            precondition_fraction: 0.9,
            seed: 0x5B5B_2025,
        }
    }

    /// A smaller scale for Criterion benchmarks (seconds per data point).
    pub fn bench() -> Self {
        ExperimentScale {
            footprint_bytes: 64 * MIB,
            ssd_data_cache_bytes: 3 * MIB + 512 * KIB,
            write_log_bytes: 512 * KIB,
            host_dram_bytes: 16 * MIB,
            accesses_per_thread: 4_000,
            geometry: SsdGeometry {
                channels: 8,
                chips_per_channel: 2,
                dies_per_chip: 1,
                planes_per_die: 1,
                blocks_per_plane: 64,
                pages_per_block: 64,
                page_size_bytes: 4096,
            },
            precondition_fraction: 0.9,
            seed: 0x5B5B_2025,
        }
    }

    /// A deliberately tiny scale for unit tests and doctests (milliseconds).
    pub fn tiny() -> Self {
        ExperimentScale {
            footprint_bytes: 8 * MIB,
            ssd_data_cache_bytes: 448 * KIB,
            write_log_bytes: 64 * KIB,
            host_dram_bytes: 2 * MIB,
            accesses_per_thread: 800,
            geometry: SsdGeometry {
                channels: 4,
                chips_per_channel: 1,
                dies_per_chip: 1,
                planes_per_die: 1,
                blocks_per_plane: 32,
                pages_per_block: 32,
                page_size_bytes: 4096,
            },
            precondition_fraction: 0.8,
            seed: 7,
        }
    }

    /// Total bytes of the scaled flash device.
    pub fn flash_bytes(&self) -> u64 {
        self.geometry.total_bytes()
    }

    /// The footprint : SSD-DRAM ratio of this scale (the paper's workloads
    /// sit between 16:1 and 32:1 against the 512 MiB cache).
    pub fn footprint_to_dram_ratio(&self) -> f64 {
        self.footprint_bytes as f64 / (self.ssd_data_cache_bytes + self.write_log_bytes) as f64
    }

    /// Applies the scaled sizes to a simulator configuration.
    pub fn apply(&self, mut cfg: SimConfig) -> SimConfig {
        cfg.ssd.geometry = self.geometry;
        cfg.ssd.dram.data_cache_bytes = self.ssd_data_cache_bytes;
        cfg.ssd.dram.write_log_bytes = self.write_log_bytes;
        cfg.host_dram.promotion_capacity_bytes = self.host_dram_bytes;
        cfg
    }

    /// The scaled workload specification for `kind`.
    pub fn workload_spec(&self, kind: WorkloadKind) -> WorkloadSpec {
        kind.spec().scaled_to(self.footprint_bytes)
    }

    /// Returns a copy with a different per-thread access budget.
    pub fn with_accesses_per_thread(mut self, accesses: u64) -> Self {
        self.accesses_per_thread = accesses;
        self
    }

    /// Returns a copy with a different footprint.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Returns a copy with different SSD DRAM sizes (data cache + write log).
    pub fn with_ssd_dram(mut self, data_cache_bytes: u64, write_log_bytes: u64) -> Self {
        self.ssd_data_cache_bytes = data_cache_bytes;
        self.write_log_bytes = write_log_bytes;
        self
    }

    /// Returns a copy with a different host promotion budget.
    pub fn with_host_dram(mut self, bytes: u64) -> Self {
        self.host_dram_bytes = bytes;
        self
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::VariantKind;

    #[test]
    fn default_scale_preserves_paper_ratios() {
        let s = ExperimentScale::default_scale();
        // footprint : SSD DRAM = 16 : 1 — inside the paper's 1:16–1:32 band.
        assert!((s.footprint_to_dram_ratio() - 16.0).abs() < 0.5);
        // Write log is 1/8 of the SSD DRAM, as in Table II (64 MB of 512 MB).
        assert!((s.ssd_data_cache_bytes / s.write_log_bytes) == 7);
        // Host promotion budget is 4x the SSD DRAM, as in §VI-A.
        assert_eq!(
            s.host_dram_bytes,
            4 * (s.ssd_data_cache_bytes + s.write_log_bytes)
        );
        // The footprint fits in the flash device with room for GC.
        assert!(s.footprint_bytes * 2 < s.flash_bytes());
    }

    #[test]
    fn apply_overrides_config_sizes() {
        let s = ExperimentScale::tiny();
        let cfg =
            s.apply(skybyte_types::SimConfig::default().with_variant(VariantKind::SkyByteFull));
        assert_eq!(cfg.ssd.geometry.channels, 4);
        assert_eq!(cfg.ssd.dram.write_log_bytes, 64 * KIB);
        assert_eq!(cfg.host_dram.promotion_capacity_bytes, 2 * MIB);
        cfg.validate().unwrap();
    }

    #[test]
    fn workload_spec_is_scaled() {
        let s = ExperimentScale::tiny();
        let spec = s.workload_spec(WorkloadKind::Tpcc);
        assert_eq!(spec.footprint_bytes, s.footprint_bytes);
        assert!((spec.write_ratio - 0.36).abs() < 1e-9);
    }

    #[test]
    fn builders_modify_fields() {
        let s = ExperimentScale::tiny()
            .with_accesses_per_thread(123)
            .with_footprint(9 * MIB)
            .with_ssd_dram(MIB, 128 * KIB)
            .with_host_dram(3 * MIB);
        assert_eq!(s.accesses_per_thread, 123);
        assert_eq!(s.footprint_bytes, 9 * MIB);
        assert_eq!(s.ssd_data_cache_bytes, MIB);
        assert_eq!(s.write_log_bytes, 128 * KIB);
        assert_eq!(s.host_dram_bytes, 3 * MIB);
    }
}
