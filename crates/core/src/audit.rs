//! The cross-layer conservation audit.
//!
//! Every [`SimResult`] carries both the derived figures the paper plots and a
//! raw [`LayerCounters`](crate::metrics::LayerCounters) snapshot of each
//! device layer. This module ties them together with **named invariants** —
//! conservation laws that must hold for *every* run of *every* variant on
//! *every* workload. A violated invariant means an accounting bug somewhere
//! in the stack, and the report names it, so a refactor that silently drifts
//! a counter fails loudly instead of quietly changing a figure.
//!
//! The invariants (stable names, what tests and CI grep for):
//!
//! | name | law |
//! |------|-----|
//! | `requests-conservation` | classified SSD requests + squashed == `ssd_accesses` |
//! | `amat-histogram-agreement` | `amat.accesses` == latency-histogram sample count |
//! | `latency-ordering` | histogram min ≤ mean ≤ max |
//! | `flash-busy-bounded` | `flash_busy_time` ≤ `exec_time × flash_channels` |
//! | `compaction-time-bounded` | `compaction_time` ≤ `exec_time` |
//! | `ftl-page-conservation` | host pages written + GC relocations == pages programmed |
//! | `flash-ftl-program-agreement` | flash-side program count == FTL-side program count |
//! | `flash-traffic-agreement` | headline flash traffic == flash-layer counters |
//! | `write-amplification` | WAF ≥ 1 and equals the FTL's own ratio |
//! | `write-log-conservation` | log appends == in-place overwrites + retired live + stale + resident |
//! | `write-log-append-agreement` | controller appends == write-log appends |
//! | `ssd-access-agreement` | controller reads + writes == engine `ssd_accesses` |
//! | `read-path-partition` | reads == log hits + cache hits + zero fills + flash misses |
//! | `squash-context-switch-agreement` | squashed accesses == scheduler context switches |
//! | `migration-agreement` | promotion/demotion counters agree across OS, SSD and engine |
//! | `migration-cadence` | policy runs ≤ one per access window |
//! | `boundedness-exec-window` | `exec_time` ≤ Σ per-core accounted time ≤ `exec_time × cores` |
//! | `compaction-count-agreement` | headline compaction count == controller counter |
//! | `progress` | a run that classified requests took nonzero time |
//! | `cxl-port-agreement` | link requests == `ssd_accesses`; link responses == classified SSD requests + migrations |
//! | `telemetry-final-agreement` | the final cumulative telemetry sample matches the `layers` snapshot (only emitted when telemetry ran — see [`audit_with_telemetry`]) |
//!
//! When the result carries per-tenant counters (every run of the pipelined
//! engine does), the per-tenant attribution is additionally tied to the
//! global counters:
//!
//! | name | law |
//! |------|-----|
//! | `tenant-thread-partition` | Σ per-tenant threads == `threads` |
//! | `tenant-request-conservation` | per-tenant request classes sum to the global breakdown |
//! | `tenant-amat-conservation` | per-tenant AMAT components and accesses sum to the global AMAT |
//! | `tenant-histogram-conservation` | Σ per-tenant histogram samples == global histogram samples |
//! | `tenant-squash-conservation` | per-tenant squashes/SSD accesses sum to the globals, and each tenant's squashes == its context switches |
//! | `tenant-instruction-conservation` | Σ per-tenant instructions == `instructions` |
//! | `tenant-finish-bounded` | every tenant finish time ≤ `exec_time` |
//!
//! # Example
//!
//! ```
//! use skybyte_sim::{ExperimentScale, Simulation};
//! use skybyte_types::VariantKind;
//! use skybyte_workloads::WorkloadKind;
//!
//! let scale = ExperimentScale::tiny().with_accesses_per_thread(50);
//! let (result, report) =
//!     Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale).audit();
//! report.assert_clean(&format!("{} on {}", result.variant, result.workload));
//! ```

use crate::engine::MIGRATION_PERIOD_ACCESSES;
use crate::metrics::SimResult;
use crate::telemetry::MetricsSample;
use skybyte_types::{AuditReport, Nanos};

/// Evaluates every conservation invariant against one run's result.
///
/// The returned report is clean iff every law holds; see the module
/// documentation for the invariant list.
pub fn audit(r: &SimResult) -> AuditReport {
    let mut a = AuditReport::new();

    let classified_ssd = r.requests.ssd_read_hit + r.requests.ssd_read_miss + r.requests.ssd_write;
    a.check(
        "requests-conservation",
        classified_ssd + r.squashed_accesses == r.ssd_accesses,
        || {
            format!(
                "classified SSD requests ({classified_ssd}) + squashed \
                 ({}) != ssd_accesses ({})",
                r.squashed_accesses, r.ssd_accesses
            )
        },
    );

    a.check(
        "amat-histogram-agreement",
        r.amat.accesses == r.latency_hist.count(),
        || {
            format!(
                "amat.accesses ({}) != latency_hist.count() ({})",
                r.amat.accesses,
                r.latency_hist.count()
            )
        },
    );

    a.check(
        "latency-ordering",
        r.latency_hist.min() <= r.latency_hist.mean()
            && r.latency_hist.mean() <= r.latency_hist.max(),
        || {
            format!(
                "histogram min ({}) / mean ({}) / max ({}) out of order",
                r.latency_hist.min(),
                r.latency_hist.mean(),
                r.latency_hist.max()
            )
        },
    );

    let capacity = r.exec_time * r.flash_channels as u64;
    a.check("flash-busy-bounded", r.flash_busy_time <= capacity, || {
        format!(
            "flash_busy_time ({}) exceeds exec_time ({}) x {} channels \
                 ({capacity}) — over-unity bandwidth utilisation",
            r.flash_busy_time, r.exec_time, r.flash_channels
        )
    });

    a.check(
        "compaction-time-bounded",
        r.compaction_time <= r.exec_time,
        || {
            format!(
                "compaction_time ({}) exceeds exec_time ({})",
                r.compaction_time, r.exec_time
            )
        },
    );

    let ftl = &r.layers.ftl;
    a.check(
        "ftl-page-conservation",
        ftl.host_pages_written + ftl.gc_pages_relocated == ftl.flash_pages_programmed,
        || {
            format!(
                "host pages written ({}) + GC relocations ({}) != pages \
                 programmed ({})",
                ftl.host_pages_written, ftl.gc_pages_relocated, ftl.flash_pages_programmed
            )
        },
    );

    a.check(
        "flash-ftl-program-agreement",
        r.layers.flash.pages_programmed == ftl.flash_pages_programmed,
        || {
            format!(
                "flash-side programs ({}) != FTL-side programs ({})",
                r.layers.flash.pages_programmed, ftl.flash_pages_programmed
            )
        },
    );

    a.check(
        "flash-traffic-agreement",
        r.flash_pages_programmed == r.layers.flash.pages_programmed
            && r.flash_pages_read == r.layers.flash.pages_read,
        || {
            format!(
                "headline flash traffic (programmed {}, read {}) != flash \
                 layer counters (programmed {}, read {})",
                r.flash_pages_programmed,
                r.flash_pages_read,
                r.layers.flash.pages_programmed,
                r.layers.flash.pages_read
            )
        },
    );

    let ftl_waf = ftl.write_amplification();
    a.check(
        "write-amplification",
        r.write_amplification >= 1.0 && (r.write_amplification - ftl_waf).abs() < 1e-9,
        || {
            format!(
                "write amplification {} must be >= 1 and equal the FTL's \
                 ratio ({ftl_waf})",
                r.write_amplification
            )
        },
    );

    if let Some(wl) = &r.layers.write_log {
        // Addition form (never `appends - overwrites`): the audit must report
        // a corrupted counter as a named violation, not panic on underflow.
        let retired = wl.entries_retired_live + wl.entries_retired_stale;
        let resident = r.layers.write_log_resident_entries;
        a.check(
            "write-log-conservation",
            wl.appends == wl.overwrites_in_place + retired + resident,
            || {
                format!(
                    "log appends ({}) != overwrites in place ({}) + retired \
                     live ({}) + retired stale ({}) + resident ({resident})",
                    wl.appends,
                    wl.overwrites_in_place,
                    wl.entries_retired_live,
                    wl.entries_retired_stale
                )
            },
        );
        a.check(
            "write-log-append-agreement",
            r.layers.ssd.write_log_appends == wl.appends,
            || {
                format!(
                    "controller append count ({}) != write-log append count ({})",
                    r.layers.ssd.write_log_appends, wl.appends
                )
            },
        );
    }

    let ssd = &r.layers.ssd;
    a.check(
        "ssd-access-agreement",
        ssd.reads + ssd.writes == r.ssd_accesses,
        || {
            format!(
                "controller reads ({}) + writes ({}) != engine ssd_accesses ({})",
                ssd.reads, ssd.writes, r.ssd_accesses
            )
        },
    );

    a.check(
        "read-path-partition",
        ssd.reads
            == ssd.read_log_hits
                + ssd.read_cache_hits
                + ssd.read_zero_fills
                + ssd.read_flash_misses,
        || {
            format!(
                "reads ({}) != log hits ({}) + cache hits ({}) + zero fills \
                 ({}) + flash misses ({})",
                ssd.reads,
                ssd.read_log_hits,
                ssd.read_cache_hits,
                ssd.read_zero_fills,
                ssd.read_flash_misses
            )
        },
    );

    a.check(
        "squash-context-switch-agreement",
        r.squashed_accesses == r.context_switches,
        || {
            format!(
                "squashed accesses ({}) != scheduler context switches ({})",
                r.squashed_accesses, r.context_switches
            )
        },
    );

    let mig = &r.layers.migration;
    a.check(
        "migration-agreement",
        r.pages_promoted == mig.promotions
            && r.pages_demoted == mig.demotions
            && ssd.pages_promoted == mig.promotions,
        || {
            format!(
                "promotion/demotion counters disagree: engine ({}/{}), \
                 migration ({}/{}), ssd promoted ({})",
                r.pages_promoted,
                r.pages_demoted,
                mig.promotions,
                mig.demotions,
                ssd.pages_promoted
            )
        },
    );

    let windows = r.ssd_accesses / MIGRATION_PERIOD_ACCESSES + 1;
    a.check("migration-cadence", r.migration_runs <= windows, || {
        format!(
            "migration ran {} times over {} SSD accesses (max one per \
             {MIGRATION_PERIOD_ACCESSES}-access window => {windows})",
            r.migration_runs, r.ssd_accesses
        )
    });

    // Each core's clock advances by exactly what its boundedness buckets
    // account, so the totals bracket the execution time.
    let accounted = r.boundedness.total();
    let upper = r.exec_time * r.cores as u64;
    a.check(
        "boundedness-exec-window",
        accounted <= upper && (r.exec_time == Nanos::ZERO || accounted >= r.exec_time),
        || {
            format!(
                "boundedness total ({accounted}) outside [exec_time ({}), \
                 exec_time x {} cores ({upper})]",
                r.exec_time, r.cores
            )
        },
    );

    a.check(
        "compaction-count-agreement",
        r.compactions == ssd.compactions,
        || {
            format!(
                "headline compaction count ({}) != controller counter ({})",
                r.compactions, ssd.compactions
            )
        },
    );

    a.check(
        "progress",
        r.requests.total() == 0 || r.exec_time > Nanos::ZERO,
        || {
            format!(
                "{} classified requests but zero execution time",
                r.requests.total()
            )
        },
    );

    // Link-level conservation: every SSD access crosses the port exactly
    // once as a request; every *classified* (non-squashed) access gets one
    // response (write ack or cacheline), and each page migration moves one
    // payload (counted as a response) in either direction.
    let cxl = &r.layers.cxl;
    let expected_responses = classified_ssd + mig.promotions + mig.demotions;
    a.check(
        "cxl-port-agreement",
        cxl.requests == r.ssd_accesses && cxl.responses == expected_responses,
        || {
            format!(
                "link requests ({}) != ssd_accesses ({}), or link responses \
                 ({}) != classified SSD requests ({classified_ssd}) + \
                 promotions ({}) + demotions ({}) = {expected_responses}",
                cxl.requests, r.ssd_accesses, cxl.responses, mig.promotions, mig.demotions
            )
        },
    );

    // Per-tenant attribution invariants (every pipelined run carries the
    // counters; results deserialized from pre-tenant goldens do not, and
    // are audited on their global counters alone).
    if !r.per_tenant.is_empty() {
        audit_tenants(r, &mut a);
    }

    a
}

/// [`audit`], additionally checking the `telemetry-final-agreement`
/// invariant when a final cumulative telemetry sample is provided: the
/// sampler's last row — taken at `exec_time` after the end-of-run flush —
/// must agree with the result's own `layers` snapshot on every counter both
/// sides carry. Pass `None` (or use plain [`audit`]) when telemetry was
/// off; the invariant is then skipped, not vacuously satisfied.
pub fn audit_with_telemetry(r: &SimResult, final_sample: Option<&MetricsSample>) -> AuditReport {
    let mut a = audit(r);
    let Some(s) = final_sample else {
        return a;
    };
    let agrees = s.flash_pages_programmed == r.layers.flash.pages_programmed
        && s.flash_pages_read == r.layers.flash.pages_read
        && s.ssd_reads == r.layers.ssd.reads
        && s.ssd_writes == r.layers.ssd.writes
        && s.write_log_appends == r.layers.ssd.write_log_appends
        && s.compactions == r.layers.ssd.compactions
        && s.gc_campaigns == r.layers.ftl.gc_campaigns
        && s.cxl_requests == r.layers.cxl.requests
        && s.pages_promoted == r.layers.migration.promotions
        && s.pages_demoted == r.layers.migration.demotions
        && s.migration_runs == r.layers.migration.runs
        && s.ssd_accesses == r.ssd_accesses
        && s.squashed_accesses == r.squashed_accesses
        && s.context_switches == r.context_switches
        && s.time == r.exec_time;
    a.check("telemetry-final-agreement", agrees, || {
        format!(
            "final telemetry sample at {} disagrees with the layers snapshot: \
             flash prog {}/{} read {}/{}, ssd r {}/{} w {}/{}, log appends {}/{}, \
             compactions {}/{}, gc {}/{}, cxl req {}/{}, promoted {}/{}, \
             demoted {}/{}, migration runs {}/{}, accesses {}/{}, squashed {}/{}, \
             ctx switches {}/{}, exec_time {}",
            s.time,
            s.flash_pages_programmed,
            r.layers.flash.pages_programmed,
            s.flash_pages_read,
            r.layers.flash.pages_read,
            s.ssd_reads,
            r.layers.ssd.reads,
            s.ssd_writes,
            r.layers.ssd.writes,
            s.write_log_appends,
            r.layers.ssd.write_log_appends,
            s.compactions,
            r.layers.ssd.compactions,
            s.gc_campaigns,
            r.layers.ftl.gc_campaigns,
            s.cxl_requests,
            r.layers.cxl.requests,
            s.pages_promoted,
            r.layers.migration.promotions,
            s.pages_demoted,
            r.layers.migration.demotions,
            s.migration_runs,
            r.layers.migration.runs,
            s.ssd_accesses,
            r.ssd_accesses,
            s.squashed_accesses,
            r.squashed_accesses,
            s.context_switches,
            r.context_switches,
            r.exec_time,
        )
    });
    a
}

/// The `tenant-*` invariant set: the per-tenant counters are a partition of
/// the global ones — sums must close exactly, with no access, squash,
/// instruction or latency sample left unattributed (or double-attributed).
fn audit_tenants(r: &SimResult, a: &mut AuditReport) {
    let tenants = &r.per_tenant;

    let thread_sum: u32 = tenants.iter().map(|t| t.threads).sum();
    a.check("tenant-thread-partition", thread_sum == r.threads, || {
        format!(
            "per-tenant thread counts sum to {thread_sum}, run has {}",
            r.threads
        )
    });

    let host: u64 = tenants.iter().map(|t| t.requests.host).sum();
    let hit: u64 = tenants.iter().map(|t| t.requests.ssd_read_hit).sum();
    let miss: u64 = tenants.iter().map(|t| t.requests.ssd_read_miss).sum();
    let write: u64 = tenants.iter().map(|t| t.requests.ssd_write).sum();
    a.check(
        "tenant-request-conservation",
        host == r.requests.host
            && hit == r.requests.ssd_read_hit
            && miss == r.requests.ssd_read_miss
            && write == r.requests.ssd_write,
        || {
            format!(
                "per-tenant request sums (host {host}, hit {hit}, miss {miss}, \
                 write {write}) != global breakdown (host {}, hit {}, miss {}, \
                 write {})",
                r.requests.host,
                r.requests.ssd_read_hit,
                r.requests.ssd_read_miss,
                r.requests.ssd_write
            )
        },
    );

    let amat_accesses: u64 = tenants.iter().map(|t| t.amat.accesses).sum();
    let amat_total: Nanos = tenants
        .iter()
        .map(|t| t.amat.total())
        .fold(Nanos::ZERO, |acc, x| acc + x);
    a.check(
        "tenant-amat-conservation",
        amat_accesses == r.amat.accesses && amat_total == r.amat.total(),
        || {
            format!(
                "per-tenant AMAT sums ({amat_accesses} accesses, {amat_total} \
                 total latency) != global AMAT ({} accesses, {} total latency)",
                r.amat.accesses,
                r.amat.total()
            )
        },
    );

    let samples: u64 = tenants.iter().map(|t| t.latency_hist.count()).sum();
    a.check(
        "tenant-histogram-conservation",
        samples == r.latency_hist.count(),
        || {
            format!(
                "per-tenant histogram samples sum to {samples}, global \
                 histogram holds {}",
                r.latency_hist.count()
            )
        },
    );

    let squashed: u64 = tenants.iter().map(|t| t.squashed_accesses).sum();
    let ssd: u64 = tenants.iter().map(|t| t.ssd_accesses).sum();
    let per_tenant_cs_agree = tenants
        .iter()
        .all(|t| t.squashed_accesses == t.context_switches);
    a.check(
        "tenant-squash-conservation",
        squashed == r.squashed_accesses && ssd == r.ssd_accesses && per_tenant_cs_agree,
        || {
            format!(
                "per-tenant squash/SSD sums ({squashed}/{ssd}) != globals \
                 ({}/{}), or a tenant's squashes disagree with its context \
                 switches",
                r.squashed_accesses, r.ssd_accesses
            )
        },
    );

    let instructions: u64 = tenants.iter().map(|t| t.instructions).sum();
    a.check(
        "tenant-instruction-conservation",
        instructions == r.instructions,
        || {
            format!(
                "per-tenant instruction sum ({instructions}) != global \
                 instruction count ({})",
                r.instructions
            )
        },
    );

    a.check(
        "tenant-finish-bounded",
        tenants.iter().all(|t| t.finish_time <= r.exec_time),
        || {
            let worst = tenants
                .iter()
                .map(|t| t.finish_time)
                .fold(Nanos::ZERO, Nanos::max);
            format!(
                "a tenant finished at {worst}, after the run's exec_time ({})",
                r.exec_time
            )
        },
    );
}
