//! Regeneration of every table and figure of the paper's evaluation section.
//!
//! Each `figNN_*` / `tableN_*` function enumerates the full set of simulation
//! runs it needs up front as [`RunRequest`]s, hands the batch to a
//! [`Runner`] — which executes unique runs once on its worker pool and
//! serves repeats from its memo table — and assembles an [`ExperimentTable`]
//! whose rows/columns correspond to the series plotted in the paper. Because
//! every simulation is deterministic, the tables are bit-identical whether
//! the runner is sequential (`Runner::new(1)`) or parallel, and baselines
//! shared across figures (e.g. the Base-CSSD run of each workload) are
//! simulated exactly once per harness invocation.
//!
//! The `skybyte-bench` crate prints these tables (`cargo run -p
//! skybyte-bench --bin figures -- --jobs N`) and wraps them in Criterion
//! benchmarks; `EXPERIMENTS.md` records the measured values next to the
//! paper's numbers.
//!
//! The absolute magnitudes differ from the paper (scaled-down devices and
//! synthetic traces, see [`crate::scale`]), but each experiment preserves the
//! paper's comparison: who wins, roughly by how much, and where the
//! crossovers are.

use crate::engine::Simulation;
use crate::metrics::geometric_mean;
use crate::runner::{RunRequest, Runner};
use crate::scale::ExperimentScale;
use serde::{Deserialize, Serialize};
use skybyte_types::{
    AdmissionPolicyKind, EvictionPolicyKind, HotnessPolicyKind, NandKind, Nanos, PolicyConfig,
    SchedPolicy, SimConfig, TenantSchedKind, VariantKind, KIB, MIB,
};
use skybyte_workloads::{page_locality_cdf, TraceGenerator, WorkloadKind};

/// A generic result table: one labelled row per entity (workload, variant,
/// parameter value) and one named column per measured series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Experiment identifier, e.g. `"figure-14"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// `(row label, values)` pairs; `values.len() == columns.len()`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    pub(crate) fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push((label.into(), values));
    }

    /// The value at (row label, column name), if present.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .map(|(_, values)| values[col])
    }

    /// The row labels.
    pub fn row_labels(&self) -> Vec<&str> {
        self.rows.iter().map(|(l, _)| l.as_str()).collect()
    }

    /// Renders the table as RFC 4180-style CSV: a `label` header column
    /// followed by one column per series, full float precision (this is the
    /// plotting export of `figures --out`).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(&field(c));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&field(label));
            for v in values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The seven evaluation workloads of Table I.
pub const ALL_WORKLOADS: [WorkloadKind; 7] = WorkloadKind::ALL;

/// The four workloads shown in Figures 3 and 9.
pub const REPRESENTATIVE_WORKLOADS: [WorkloadKind; 4] = [
    WorkloadKind::Bc,
    WorkloadKind::BfsDense,
    WorkloadKind::Srad,
    WorkloadKind::Tpcc,
];

fn req(variant: VariantKind, workload: WorkloadKind, scale: &ExperimentScale) -> RunRequest {
    RunRequest::build(variant, workload, scale)
}

// ---------------------------------------------------------------------------
// Motivation figures (§II-C)
// ---------------------------------------------------------------------------

/// Figure 2: end-to-end execution time with host DRAM vs a baseline CXL-SSD,
/// normalised to DRAM (the paper reports 1.5–31.4× slowdowns).
pub fn fig02_dram_vs_cssd(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-02",
        "Execution time: DRAM vs baseline CXL-SSD (normalised to DRAM)",
        &["dram", "baseline_cxl_ssd"],
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        runs.push(req(VariantKind::DramOnly, w, scale));
        runs.push(req(VariantKind::BaseCssd, w, scale));
    }
    let results = runner.run_all(&runs);
    for (w, pair) in ALL_WORKLOADS.iter().zip(results.chunks(2)) {
        let (dram, cssd) = (&pair[0], &pair[1]);
        t.push(w.name(), vec![1.0, cssd.normalized_exec_time(dram)]);
    }
    t
}

/// Figure 3: off-chip latency distribution (p50/p90/p99/p999/max, in ns) for
/// DRAM vs the baseline CXL-SSD on the four representative workloads.
pub fn fig03_latency_distribution(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-03",
        "Memory latency distribution (ns): DRAM vs CXL-SSD",
        &["p50", "p90", "p99", "p999", "max"],
    );
    let series = [
        ("dram", VariantKind::DramOnly),
        ("cssd", VariantKind::BaseCssd),
    ];
    let mut runs = Vec::new();
    for w in REPRESENTATIVE_WORKLOADS {
        for (_, variant) in series {
            runs.push(req(variant, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    let mut results = results.iter();
    for w in REPRESENTATIVE_WORKLOADS {
        for (label, _) in series {
            let r = results.next().expect("one result per workload/series");
            let h = &r.latency_hist;
            t.push(
                format!("{}/{label}", w.name()),
                vec![
                    h.p50().as_nanos() as f64,
                    h.percentile(0.9).as_nanos() as f64,
                    h.p99().as_nanos() as f64,
                    h.p999().as_nanos() as f64,
                    h.max().as_nanos() as f64,
                ],
            );
        }
    }
    t
}

/// Figure 4: fraction of execution bounded by memory vs compute, with DRAM
/// and with the baseline CXL-SSD.
pub fn fig04_boundedness(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-04",
        "Memory-bounded fraction of execution time",
        &["dram_memory_bound", "cssd_memory_bound"],
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        runs.push(req(VariantKind::DramOnly, w, scale));
        runs.push(req(VariantKind::BaseCssd, w, scale));
    }
    let results = runner.run_all(&runs);
    for (w, pair) in ALL_WORKLOADS.iter().zip(results.chunks(2)) {
        t.push(
            w.name(),
            vec![
                pair[0].boundedness.memory_fraction(),
                pair[1].boundedness.memory_fraction(),
            ],
        );
    }
    t
}

/// Figures 5 and 6: page-locality CDFs of the workload traces — the fraction
/// of pages whose read (resp. written) cacheline coverage is below 25 %,
/// 40 % and 75 %, plus the mean coverage.
///
/// These figures characterise the traces themselves, so no simulation (and no
/// runner) is involved.
pub fn fig05_06_locality_cdf(scale: &ExperimentScale, write: bool) -> ExperimentTable {
    let (id, title) = if write {
        ("figure-06", "Dirty-cacheline coverage CDF of flushed pages")
    } else {
        ("figure-05", "Accessed-cacheline coverage CDF of read pages")
    };
    let mut t = ExperimentTable::new(
        id,
        title,
        &[
            "pages_le_25pct",
            "pages_le_40pct",
            "pages_le_75pct",
            "mean_coverage",
        ],
    );
    for w in [
        WorkloadKind::Bc,
        WorkloadKind::Dlrm,
        WorkloadKind::Radix,
        WorkloadKind::Ycsb,
    ] {
        let spec = scale.workload_spec(w);
        let mut gen = TraceGenerator::new(&spec, 0, 4, scale.seed);
        let trace = gen.generate(scale.accesses_per_thread as usize * 2);
        let (read_cdf, write_cdf) = page_locality_cdf(&trace);
        let cdf = if write { write_cdf } else { read_cdf };
        t.push(
            w.name(),
            vec![
                cdf.fraction_of_pages_below(0.25),
                cdf.fraction_of_pages_below(0.40),
                cdf.fraction_of_pages_below(0.75),
                cdf.mean_coverage(),
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------------
// Design-space figures (§III)
// ---------------------------------------------------------------------------

/// Figure 9: sensitivity of SkyByte-Full to the context-switch trigger
/// threshold (2–80 µs), normalised to the 2 µs default.
pub fn fig09_threshold_sweep(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let thresholds_us = [2u64, 10, 20, 40, 60, 80];
    let columns: Vec<String> = thresholds_us.iter().map(|t| format!("{t}us")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-09",
        "Execution time vs context-switch trigger threshold (normalised to 2us)",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in REPRESENTATIVE_WORKLOADS {
        for &threshold in &thresholds_us {
            let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
            cfg.cs_threshold = Nanos::from_micros(threshold);
            runs.push(RunRequest::with_config(cfg, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    for (w, chunk) in REPRESENTATIVE_WORKLOADS
        .iter()
        .zip(results.chunks(thresholds_us.len()))
    {
        let baseline = chunk[0].exec_time;
        t.push(
            w.name(),
            chunk
                .iter()
                .map(|x| x.exec_time.as_nanos() as f64 / baseline.as_nanos() as f64)
                .collect(),
        );
    }
    t
}

/// Figure 10: thread-scheduling policies (RR, Random, CFS) under SkyByte,
/// normalised execution time plus the context-switch share of time.
pub fn fig10_sched_policies(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-10",
        "Scheduling policy comparison (normalised execution time / CS fraction)",
        &["rr", "random", "cfs", "cfs_cs_fraction"],
    );
    let workloads = [
        WorkloadKind::Bc,
        WorkloadKind::Radix,
        WorkloadKind::Srad,
        WorkloadKind::Tpcc,
    ];
    let policies = [
        SchedPolicy::RoundRobin,
        SchedPolicy::Random,
        SchedPolicy::Cfs,
    ];
    let mut runs = Vec::new();
    for w in workloads {
        for policy in policies {
            let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
            cfg.sched_policy = policy;
            runs.push(RunRequest::with_config(cfg, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    for (w, chunk) in workloads.iter().zip(results.chunks(policies.len())) {
        let times: Vec<f64> = chunk
            .iter()
            .map(|r| r.exec_time.as_nanos() as f64)
            .collect();
        let cfs_cs_fraction = chunk[2].boundedness.context_switch_fraction();
        let baseline = times[0];
        t.push(
            w.name(),
            vec![
                times[0] / baseline,
                times[1] / baseline,
                times[2] / baseline,
                cfs_cs_fraction,
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------------
// Main evaluation figures (§VI)
// ---------------------------------------------------------------------------

/// Figure 14: the main ablation — execution time of every SkyByte variant
/// normalised to Base-CSSD (lower is better), with a geometric-mean row.
pub fn fig14_main_ablation(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let variants = VariantKind::MAIN_ABLATION;
    let names: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    let col_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-14",
        "Execution time normalised to Base-CSSD (lower is better)",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        for &v in &variants {
            runs.push(req(v, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    let mut per_variant_ratios: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(variants.len())) {
        // MAIN_ABLATION[0] is Base-CSSD, the normalisation baseline.
        let base = &chunk[0];
        let mut row = Vec::new();
        for (i, r) in chunk.iter().enumerate() {
            let ratio = r.normalized_exec_time(base);
            per_variant_ratios[i].push(ratio);
            row.push(ratio);
        }
        t.push(w.name(), row);
    }
    t.push(
        "geo.mean",
        per_variant_ratios
            .iter()
            .map(|v| geometric_mean(v.iter().copied()))
            .collect(),
    );
    t
}

/// Figure 15: throughput and SSD bandwidth utilisation of SkyByte-Full as the
/// thread count grows, normalised to SkyByte-WP with 8 threads.
pub fn fig15_thread_scaling(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let thread_counts = [8u32, 16, 24, 32, 40, 48];
    let mut columns: Vec<String> = thread_counts
        .iter()
        .map(|t| format!("throughput_{t}t"))
        .collect();
    columns.push("bandwidth_util_24t".to_string());
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-15",
        "Throughput vs thread count (normalised to SkyByte-WP, 8 threads)",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        runs.push(req(VariantKind::SkyByteWP, w, scale));
        for &threads in &thread_counts {
            let cfg = scale
                .apply(SimConfig::default().with_variant(VariantKind::SkyByteFull))
                .with_threads(threads);
            runs.push(RunRequest::with_config(cfg, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    for (w, chunk) in ALL_WORKLOADS
        .iter()
        .zip(results.chunks(1 + thread_counts.len()))
    {
        let base_tp = chunk[0]
            .throughput_accesses_per_sec()
            .max(f64::MIN_POSITIVE);
        let mut row = Vec::new();
        let mut util_24 = 0.0;
        for (&threads, r) in thread_counts.iter().zip(&chunk[1..]) {
            if threads == 24 {
                util_24 = r.ssd_bandwidth_utilisation();
            }
            row.push(r.throughput_accesses_per_sec() / base_tp);
        }
        row.push(util_24);
        t.push(w.name(), row);
    }
    t
}

/// Figure 16: breakdown of memory requests of SkyByte (host DRAM hit, SSD
/// DRAM read hit, SSD DRAM read miss, SSD write).
pub fn fig16_request_breakdown(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-16",
        "Memory request breakdown of SkyByte-WP",
        &["host", "ssd_read_hit", "ssd_read_miss", "ssd_write"],
    );
    let runs: Vec<RunRequest> = ALL_WORKLOADS
        .iter()
        .map(|&w| req(VariantKind::SkyByteWP, w, scale))
        .collect();
    let results = runner.run_all(&runs);
    for (w, r) in ALL_WORKLOADS.iter().zip(&results) {
        t.push(
            w.name(),
            vec![
                r.requests.host_fraction(),
                r.requests.ssd_read_hit_fraction(),
                r.requests.ssd_read_miss_fraction(),
                r.requests.ssd_write_fraction(),
            ],
        );
    }
    t
}

/// Figure 17: average memory access time of each variant, normalised to
/// Base-CSSD, plus the flash share of the AMAT for the full design.
pub fn fig17_amat(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let variants = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteP,
        VariantKind::SkyByteW,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
        VariantKind::DramOnly,
    ];
    let mut names: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    names.push("full_flash_fraction".to_string());
    let col_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-17",
        "AMAT normalised to Base-CSSD, and the flash share for SkyByte-Full",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        for &v in &variants {
            runs.push(req(v, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(variants.len())) {
        let base_amat = chunk[0].amat.amat().as_nanos().max(1) as f64;
        let mut row = Vec::new();
        let mut full_flash_fraction = 0.0;
        for (&v, r) in variants.iter().zip(chunk) {
            if v == VariantKind::SkyByteFull {
                full_flash_fraction = r.amat.fractions().fraction("flash");
            }
            row.push(r.amat.amat().as_nanos() as f64 / base_amat);
        }
        row.push(full_flash_fraction);
        t.push(w.name(), row);
    }
    t
}

/// Figure 18: flash write traffic of each variant, normalised to Base-CSSD
/// (the paper reports a 23.08× average reduction for the full design).
pub fn fig18_write_traffic(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let variants = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteP,
        VariantKind::SkyByteC,
        VariantKind::SkyByteW,
        VariantKind::SkyByteCP,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
    ];
    let names: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    let col_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-18",
        "Flash write traffic normalised to Base-CSSD (lower is better)",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        for &v in &variants {
            runs.push(req(v, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(variants.len())) {
        let base_writes = chunk[0].flash_pages_programmed.max(1) as f64;
        t.push(
            w.name(),
            chunk
                .iter()
                .map(|r| r.flash_pages_programmed as f64 / base_writes)
                .collect(),
        );
    }
    t
}

/// Figures 19 and 20: sensitivity of SkyByte-Full to the write-log size; the
/// returned table carries both normalised execution time and normalised
/// flash write traffic per size.
pub fn fig19_20_write_log_sweep(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    // Sizes expressed as fractions of the (scaled) total SSD DRAM, mirroring
    // the paper's 0.5 MB – 256 MB sweep against 512 MB of SSD DRAM.
    let total = scale.ssd_data_cache_bytes + scale.write_log_bytes;
    let log_sizes: Vec<u64> = [1u64, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|d| (total / 512 * d).max(16 * KIB))
        .collect();
    let mut columns = Vec::new();
    for s in &log_sizes {
        columns.push(format!("time_log_{}k", s / KIB));
    }
    for s in &log_sizes {
        columns.push(format!("traffic_log_{}k", s / KIB));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-19-20",
        "Write-log size sweep: normalised execution time and flash write traffic",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        for &log in &log_sizes {
            let sweep_scale = scale.with_ssd_dram(total - log, log);
            runs.push(req(VariantKind::SkyByteFull, w, &sweep_scale));
        }
    }
    let results = runner.run_all(&runs);
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(log_sizes.len())) {
        let times: Vec<f64> = chunk
            .iter()
            .map(|r| r.exec_time.as_nanos() as f64)
            .collect();
        let traffic: Vec<f64> = chunk
            .iter()
            .map(|r| r.flash_pages_programmed as f64)
            .collect();
        let t0 = times.last().copied().unwrap_or(1.0).max(1.0);
        let w0 = traffic.last().copied().unwrap_or(1.0).max(1.0);
        let mut row: Vec<f64> = times.iter().map(|x| x / t0).collect();
        row.extend(traffic.iter().map(|x| x / w0));
        t.push(w.name(), row);
    }
    t
}

/// Figure 21: sensitivity to the SSD DRAM cache size (0.125×–2× the default),
/// for the main variants, normalised to SkyByte-Full at the default size.
pub fn fig21_dram_size_sweep(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let factors = [0.125f64, 0.25, 0.5, 1.0, 2.0];
    let variants = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteP,
        VariantKind::SkyByteW,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
    ];
    let mut columns = Vec::new();
    for v in &variants {
        for f in &factors {
            columns.push(format!("{v}@{f}x"));
        }
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-21",
        "Execution time vs SSD DRAM size (normalised to SkyByte-Full at 1x)",
        &col_refs,
    );
    let total_default = scale.ssd_data_cache_bytes + scale.write_log_bytes;
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        // Reference: SkyByte-Full at the default size.
        runs.push(req(VariantKind::SkyByteFull, w, scale));
        for &v in &variants {
            for &f in &factors {
                let total = ((total_default as f64) * f) as u64;
                // Keep the 1:7 log:cache ratio and scale the host budget 4:1,
                // as in §VI-F.
                let log = (total / 8).max(16 * KIB);
                let cache = (total - log).max(64 * KIB);
                let sweep_scale = scale
                    .with_ssd_dram(cache, log)
                    .with_host_dram(4 * total.max(MIB));
                runs.push(req(v, w, &sweep_scale));
            }
        }
    }
    let results = runner.run_all(&runs);
    let per_workload = 1 + variants.len() * factors.len();
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(per_workload)) {
        let reference = chunk[0].exec_time.as_nanos() as f64;
        t.push(
            w.name(),
            chunk[1..]
                .iter()
                .map(|r| r.exec_time.as_nanos() as f64 / reference.max(1.0))
                .collect(),
        );
    }
    t
}

/// Figure 22: sensitivity to the flash technology (Table IV), with the
/// thread count of SkyByte-Full varied, normalised to SkyByte-P on ULL.
pub fn fig22_flash_latency_sweep(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let kinds = NandKind::ALL;
    let configs: Vec<(String, VariantKind, u32)> = vec![
        ("SkyByte-P".into(), VariantKind::SkyByteP, 8),
        ("SkyByte-W".into(), VariantKind::SkyByteW, 8),
        ("SkyByte-WP".into(), VariantKind::SkyByteWP, 8),
        ("SkyByte-Full-16".into(), VariantKind::SkyByteFull, 16),
        ("SkyByte-Full-24".into(), VariantKind::SkyByteFull, 24),
        ("SkyByte-Full-32".into(), VariantKind::SkyByteFull, 32),
    ];
    let mut columns = Vec::new();
    for k in &kinds {
        for (name, _, _) in &configs {
            columns.push(format!("{k}/{name}"));
        }
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-22",
        "Execution time vs flash technology (normalised to SkyByte-P on ULL)",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        for kind in kinds {
            for (_, variant, threads) in &configs {
                let cfg = scale
                    .apply(SimConfig::default().with_variant(*variant).with_nand(kind))
                    .with_threads(*threads);
                runs.push(RunRequest::with_config(cfg, w, scale));
            }
        }
    }
    let results = runner.run_all(&runs);
    let per_workload = kinds.len() * configs.len();
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(per_workload)) {
        // The first run of the chunk is SkyByte-P on ULL, the reference.
        let reference = (chunk[0].exec_time.as_nanos() as f64).max(1.0);
        t.push(
            w.name(),
            chunk
                .iter()
                .map(|r| r.exec_time.as_nanos() as f64 / reference)
                .collect(),
        );
    }
    t
}

/// Figure 23: comparison of page-migration mechanisms, normalised to
/// SkyByte-C, with a geometric-mean row.
pub fn fig23_migration_mechanisms(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let variants = VariantKind::MIGRATION_COMPARISON;
    let names: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    let col_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "figure-23",
        "Page-migration mechanisms: execution time normalised to SkyByte-C",
        &col_refs,
    );
    let mut runs = Vec::new();
    for w in ALL_WORKLOADS {
        for &v in &variants {
            runs.push(req(v, w, scale));
        }
    }
    let results = runner.run_all(&runs);
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (w, chunk) in ALL_WORKLOADS.iter().zip(results.chunks(variants.len())) {
        // MIGRATION_COMPARISON[0] is SkyByte-C, the normalisation reference.
        let reference = &chunk[0];
        let mut row = Vec::new();
        for (i, r) in chunk.iter().enumerate() {
            let ratio = if i == 0 {
                1.0
            } else {
                r.normalized_exec_time(reference)
            };
            per_variant[i].push(ratio);
            row.push(ratio);
        }
        t.push(w.name(), row);
    }
    t.push(
        "geo.mean",
        per_variant
            .iter()
            .map(|v| geometric_mean(v.iter().copied()))
            .collect(),
    );
    t
}

// ---------------------------------------------------------------------------
// Beyond the paper: multi-tenant interference
// ---------------------------------------------------------------------------

/// The co-location scenarios of the multi-tenant interference experiment:
/// ycsb (read-mostly, cache-friendly) against tpcc (write-heavy, log
/// pressure), sweeping the thread-mix ratio at two tenants and the tenant
/// count at a fixed ratio.
pub fn mt_scenarios() -> Vec<(&'static str, Vec<(WorkloadKind, u32)>)> {
    vec![
        (
            "2T-6:2",
            vec![(WorkloadKind::Ycsb, 6), (WorkloadKind::Tpcc, 2)],
        ),
        (
            "2T-4:4",
            vec![(WorkloadKind::Ycsb, 4), (WorkloadKind::Tpcc, 4)],
        ),
        (
            "2T-2:6",
            vec![(WorkloadKind::Ycsb, 2), (WorkloadKind::Tpcc, 6)],
        ),
        (
            "4T-2:2:2:2",
            vec![
                (WorkloadKind::Ycsb, 2),
                (WorkloadKind::Tpcc, 2),
                (WorkloadKind::Ycsb, 2),
                (WorkloadKind::Tpcc, 2),
            ],
        ),
    ]
}

/// The variants the interference experiment compares: the baseline CXL-SSD
/// against the full SkyByte design.
pub const MT_VARIANTS: [VariantKind; 2] = [VariantKind::BaseCssd, VariantKind::SkyByteFull];

/// Builds tenant `i`'s uncontended twin for a co-location scenario: a
/// single-tenant simulation whose streams and per-thread budget are
/// bit-identical to what the tenant ran co-located, so completion-time
/// deltas measure interference alone.
///
/// Stream identity: tenant `i` of a multi-tenant run draws from
/// `WorkloadSource::new(spec(slice), threads, seed + i)`; the twin seeds its
/// scale with `seed + i` so its (single) tenant builds the same generators.
/// Work identity: the engine's per-thread budget is
/// `accesses_per_thread × cores / total_threads`, so the twin scales
/// `accesses_per_thread` by the tenant's share of the co-located thread
/// count (exact for the scenario set used here; `.max(1)` guards tiny
/// budgets).
pub(crate) fn mt_solo_twin(
    variant: VariantKind,
    tenants: &[(WorkloadKind, u32)],
    i: usize,
    workload: WorkloadKind,
    threads: u32,
    slice: u64,
    scale: &ExperimentScale,
) -> Simulation {
    let total: u32 = tenants.iter().map(|&(_, t)| t).sum();
    let apt = (scale.accesses_per_thread * threads as u64 / total as u64).max(1);
    let mut solo_scale = scale.with_footprint(slice).with_accesses_per_thread(apt);
    solo_scale.seed = scale.seed + i as u64;
    Simulation::build_multi(variant, &[(workload, threads)], &solo_scale)
}

/// Figure "mt" (beyond the paper): per-tenant interference when several
/// applications share one device.
///
/// For every variant × scenario, the co-located tenants run together on one
/// device via [`Simulation::build_multi`], and each tenant additionally runs
/// **solo** as its exact twin ([`mt_solo_twin`]: same footprint slice,
/// thread count, seed and per-thread work budget), so any delta is
/// interference rather than stream or work-size variance. The table
/// reports, per `(variant, scenario, tenant)` row:
///
/// * `threads` — the tenant's thread count,
/// * `slowdown` — tenant completion time co-located / solo (> 1 means
///   co-location cost the tenant time),
/// * `amat_ratio` — the tenant's AMAT co-located / solo,
/// * `ssd_share` — the tenant's share of all SSD accesses in the co-located
///   run.
///
/// Repeated runs are simulated once thanks to the runner's memo table.
pub fn fig_mt_interference(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let scenarios = mt_scenarios();
    let mut t = ExperimentTable::new(
        "figure-mt",
        "Multi-tenant interference: per-tenant slowdown vs solo (ycsb + tpcc)",
        &["threads", "slowdown", "amat_ratio", "ssd_share"],
    );
    // Enumerate every run up front: the co-located run of each scenario,
    // followed by one solo run per tenant on the same footprint slice,
    // seeded so the solo stream is bit-identical to the co-located one.
    let mut runs = Vec::new();
    for &variant in &MT_VARIANTS {
        for (_, tenants) in &scenarios {
            let co = Simulation::build_multi(variant, tenants, scale);
            let slice = co.tenant_slice_bytes();
            runs.push(RunRequest::from_simulation(co));
            for (i, &(workload, threads)) in tenants.iter().enumerate() {
                let solo = mt_solo_twin(variant, tenants, i, workload, threads, slice, scale);
                runs.push(RunRequest::from_simulation(solo));
            }
        }
    }
    let results = runner.run_all(&runs);
    let mut results = results.iter();
    for &variant in &MT_VARIANTS {
        for (label, tenants) in &scenarios {
            let co = results.next().expect("one co-located result per scenario");
            let total_ssd = co.ssd_accesses.max(1) as f64;
            for (i, &(workload, threads)) in tenants.iter().enumerate() {
                let solo = results.next().expect("one solo result per tenant");
                let mine = &co.per_tenant[i];
                let alone = &solo.per_tenant[0];
                let amat_ratio = if alone.amat.amat() == Nanos::ZERO {
                    0.0
                } else {
                    mine.amat.amat().as_nanos() as f64 / alone.amat.amat().as_nanos() as f64
                };
                t.push(
                    format!("{variant}/{label}/t{i}-{workload}"),
                    vec![
                        threads as f64,
                        mine.slowdown_over(alone),
                        amat_ratio,
                        mine.ssd_accesses as f64 / total_ssd,
                    ],
                );
            }
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Policy ablation (the pluggable-policy zoo)
// ---------------------------------------------------------------------------

/// The single-tenant workload columns of the policy ablation.
const POLICY_WORKLOADS: [WorkloadKind; 2] = [WorkloadKind::Ycsb, WorkloadKind::Tpcc];

/// The tenant mix of the ablation's `mt` column (the balanced ycsb + tpcc
/// scenario of [`mt_scenarios`]).
const POLICY_MT_TENANTS: [(WorkloadKind, u32); 2] =
    [(WorkloadKind::Ycsb, 4), (WorkloadKind::Tpcc, 4)];

/// A single-tenant SkyByte-Full request running under `policy`.
fn policy_request(
    policy: PolicyConfig,
    workload: WorkloadKind,
    scale: &ExperimentScale,
) -> RunRequest {
    let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
    cfg.policy = policy;
    RunRequest::with_config(cfg, workload, scale)
}

/// The co-located ycsb + tpcc request running under `policy`.
fn policy_mt_request(policy: PolicyConfig, scale: &ExperimentScale) -> RunRequest {
    let mut sim = Simulation::build_multi(VariantKind::SkyByteFull, &POLICY_MT_TENANTS, scale);
    sim.config_mut().policy = policy;
    RunRequest::from_simulation(sim)
}

/// Every row of the policy ablation: the full eviction × hotness cross
/// product (default admission/scheduling), plus one row per off-default
/// admission and tenant-scheduling contender. Public so CLIs and tests can
/// enumerate what `figures --fig policy` sweeps.
pub fn policy_ablation_rows() -> Vec<(String, PolicyConfig)> {
    let mut rows = Vec::new();
    for &eviction in &EvictionPolicyKind::ALL {
        for &hotness in &HotnessPolicyKind::ALL {
            rows.push((
                format!("{eviction}/{hotness}"),
                PolicyConfig {
                    eviction,
                    hotness,
                    ..PolicyConfig::default()
                },
            ));
        }
    }
    rows.push((
        "bypass-scan".to_string(),
        PolicyConfig {
            admission: AdmissionPolicyKind::BypassScan,
            ..PolicyConfig::default()
        },
    ));
    rows.push((
        "fair-share".to_string(),
        PolicyConfig {
            tenant_sched: TenantSchedKind::FairShare,
            ..PolicyConfig::default()
        },
    ));
    rows
}

/// Figure "policy" (beyond the paper): the pluggable-policy ablation.
///
/// Sweeps the data-cache eviction × hot-page tracking cross product (plus a
/// bypass-scan admission row and a fair-share tenant-scheduling row) over
/// SkyByte-Full on ycsb, tpcc and the balanced ycsb + tpcc co-location, and
/// reports execution time normalised per column to the default policy combo
/// (`pseudo-lru/threshold` — whose row is therefore all ones). Values above
/// one mean the contender lost time against the shipped policies.
pub fn fig_policy_ablation(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-policy",
        "Policy ablation: execution time normalised to the default policies (SkyByte-Full)",
        &["ycsb", "tpcc", "mt"],
    );
    let rows = policy_ablation_rows();
    let mut runs = Vec::new();
    for (_, policy) in &rows {
        for &workload in &POLICY_WORKLOADS {
            runs.push(policy_request(*policy, workload, scale));
        }
        runs.push(policy_mt_request(*policy, scale));
    }
    let results = runner.run_all(&runs);
    // Row 0 is the default combo: the per-column baseline.
    let per_row = POLICY_WORKLOADS.len() + 1;
    debug_assert!(rows[0].1.is_default());
    for (i, (label, _)) in rows.iter().enumerate() {
        let values = (0..per_row)
            .map(|j| results[i * per_row + j].normalized_exec_time(&results[j]))
            .collect();
        t.push(label.clone(), values);
    }
    t
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Table I: workload characteristics (footprint in GiB, write ratio, MPKI).
pub fn table1_workloads() -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "table-1",
        "Benchmark characteristics",
        &["footprint_gib", "write_ratio", "llc_mpki"],
    );
    for (name, footprint, write_ratio, mpki) in skybyte_workloads::table1_characteristics() {
        t.push(
            name,
            vec![footprint as f64 / (1u64 << 30) as f64, write_ratio, mpki],
        );
    }
    t
}

/// Table II: the default simulator parameters (a selection of the numeric
/// knobs; the full structure is `SimConfig::default()`).
pub fn table2_parameters() -> ExperimentTable {
    let cfg = SimConfig::default();
    let mut t = ExperimentTable::new("table-2", "Simulator parameters (defaults)", &["value"]);
    t.push("cpu.cores", vec![cfg.cpu.cores as f64]);
    t.push("cpu.rob_entries", vec![cfg.cpu.rob_entries as f64]);
    t.push(
        "llc.size_mib",
        vec![cfg.cpu.llc.size_bytes as f64 / MIB as f64],
    );
    t.push("llc.mshrs", vec![cfg.cpu.llc.mshrs as f64]);
    t.push("tlb.entries", vec![cfg.cpu.tlb.entries as f64]);
    t.push(
        "tlb.miss_ns",
        vec![cfg.cpu.tlb.miss_latency.as_nanos() as f64],
    );
    t.push(
        "ssd.capacity_gib",
        vec![cfg.ssd.geometry.total_bytes() as f64 / (1u64 << 30) as f64],
    );
    t.push("ssd.channels", vec![cfg.ssd.geometry.channels as f64]);
    t.push(
        "flash.read_us",
        vec![cfg.ssd.flash.read_latency.as_micros_f64()],
    );
    t.push(
        "flash.program_us",
        vec![cfg.ssd.flash.program_latency.as_micros_f64()],
    );
    t.push(
        "flash.erase_us",
        vec![cfg.ssd.flash.erase_latency.as_micros_f64()],
    );
    t.push(
        "cxl.protocol_ns",
        vec![cfg.ssd.cxl_protocol_latency.as_nanos() as f64],
    );
    t.push(
        "ssd.data_cache_mib",
        vec![cfg.ssd.dram.data_cache_bytes as f64 / MIB as f64],
    );
    t.push(
        "ssd.write_log_mib",
        vec![cfg.ssd.dram.write_log_bytes as f64 / MIB as f64],
    );
    t.push(
        "host.promotion_budget_gib",
        vec![cfg.host_dram.promotion_capacity_bytes as f64 / (1u64 << 30) as f64],
    );
    t.push("cs.threshold_us", vec![cfg.cs_threshold.as_micros_f64()]);
    t.push(
        "cs.overhead_us",
        vec![cfg.context_switch_overhead.as_micros_f64()],
    );
    t.push("gc.threshold", vec![cfg.ssd.gc_threshold]);
    t
}

/// Table III: average flash read latency (µs) observed by SkyByte-WP.
pub fn table3_flash_read_latency(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "table-3",
        "Average flash read latency of SkyByte-WP (us)",
        &["avg_flash_read_us"],
    );
    let runs: Vec<RunRequest> = ALL_WORKLOADS
        .iter()
        .map(|&w| req(VariantKind::SkyByteWP, w, scale))
        .collect();
    let results = runner.run_all(&runs);
    for (w, r) in ALL_WORKLOADS.iter().zip(&results) {
        t.push(w.name(), vec![r.avg_flash_read_latency.as_micros_f64()]);
    }
    t
}

/// Table IV: NAND flash parameters.
pub fn table4_nand_parameters() -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "table-4",
        "NAND flash parameters (us)",
        &["read_us", "program_us", "erase_us"],
    );
    for kind in NandKind::ALL {
        let timing = skybyte_types::FlashTimingConfig::for_kind(kind);
        t.push(
            kind.to_string(),
            vec![
                timing.read_latency.as_micros_f64(),
                timing.program_latency.as_micros_f64(),
                timing.erase_latency.as_micros_f64(),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        // Keep experiment-level tests fast: few accesses, few threads.
        ExperimentScale::tiny().with_accesses_per_thread(300)
    }

    fn runner() -> Runner {
        Runner::new(2)
    }

    #[test]
    fn fig02_shows_cssd_slowdown() {
        let t = fig02_dram_vs_cssd(&runner(), &tiny());
        assert_eq!(t.rows.len(), 7);
        for (workload, values) in &t.rows {
            assert_eq!(values[0], 1.0);
            assert!(
                values[1] > 1.2,
                "{workload}: CXL-SSD should be slower than DRAM, got {}",
                values[1]
            );
        }
    }

    #[test]
    fn fig04_cssd_is_more_memory_bound() {
        let t = fig04_boundedness(&runner(), &tiny());
        for (workload, values) in &t.rows {
            assert!(
                values[1] >= values[0] - 0.05,
                "{workload}: CXL-SSD should not be less memory bound ({} vs {})",
                values[1],
                values[0]
            );
            assert!(values[1] > 0.5, "{workload}: expected memory-bound");
        }
    }

    #[test]
    fn fig05_reproduces_sparse_coverage() {
        let t = fig05_06_locality_cdf(&tiny(), false);
        // bc/dlrm/ycsb: most pages below 40% coverage.
        for row in ["bc", "dlrm", "ycsb"] {
            let v = t.value(row, "pages_le_40pct").unwrap();
            assert!(v > 0.6, "{row}: expected sparse coverage, got {v}");
        }
        let t6 = fig05_06_locality_cdf(&tiny(), true);
        assert_eq!(t6.id, "figure-06");
        assert_eq!(t6.rows.len(), 4);
    }

    #[test]
    fn fig14_full_beats_base_on_geo_mean() {
        let r = runner();
        let t = fig14_main_ablation(&r, &tiny());
        assert_eq!(t.rows.len(), 8); // 7 workloads + geo.mean
        let full = t.value("geo.mean", "SkyByte-Full").unwrap();
        let base = t.value("geo.mean", "Base-CSSD").unwrap();
        let dram = t.value("geo.mean", "DRAM-Only").unwrap();
        assert!((base - 1.0).abs() < 1e-9);
        assert!(full < base, "SkyByte-Full ({full}) must beat Base-CSSD");
        assert!(dram <= full, "DRAM-Only must be the best");
        // One unique run per (workload, variant) pair — the Base-CSSD
        // baseline is not re-simulated for the normalisation.
        assert_eq!(
            r.runs_executed(),
            (ALL_WORKLOADS.len() * VariantKind::MAIN_ABLATION.len()) as u64
        );
    }

    #[test]
    fn fig18_write_log_variants_reduce_traffic() {
        let t = fig18_write_traffic(&runner(), &tiny());
        for (workload, _) in &t.rows {
            let base = t.value(workload, "Base-CSSD").unwrap();
            let w = t.value(workload, "SkyByte-W").unwrap();
            assert!((base - 1.0).abs() < 1e-9);
            assert!(
                w <= 1.02,
                "{workload}: SkyByte-W must not increase write traffic ({w})"
            );
        }
    }

    #[test]
    fn fig16_fractions_sum_to_one() {
        let t = fig16_request_breakdown(&runner(), &tiny());
        for (workload, values) in &t.rows {
            let sum: f64 = values.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{workload}: request fractions sum to {sum}"
            );
        }
    }

    #[test]
    fn fig_mt_reports_per_tenant_interference() {
        let r = runner();
        let t = fig_mt_interference(&r, &tiny());
        // 2 variants x (3 two-tenant scenarios + 1 four-tenant scenario).
        assert_eq!(t.rows.len(), 2 * (3 * 2 + 4));
        for (label, values) in &t.rows {
            assert!(values[0] >= 2.0, "{label}: thread count");
            assert!(values[1] > 0.0, "{label}: slowdown must be positive");
            assert!(
                values[3] > 0.0 && values[3] < 1.0,
                "{label}: SSD share must be a genuine fraction, got {}",
                values[3]
            );
        }
        // Per co-located scenario the tenant SSD shares sum to ~1.
        let shares: f64 = t
            .rows
            .iter()
            .filter(|(l, _)| l.starts_with("Base-CSSD/2T-4:4/"))
            .map(|(_, v)| v[3])
            .sum();
        assert!((shares - 1.0).abs() < 1e-9, "shares sum to {shares}");
        // Per variant: 4 co-located runs + 10 solo baselines (each tenant's
        // solo run replays its exact stream — seeded per tenant slot — so
        // none coincide in this scenario set). Regenerating on the same
        // runner is pure memo hits.
        assert_eq!(r.runs_executed(), 2 * (4 + 10));
        let again = fig_mt_interference(&r, &tiny());
        assert_eq!(r.runs_executed(), 2 * (4 + 10));
        assert_eq!(again, t);
    }

    #[test]
    fn mt_solo_twins_replay_the_exact_tenant_stream_and_budget() {
        // The interference metric is only meaningful if the solo baseline
        // executes bit-for-bit the work the tenant ran co-located: same
        // generators (seed per tenant slot), same per-thread budget.
        let scale = tiny();
        let tenants = [(WorkloadKind::Ycsb, 6), (WorkloadKind::Tpcc, 2)];
        let co = Simulation::build_multi(VariantKind::SkyByteFull, &tenants, &scale);
        let slice = co.tenant_slice_bytes();
        let co = co.run();
        for (i, &(workload, threads)) in tenants.iter().enumerate() {
            let solo = mt_solo_twin(
                VariantKind::SkyByteFull,
                &tenants,
                i,
                workload,
                threads,
                slice,
                &scale,
            )
            .run();
            let twin = &solo.per_tenant[0];
            let mine = &co.per_tenant[i];
            assert_eq!(twin.instructions, mine.instructions, "tenant {i}");
            assert_eq!(twin.accesses(), mine.accesses(), "tenant {i}");
            assert_eq!(twin.threads, mine.threads, "tenant {i}");
        }
    }

    #[test]
    fn tables_have_expected_shapes() {
        let t1 = table1_workloads();
        assert_eq!(t1.rows.len(), 7);
        assert!((t1.value("tpcc", "footprint_gib").unwrap() - 15.77).abs() < 0.01);

        let t2 = table2_parameters();
        assert!((t2.value("flash.read_us", "value").unwrap() - 3.0).abs() < 1e-9);
        assert!((t2.value("ssd.capacity_gib", "value").unwrap() - 128.0).abs() < 1e-9);
        assert!((t2.value("tlb.entries", "value").unwrap() - 1536.0).abs() < 1e-9);
        assert!((t2.value("tlb.miss_ns", "value").unwrap() - 30.0).abs() < 1e-9);

        let t4 = table4_nand_parameters();
        assert_eq!(t4.rows.len(), 4);
        assert!((t4.value("MLC", "read_us").unwrap() - 50.0).abs() < 1e-9);
        assert!((t4.value("ULL2", "program_us").unwrap() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn experiment_table_lookup_helpers() {
        let mut t = ExperimentTable::new("x", "y", &["a", "b"]);
        t.push("row", vec![1.0, 2.0]);
        assert_eq!(t.value("row", "b"), Some(2.0));
        assert_eq!(t.value("row", "c"), None);
        assert_eq!(t.value("other", "a"), None);
        assert_eq!(t.row_labels(), vec!["row"]);
        let json = serde_json::to_string(&t).unwrap();
        let back: ExperimentTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
