//! The full-system simulation engine.
//!
//! The engine advances a set of cores in global time order (always stepping
//! the core with the smallest local clock). Each step executes one work unit
//! of the thread running on that core: a compute burst followed by one
//! off-chip memory access resolved through the OS page table — either to
//! host DRAM or, over the CXL port, to the SSD controller. When the SSD
//! answers with a `SkyByte-Delay` hint and the coordinated context switch is
//! enabled, the access is squashed, the thread blocks until the data is
//! expected in SSD DRAM, and the scheduler picks another thread for the core
//! (Figure 7). Page migrations run in the background between accesses.

use crate::metrics::SimResult;
use crate::scale::ExperimentScale;
use crate::system::SystemState;
use crate::telemetry::TelemetryOutput;
use skybyte_trace::{
    BoxedSource, Record, Shift, Tenants, TraceError, TraceFileSource, TraceHeader, TraceWriter,
};
use skybyte_types::{SimConfig, TenantId, VariantKind, PAGE_SIZE};
use skybyte_workloads::{TraceSource, WorkloadKind, WorkloadSource};
use std::path::{Path, PathBuf};

pub use crate::system::MIGRATION_PERIOD_ACCESSES;

/// A process-unique token for record temp-file names, so concurrent runner
/// workers recording the same stream never collide.
fn next_record_token() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Where a simulation's access streams come from.
///
/// The drive is part of the simulation's identity: [`crate::runner`]
/// fingerprints include it, so a replayed run and its live twin memoize
/// separately (they produce identical results, but only the replay depends
/// on the trace directory's contents).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceDrive {
    /// Generate the synthetic trace live (the default).
    #[default]
    Synthetic,
    /// Generate live **and** tee the consumed stream to
    /// `dir/<trace file name>` (see [`Simulation::trace_file_name`]).
    Record {
        /// Directory the `.sbt` file is written into (created if missing).
        dir: PathBuf,
    },
    /// Replay `dir/<trace file name>` instead of generating.
    Replay {
        /// Directory the `.sbt` file is read from.
        dir: PathBuf,
    },
}

/// A fully configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SimConfig,
    workload: WorkloadKind,
    /// The co-located applications of a multi-tenant run, in tenant-id
    /// order; empty for a single-tenant simulation (the classic
    /// constructors). Built by [`Simulation::build_multi`].
    tenants: Vec<(WorkloadKind, u32)>,
    scale: ExperimentScale,
    drive: TraceDrive,
}

impl Simulation {
    /// Builds a simulation of `variant` running `workload` at the given
    /// scale, using the paper's Table II configuration for everything the
    /// scale does not override.
    pub fn build(variant: VariantKind, workload: WorkloadKind, scale: &ExperimentScale) -> Self {
        let cfg = scale.apply(SimConfig::default().with_variant(variant));
        Simulation {
            cfg,
            workload,
            tenants: Vec::new(),
            scale: *scale,
            drive: TraceDrive::Synthetic,
        }
    }

    /// Builds a simulation from an explicit configuration (for sensitivity
    /// sweeps that tweak individual knobs).
    pub fn with_config(cfg: SimConfig, workload: WorkloadKind, scale: &ExperimentScale) -> Self {
        Simulation {
            cfg,
            workload,
            tenants: Vec::new(),
            scale: *scale,
            drive: TraceDrive::Synthetic,
        }
    }

    /// Builds a **multi-tenant** simulation: each `(workload, threads)` pair
    /// is one co-located application sharing the device, running on its own
    /// slice of the scaled footprint (`scale.footprint_bytes / tenants`,
    /// page-aligned, address-shifted so tenants occupy disjoint ranges).
    /// The total thread count is the sum over tenants; everything else —
    /// cores, device sizes, per-thread budget — follows the scale exactly as
    /// in [`build`](Self::build), so tenants contend for the same device a
    /// single-tenant run would own outright.
    ///
    /// The result's [`SimResult::per_tenant`] carries one entry per pair,
    /// in order, and the `tenant-*` conservation audit invariants tie those
    /// entries back to the global counters.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or any tenant has zero threads.
    pub fn build_multi(
        variant: VariantKind,
        tenants: &[(WorkloadKind, u32)],
        scale: &ExperimentScale,
    ) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant required");
        assert!(
            tenants.iter().all(|(_, t)| *t > 0),
            "every tenant needs at least one thread"
        );
        let total: u32 = tenants.iter().map(|(_, t)| *t).sum();
        let cfg = scale
            .apply(SimConfig::default().with_variant(variant))
            .with_threads(total);
        Simulation {
            cfg,
            workload: tenants[0].0,
            tenants: tenants.to_vec(),
            scale: *scale,
            drive: TraceDrive::Synthetic,
        }
    }

    /// The co-located `(workload, threads)` tenants of a multi-tenant
    /// simulation (empty for single-tenant runs).
    pub fn tenants(&self) -> &[(WorkloadKind, u32)] {
        &self.tenants
    }

    /// Bytes of footprint each tenant of a multi-tenant run owns: the
    /// scaled footprint divided evenly, page-aligned, at least one page.
    pub fn tenant_slice_bytes(&self) -> u64 {
        let n = self.tenants.len().max(1) as u64;
        let page = PAGE_SIZE as u64;
        ((self.scale.footprint_bytes / n) / page * page).max(page)
    }

    /// The composed trace source of a multi-tenant run: one tenant-tagged
    /// [`WorkloadSource`] per tenant (distinct seeds so identical workloads
    /// do not phase-lock), address-shifted onto its footprint slice and
    /// stacked on the thread axis.
    fn multi_source(&self) -> Tenants {
        let slice = self.tenant_slice_bytes();
        let inputs: Vec<BoxedSource> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, (workload, threads))| {
                let spec = workload.spec().scaled_to(slice);
                let source = WorkloadSource::new(&spec, *threads, self.scale.seed + i as u64)
                    .with_tenant(TenantId(i as u32));
                if i == 0 {
                    Box::new(source) as BoxedSource
                } else {
                    Box::new(Shift::new(Box::new(source), i as u64 * slice)) as BoxedSource
                }
            })
            .collect();
        Tenants::new(inputs)
    }

    /// Returns a copy driven as `drive` (record to / replay from a trace
    /// directory instead of plain live generation).
    pub fn with_drive(mut self, drive: TraceDrive) -> Self {
        self.drive = drive;
        self
    }

    /// The trace drive of this simulation.
    pub fn drive(&self) -> &TraceDrive {
        &self.drive
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Mutable access to the configuration (tweak knobs before running).
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.cfg
    }

    /// The workload being simulated.
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// Work units each thread executes: the total amount of work is fixed
    /// per workload and scale (`accesses_per_thread` × cores), independent
    /// of how many threads it is divided among — the paper's traces
    /// "represent the same section of the program" regardless of the thread
    /// count (§VI-A).
    pub fn per_thread_budget(&self) -> u64 {
        let total_units = self.scale.accesses_per_thread * self.cfg.cpu.cores as u64;
        (total_units / self.cfg.threads as u64).max(1)
    }

    /// The canonical `.sbt` file name of this simulation's workload stream.
    ///
    /// The name covers everything the stream depends on — workload, scaled
    /// footprint, thread count, per-thread budget and seed — and nothing it
    /// does not (the design variant never influences generation), so every
    /// variant of one ablation shares a single recorded trace.
    pub fn trace_file_name(&self) -> String {
        let spec = self.scale.workload_spec(self.workload);
        format!(
            "{}-fp{}-t{}-n{}-seed{}.sbt",
            self.workload.name(),
            spec.footprint_bytes,
            self.cfg.threads,
            self.per_thread_budget(),
            self.scale.seed
        )
    }

    /// Runs the simulation to completion and returns its metrics.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace drive fails
    /// (missing/corrupt trace file, unwritable record directory); use
    /// [`try_run`](Self::try_run) to handle trace errors.
    pub fn run(&self) -> SimResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("trace drive failed: {e}"))
    }

    /// Runs the simulation and evaluates the cross-layer conservation audit
    /// ([`crate::audit`]) against its result. A dirty report means a counter
    /// stopped conserving somewhere in the stack — the report names the
    /// violated invariants.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run); the audit
    /// itself never panics (callers decide whether a violation is fatal via
    /// [`skybyte_types::AuditReport::assert_clean`]).
    pub fn audit(&self) -> (SimResult, skybyte_types::AuditReport) {
        let result = self.run();
        let report = crate::audit::audit(&result);
        (result, report)
    }

    /// Runs the simulation, materialising the trace source described by the
    /// drive: live generation, generation teed to disk, or file replay.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn try_run(&self) -> Result<SimResult, TraceError> {
        self.try_run_with_telemetry().map(|(result, _)| result)
    }

    /// [`try_run`](Self::try_run), additionally returning the telemetry
    /// captured over the run — `Some` exactly when
    /// `config().telemetry.enabled` is set. Telemetry is observe-only, so
    /// the [`SimResult`] is bit-identical either way.
    pub fn try_run_with_telemetry(
        &self,
    ) -> Result<(SimResult, Option<TelemetryOutput>), TraceError> {
        let budget = self.per_thread_budget();
        if !self.tenants.is_empty() {
            // Multi-tenant runs compose their source live; trace drives are
            // per-stream concepts (record the tenants separately and stack
            // them with `Tenants` / `trace mix` instead).
            return match &self.drive {
                TraceDrive::Synthetic => {
                    let mut source = self.multi_source();
                    Ok(self.run_loop_full(&mut source, budget))
                }
                TraceDrive::Record { .. } | TraceDrive::Replay { .. } => {
                    Err(TraceError::Unsupported(
                        "trace drives are single-tenant; record each tenant's \
                         stream separately and compose them with `Tenants`",
                    ))
                }
            };
        }
        let spec = self.scale.workload_spec(self.workload);
        match &self.drive {
            TraceDrive::Synthetic => {
                let mut source = WorkloadSource::new(&spec, self.cfg.threads, self.scale.seed);
                Ok(self.run_loop_full(&mut source, budget))
            }
            TraceDrive::Record { dir } => {
                std::fs::create_dir_all(dir)?;
                let name = self.trace_file_name();
                let source = WorkloadSource::new(&spec, self.cfg.threads, self.scale.seed);
                let header = TraceHeader {
                    threads: self.cfg.threads,
                    footprint_bytes: spec.footprint_bytes,
                    seed: self.scale.seed,
                    source: source.identity(),
                    // Synthetic workload recordings are single-tenant;
                    // omitting the table keeps the golden corpus at format
                    // version 1, byte-identical to earlier releases.
                    tenant_of_thread: None,
                };
                // Concurrent runner workers may record the same (workload,
                // scale) stream for different variants; each writes a unique
                // temp file whose deterministic content is renamed over the
                // final name, so the last rename wins harmlessly.
                let tmp = dir.join(format!(".{name}.{}.tmp", next_record_token()));
                let writer = TraceWriter::create(&tmp, &header)?;
                let mut tee = Record::new(source, writer);
                let result = self.run_loop_full(&mut tee, budget);
                tee.finish()?;
                std::fs::rename(&tmp, dir.join(&name))?;
                Ok(result)
            }
            TraceDrive::Replay { dir } => {
                let path = dir.join(self.trace_file_name());
                let mut source = TraceFileSource::open(&path)?;
                self.check_stream_count(&source)?;
                // The trace defines the work; the budget only caps it.
                Ok(self.run_loop_full(&mut source, u64::MAX))
            }
        }
    }

    /// The single place the "does the trace's stream count match the
    /// configured thread count" precondition is enforced, shared by every
    /// file-replay entry point.
    fn check_stream_count(&self, source: &TraceFileSource) -> Result<(), TraceError> {
        if source.threads() != self.cfg.threads {
            return Err(TraceError::ThreadMismatch {
                expected: self.cfg.threads,
                got: source.threads(),
            });
        }
        Ok(())
    }

    /// Replays an explicit `.sbt` file (ignoring the drive), with the trace
    /// defining the amount of work. The configuration's thread count must
    /// match the trace's stream count.
    pub fn run_trace_file(&self, path: &Path) -> Result<SimResult, TraceError> {
        self.run_trace_file_with_telemetry(path)
            .map(|(result, _)| result)
    }

    /// [`run_trace_file`](Self::run_trace_file), additionally returning the
    /// telemetry captured over the replay — `Some` exactly when
    /// `config().telemetry.enabled` is set.
    pub fn run_trace_file_with_telemetry(
        &self,
        path: &Path,
    ) -> Result<(SimResult, Option<TelemetryOutput>), TraceError> {
        let mut source = TraceFileSource::open(path)?;
        self.check_stream_count(&source)?;
        Ok(self.run_loop_full(&mut source, u64::MAX))
    }

    /// Runs the simulation driven by an arbitrary [`TraceSource`] whose
    /// stream count matches the configured thread count. Each thread
    /// executes at most `per_thread_budget` units (pass `u64::MAX` to let
    /// finite sources define the work).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the stream count differs
    /// from `config().threads`, or the source fails mid-run.
    pub fn run_with_source(
        &self,
        source: &mut dyn TraceSource,
        per_thread_budget: u64,
    ) -> SimResult {
        self.run_loop(source, per_thread_budget)
    }

    /// The result's workload label and the total footprint (in pages) the
    /// SSD is preconditioned with: the single workload's spec, or the
    /// joined tenant labels and the sum of the tenant footprint slices.
    fn label_and_footprint_pages(&self) -> (String, u64) {
        if self.tenants.is_empty() {
            let spec = self.scale.workload_spec(self.workload);
            (spec.name().to_string(), spec.footprint_pages())
        } else {
            let label = self
                .tenants
                .iter()
                .map(|(w, _)| w.name())
                .collect::<Vec<_>>()
                .join("+");
            let slice_pages = (self.tenant_slice_bytes() / PAGE_SIZE as u64).max(1);
            (label, slice_pages * self.tenants.len() as u64)
        }
    }

    /// Drives the [`SystemState`] access pipeline (`crate::system`) over
    /// `source` to completion and assembles the result.
    fn run_loop(&self, source: &mut dyn TraceSource, per_thread_budget: u64) -> SimResult {
        self.run_loop_full(source, per_thread_budget).0
    }

    /// [`run_loop`](Self::run_loop), carrying the telemetry output (if
    /// capture is enabled on the configuration) alongside the result.
    fn run_loop_full(
        &self,
        source: &mut dyn TraceSource,
        per_thread_budget: u64,
    ) -> (SimResult, Option<TelemetryOutput>) {
        let (label, footprint_pages) = self.label_and_footprint_pages();
        let mut system = self.build_system(source, per_thread_budget, footprint_pages);
        system.run(source);
        system.into_result_with_telemetry(&label)
    }

    /// Runs the synthetic workload through the legacy min-clock reference
    /// loop instead of the event-driven engine. The two are property-tested
    /// to produce identical results; this exists so those tests (and anyone
    /// auditing the event engine) can drive the executable specification.
    #[doc(hidden)]
    pub fn run_reference(&self) -> SimResult {
        let budget = self.per_thread_budget();
        let (label, footprint_pages) = self.label_and_footprint_pages();
        if !self.tenants.is_empty() {
            let mut source = self.multi_source();
            let mut system = self.build_system(&mut source, budget, footprint_pages);
            system.run_reference(&mut source);
            return system.into_result(&label);
        }
        let spec = self.scale.workload_spec(self.workload);
        let mut source = WorkloadSource::new(&spec, self.cfg.threads, self.scale.seed);
        let mut system = self.build_system(&mut source, budget, footprint_pages);
        system.run_reference(&mut source);
        system.into_result(&label)
    }

    fn build_system(
        &self,
        source: &mut dyn TraceSource,
        per_thread_budget: u64,
        footprint_pages: u64,
    ) -> SystemState {
        // The truncation guard counts retired work units (idle iterations
        // are free in the event engine and deliberately don't count): the
        // budgeted accesses of every thread, a 64x allowance for squashed
        // re-issues, plus slack for tiny scales.
        let max_units = self.cfg.threads as u64 * self.scale.accesses_per_thread * 64 + 1_000_000;
        SystemState::new(
            &self.cfg,
            self.scale.seed,
            source,
            per_thread_budget,
            footprint_pages,
            self.scale.precondition_fraction,
            max_units,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::Nanos;

    fn run(variant: VariantKind, workload: WorkloadKind) -> SimResult {
        Simulation::build(variant, workload, &ExperimentScale::tiny()).run()
    }

    #[test]
    fn every_variant_completes_on_a_sample_workload() {
        for variant in VariantKind::ALL {
            let r = run(variant, WorkloadKind::Ycsb);
            assert!(r.exec_time > Nanos::ZERO, "{variant}: zero exec time");
            assert!(r.total_accesses() > 0, "{variant}: no accesses");
            assert_eq!(r.variant, variant);
        }
    }

    #[test]
    fn dram_only_is_the_fastest_and_base_cssd_the_slowest() {
        // The Figure 2 / Figure 14 shape: DRAM-Only ≪ SkyByte-Full < Base.
        let base = run(VariantKind::BaseCssd, WorkloadKind::Bc);
        let full = run(VariantKind::SkyByteFull, WorkloadKind::Bc);
        let dram = run(VariantKind::DramOnly, WorkloadKind::Bc);
        assert!(
            dram.exec_time < full.exec_time,
            "DRAM-Only ({}) should beat SkyByte-Full ({})",
            dram.exec_time,
            full.exec_time
        );
        assert!(
            full.exec_time < base.exec_time,
            "SkyByte-Full ({}) should beat Base-CSSD ({})",
            full.exec_time,
            base.exec_time
        );
        // DRAM-only never touches the SSD.
        assert_eq!(dram.requests.ssd_read_miss, 0);
        assert_eq!(dram.requests.host, dram.total_accesses());
    }

    #[test]
    fn write_log_reduces_flash_write_traffic() {
        // The Figure 18 shape for a write-heavy workload.
        let base = run(VariantKind::BaseCssd, WorkloadKind::Tpcc);
        let w = run(VariantKind::SkyByteW, WorkloadKind::Tpcc);
        assert!(
            w.flash_pages_programmed < base.flash_pages_programmed,
            "write log must reduce flash programs: {} vs {}",
            w.flash_pages_programmed,
            base.flash_pages_programmed
        );
        assert!(w.compactions > 0 || w.flash_pages_programmed == 0);
        assert!(w.log_index_bytes > 0);
    }

    #[test]
    fn context_switches_only_happen_with_the_mechanism_enabled() {
        let base = run(VariantKind::BaseCssd, WorkloadKind::Srad);
        let c = run(VariantKind::SkyByteC, WorkloadKind::Srad);
        assert_eq!(base.context_switches, 0);
        assert!(c.context_switches > 0, "SkyByte-C must context switch");
        assert!(c.boundedness.context_switch > Nanos::ZERO);
    }

    #[test]
    fn promotion_only_happens_with_migration_enabled() {
        let base = run(VariantKind::BaseCssd, WorkloadKind::Ycsb);
        let p = run(VariantKind::SkyByteP, WorkloadKind::Ycsb);
        assert_eq!(base.pages_promoted, 0);
        assert!(p.pages_promoted > 0, "SkyByte-P must promote hot pages");
        assert!(p.requests.host > 0, "promoted pages must serve host hits");
    }

    #[test]
    fn migration_cadence_is_bounded_under_context_switching() {
        // SkyByte-CP squashes long accesses without classifying them; the
        // cadence counter must still advance on those, so the policy fires at
        // most once per MIGRATION_PERIOD_ACCESSES-access window.
        for workload in [WorkloadKind::Srad, WorkloadKind::Tpcc] {
            let r = run(VariantKind::SkyByteCP, workload);
            assert!(r.context_switches > 0, "{workload:?}: expected squashes");
            assert!(r.ssd_accesses > 0);
            let windows = r.ssd_accesses / MIGRATION_PERIOD_ACCESSES + 1;
            assert!(
                r.migration_runs <= windows,
                "{workload:?}: migration ran {} times over {} SSD accesses \
                 (max one per {MIGRATION_PERIOD_ACCESSES}-access window)",
                r.migration_runs,
                r.ssd_accesses
            );
        }
    }

    #[test]
    fn squashed_accesses_are_counted_by_the_ssd_access_counter() {
        let r = run(VariantKind::SkyByteC, WorkloadKind::Srad);
        // The classified SSD requests exclude squashed accesses, so the raw
        // counter must be at least as large.
        let classified = r.requests.ssd_read_hit + r.requests.ssd_read_miss + r.requests.ssd_write;
        assert!(r.ssd_accesses >= classified);
        assert!(
            r.context_switches == 0 || r.ssd_accesses > classified,
            "squashed accesses must show up in ssd_accesses"
        );
    }

    #[test]
    fn tiny_scale_runs_never_truncate() {
        for variant in [
            VariantKind::BaseCssd,
            VariantKind::SkyByteFull,
            VariantKind::DramOnly,
            VariantKind::AstriFlashCxl,
        ] {
            let r = run(variant, WorkloadKind::Ycsb);
            assert!(!r.truncated, "{variant}: tiny-scale run truncated");
        }
    }

    #[test]
    fn tlb_configuration_is_respected() {
        let scale = ExperimentScale::tiny();
        // A 1-entry TLB with a huge walk penalty must slow execution down
        // versus the Table II default.
        let default_cfg = scale.apply(SimConfig::default().with_variant(VariantKind::BaseCssd));
        let tiny_tlb_cfg = default_cfg.clone().with_tlb(1, Nanos::from_micros(5));
        let fast = Simulation::with_config(default_cfg, WorkloadKind::Ycsb, &scale).run();
        let slow = Simulation::with_config(tiny_tlb_cfg, WorkloadKind::Ycsb, &scale).run();
        assert!(
            slow.exec_time > fast.exec_time,
            "1-entry TLB ({}) must be slower than the default ({})",
            slow.exec_time,
            fast.exec_time
        );
    }

    #[test]
    fn record_then_replay_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "skybyte-engine-record-{}-{}",
            std::process::id(),
            line!()
        ));
        let scale = ExperimentScale::tiny().with_accesses_per_thread(120);
        let sim = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Tpcc, &scale);
        let live = sim
            .clone()
            .with_drive(TraceDrive::Record { dir: dir.clone() })
            .run();
        assert!(dir.join(sim.trace_file_name()).exists());
        let replayed = sim
            .clone()
            .with_drive(TraceDrive::Replay { dir: dir.clone() })
            .run();
        assert_eq!(live, replayed, "replay must be bit-identical to live");
        // Recording is a pure tee: it does not perturb the simulation.
        assert_eq!(sim.run(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaying_a_missing_trace_is_a_typed_error() {
        let scale = ExperimentScale::tiny();
        let sim = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale).with_drive(
            TraceDrive::Replay {
                dir: std::path::PathBuf::from("/nonexistent/skybyte-traces"),
            },
        );
        assert!(matches!(
            sim.try_run(),
            Err(skybyte_trace::TraceError::Io(_))
        ));
    }

    #[test]
    fn trace_file_names_cover_the_stream_inputs_only() {
        let scale = ExperimentScale::tiny();
        let a = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        // The variant never influences generation, so variants with the
        // same thread count share a recorded trace… (SkyByte variants
        // oversubscribe threads, so they get their own stream per §VI-A)
        let cfg_b = scale
            .apply(SimConfig::default().with_variant(VariantKind::SkyByteW))
            .with_threads(a.config().threads);
        let b = Simulation::with_config(cfg_b, WorkloadKind::Ycsb, &scale);
        assert_eq!(a.trace_file_name(), b.trace_file_name());
        // …while anything the stream depends on gets its own file.
        let c = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Bc, &scale);
        assert_ne!(a.trace_file_name(), c.trace_file_name());
        let d = Simulation::build(
            VariantKind::BaseCssd,
            WorkloadKind::Ycsb,
            &scale.with_accesses_per_thread(scale.accesses_per_thread + 1),
        );
        assert_ne!(a.trace_file_name(), d.trace_file_name());
    }

    #[test]
    fn build_multi_colocates_tenants_on_one_device() {
        let scale = ExperimentScale::tiny().with_accesses_per_thread(200);
        let sim = Simulation::build_multi(
            VariantKind::SkyByteFull,
            &[(WorkloadKind::Ycsb, 4), (WorkloadKind::Tpcc, 4)],
            &scale,
        );
        assert_eq!(sim.config().threads, 8);
        assert_eq!(sim.tenants().len(), 2);
        // Each tenant owns a page-aligned slice of the scaled footprint.
        let slice = sim.tenant_slice_bytes();
        assert_eq!(slice % skybyte_types::PAGE_SIZE as u64, 0);
        assert_eq!(slice, scale.footprint_bytes / 2);
        let r = sim.run();
        assert_eq!(r.workload, "ycsb+tpcc");
        assert_eq!(r.per_tenant.len(), 2);
        assert_eq!(r.per_tenant[0].tenant, TenantId(0));
        assert_eq!(r.per_tenant[1].tenant, TenantId(1));
        for t in &r.per_tenant {
            assert_eq!(t.threads, 4);
            assert!(t.accesses() > 0);
            assert!(t.finish_time > skybyte_types::Nanos::ZERO);
            assert!(t.finish_time <= r.exec_time);
        }
        // Attribution partitions the global counters.
        assert_eq!(
            r.per_tenant.iter().map(|t| t.accesses()).sum::<u64>(),
            r.requests.total()
        );
        assert_eq!(
            r.per_tenant.iter().map(|t| t.instructions).sum::<u64>(),
            r.instructions
        );
    }

    #[test]
    fn multi_tenant_runs_are_deterministic() {
        let scale = ExperimentScale::tiny().with_accesses_per_thread(150);
        let tenants = [(WorkloadKind::Ycsb, 2), (WorkloadKind::Tpcc, 2)];
        let a = Simulation::build_multi(VariantKind::SkyByteFull, &tenants, &scale).run();
        let b = Simulation::build_multi(VariantKind::SkyByteFull, &tenants, &scale).run();
        assert_eq!(a, b, "multi-tenant runs must be bit-identical");
    }

    #[test]
    fn multi_tenant_trace_drives_are_a_typed_error() {
        let scale = ExperimentScale::tiny();
        let tenants = [(WorkloadKind::Ycsb, 2), (WorkloadKind::Tpcc, 2)];
        for drive in [
            TraceDrive::Record {
                dir: std::path::PathBuf::from("/tmp/never-created"),
            },
            TraceDrive::Replay {
                dir: std::path::PathBuf::from("/tmp/never-created"),
            },
        ] {
            let sim =
                Simulation::build_multi(VariantKind::BaseCssd, &tenants, &scale).with_drive(drive);
            assert!(matches!(sim.try_run(), Err(TraceError::Unsupported(_))));
        }
    }

    #[test]
    fn single_tenant_runs_carry_exactly_one_attribution() {
        let r = run(VariantKind::SkyByteFull, WorkloadKind::Ycsb);
        assert_eq!(r.per_tenant.len(), 1);
        let t = &r.per_tenant[0];
        assert_eq!(t.tenant, TenantId::ZERO);
        assert_eq!(t.threads, r.threads);
        assert_eq!(t.requests, r.requests);
        assert_eq!(t.amat, r.amat);
        assert_eq!(t.latency_hist, r.latency_hist);
        assert_eq!(t.ssd_accesses, r.ssd_accesses);
        assert_eq!(t.squashed_accesses, r.squashed_accesses);
        assert_eq!(t.instructions, r.instructions);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(VariantKind::SkyByteFull, WorkloadKind::Dlrm);
        let b = run(VariantKind::SkyByteFull, WorkloadKind::Dlrm);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.flash_pages_programmed, b.flash_pages_programmed);
        assert_eq!(a.context_switches, b.context_switches);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn boundedness_is_dominated_by_memory_on_the_baseline() {
        // Figure 4: with a CXL-SSD the workloads are 77–99.8 % memory bound.
        let base = run(VariantKind::BaseCssd, WorkloadKind::BfsDense);
        assert!(
            base.boundedness.memory_fraction() > 0.6,
            "expected memory-bound execution, got {:.2}",
            base.boundedness.memory_fraction()
        );
    }

    #[test]
    fn amat_improves_with_skybyte() {
        let base = run(VariantKind::BaseCssd, WorkloadKind::Srad);
        let full = run(VariantKind::SkyByteFull, WorkloadKind::Srad);
        assert!(full.amat.amat() < base.amat.amat());
        assert!(base.amat.accesses > 0 && full.amat.accesses > 0);
    }

    #[test]
    fn custom_config_knobs_are_respected() {
        let scale = ExperimentScale::tiny();
        let mut cfg = scale.apply(
            SimConfig::default()
                .with_variant(VariantKind::SkyByteFull)
                .with_threads(4)
                .with_cores(2),
        );
        cfg.cs_threshold = Nanos::from_micros(80);
        let sim = Simulation::with_config(cfg, WorkloadKind::Radix, &scale);
        let r = sim.run();
        assert_eq!(r.threads, 4);
        assert_eq!(r.cores, 2);
        // A very high threshold suppresses almost every context switch for
        // ULL flash (only GC-blocked accesses still trigger).
        let low = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Radix, &scale).run();
        assert!(r.context_switches <= low.context_switches);
    }
}
