//! The full-system simulation engine.
//!
//! The engine advances a set of cores in global time order (always stepping
//! the core with the smallest local clock). Each step executes one work unit
//! of the thread running on that core: a compute burst followed by one
//! off-chip memory access resolved through the OS page table — either to
//! host DRAM or, over the CXL port, to the SSD controller. When the SSD
//! answers with a `SkyByte-Delay` hint and the coordinated context switch is
//! enabled, the access is squashed, the thread blocks until the data is
//! expected in SSD DRAM, and the scheduler picks another thread for the core
//! (Figure 7). Page migrations run in the background between accesses.

use crate::metrics::{AmatBreakdown, LayerCounters, RequestBreakdown, SimResult};
use crate::migration::{MigrationContext, MigrationEngine};
use crate::scale::ExperimentScale;
use crate::thread_exec::ThreadExecutor;
use skybyte_cpu::{Boundedness, CoreTimingModel, HostDram};
use skybyte_cxl::CxlPort;
use skybyte_os::{BlockReason, PagePlacement, PageTable, Scheduler, Tlb};
use skybyte_ssd::{ServedBy, SsdController};
use skybyte_trace::{Record, TraceError, TraceFileSource, TraceHeader, TraceWriter};
use skybyte_types::{LatencyHistogram, Lpa, Nanos, PageNumber, SimConfig, VariantKind};
use skybyte_workloads::{TraceSource, WorkloadKind, WorkloadSource};
use std::path::{Path, PathBuf};

/// How often (in SSD accesses, squashed or not) the background migration
/// policy gets a chance to promote a page. Public so the conservation audit
/// can bound `migration_runs` per access window.
pub const MIGRATION_PERIOD_ACCESSES: u64 = 64;

/// A process-unique token for record temp-file names, so concurrent runner
/// workers recording the same stream never collide.
fn next_record_token() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Where a simulation's access streams come from.
///
/// The drive is part of the simulation's identity: [`crate::runner`]
/// fingerprints include it, so a replayed run and its live twin memoize
/// separately (they produce identical results, but only the replay depends
/// on the trace directory's contents).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceDrive {
    /// Generate the synthetic trace live (the default).
    #[default]
    Synthetic,
    /// Generate live **and** tee the consumed stream to
    /// `dir/<trace file name>` (see [`Simulation::trace_file_name`]).
    Record {
        /// Directory the `.sbt` file is written into (created if missing).
        dir: PathBuf,
    },
    /// Replay `dir/<trace file name>` instead of generating.
    Replay {
        /// Directory the `.sbt` file is read from.
        dir: PathBuf,
    },
}

/// A fully configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SimConfig,
    workload: WorkloadKind,
    scale: ExperimentScale,
    drive: TraceDrive,
}

impl Simulation {
    /// Builds a simulation of `variant` running `workload` at the given
    /// scale, using the paper's Table II configuration for everything the
    /// scale does not override.
    pub fn build(variant: VariantKind, workload: WorkloadKind, scale: &ExperimentScale) -> Self {
        let cfg = scale.apply(SimConfig::default().with_variant(variant));
        Simulation {
            cfg,
            workload,
            scale: *scale,
            drive: TraceDrive::Synthetic,
        }
    }

    /// Builds a simulation from an explicit configuration (for sensitivity
    /// sweeps that tweak individual knobs).
    pub fn with_config(cfg: SimConfig, workload: WorkloadKind, scale: &ExperimentScale) -> Self {
        Simulation {
            cfg,
            workload,
            scale: *scale,
            drive: TraceDrive::Synthetic,
        }
    }

    /// Returns a copy driven as `drive` (record to / replay from a trace
    /// directory instead of plain live generation).
    pub fn with_drive(mut self, drive: TraceDrive) -> Self {
        self.drive = drive;
        self
    }

    /// The trace drive of this simulation.
    pub fn drive(&self) -> &TraceDrive {
        &self.drive
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Mutable access to the configuration (tweak knobs before running).
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.cfg
    }

    /// The workload being simulated.
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// Work units each thread executes: the total amount of work is fixed
    /// per workload and scale (`accesses_per_thread` × cores), independent
    /// of how many threads it is divided among — the paper's traces
    /// "represent the same section of the program" regardless of the thread
    /// count (§VI-A).
    pub fn per_thread_budget(&self) -> u64 {
        let total_units = self.scale.accesses_per_thread * self.cfg.cpu.cores as u64;
        (total_units / self.cfg.threads as u64).max(1)
    }

    /// The canonical `.sbt` file name of this simulation's workload stream.
    ///
    /// The name covers everything the stream depends on — workload, scaled
    /// footprint, thread count, per-thread budget and seed — and nothing it
    /// does not (the design variant never influences generation), so every
    /// variant of one ablation shares a single recorded trace.
    pub fn trace_file_name(&self) -> String {
        let spec = self.scale.workload_spec(self.workload);
        format!(
            "{}-fp{}-t{}-n{}-seed{}.sbt",
            self.workload.name(),
            spec.footprint_bytes,
            self.cfg.threads,
            self.per_thread_budget(),
            self.scale.seed
        )
    }

    /// Runs the simulation to completion and returns its metrics.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace drive fails
    /// (missing/corrupt trace file, unwritable record directory); use
    /// [`try_run`](Self::try_run) to handle trace errors.
    pub fn run(&self) -> SimResult {
        self.try_run()
            .unwrap_or_else(|e| panic!("trace drive failed: {e}"))
    }

    /// Runs the simulation and evaluates the cross-layer conservation audit
    /// ([`crate::audit`]) against its result. A dirty report means a counter
    /// stopped conserving somewhere in the stack — the report names the
    /// violated invariants.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run); the audit
    /// itself never panics (callers decide whether a violation is fatal via
    /// [`skybyte_types::AuditReport::assert_clean`]).
    pub fn audit(&self) -> (SimResult, skybyte_types::AuditReport) {
        let result = self.run();
        let report = crate::audit::audit(&result);
        (result, report)
    }

    /// Runs the simulation, materialising the trace source described by the
    /// drive: live generation, generation teed to disk, or file replay.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn try_run(&self) -> Result<SimResult, TraceError> {
        let spec = self.scale.workload_spec(self.workload);
        let budget = self.per_thread_budget();
        match &self.drive {
            TraceDrive::Synthetic => {
                let mut source = WorkloadSource::new(&spec, self.cfg.threads, self.scale.seed);
                Ok(self.run_loop(&mut source, budget))
            }
            TraceDrive::Record { dir } => {
                std::fs::create_dir_all(dir)?;
                let name = self.trace_file_name();
                let source = WorkloadSource::new(&spec, self.cfg.threads, self.scale.seed);
                let header = TraceHeader {
                    threads: self.cfg.threads,
                    footprint_bytes: spec.footprint_bytes,
                    seed: self.scale.seed,
                    source: source.identity(),
                };
                // Concurrent runner workers may record the same (workload,
                // scale) stream for different variants; each writes a unique
                // temp file whose deterministic content is renamed over the
                // final name, so the last rename wins harmlessly.
                let tmp = dir.join(format!(".{name}.{}.tmp", next_record_token()));
                let writer = TraceWriter::create(&tmp, &header)?;
                let mut tee = Record::new(source, writer);
                let result = self.run_loop(&mut tee, budget);
                tee.finish()?;
                std::fs::rename(&tmp, dir.join(&name))?;
                Ok(result)
            }
            TraceDrive::Replay { dir } => {
                let path = dir.join(self.trace_file_name());
                let mut source = TraceFileSource::open(&path)?;
                if source.threads() != self.cfg.threads {
                    return Err(TraceError::ThreadMismatch {
                        expected: self.cfg.threads,
                        got: source.threads(),
                    });
                }
                // The trace defines the work; the budget only caps it.
                Ok(self.run_loop(&mut source, u64::MAX))
            }
        }
    }

    /// Replays an explicit `.sbt` file (ignoring the drive), with the trace
    /// defining the amount of work. The configuration's thread count must
    /// match the trace's stream count.
    pub fn run_trace_file(&self, path: &Path) -> Result<SimResult, TraceError> {
        let mut source = TraceFileSource::open(path)?;
        if source.threads() != self.cfg.threads {
            return Err(TraceError::ThreadMismatch {
                expected: self.cfg.threads,
                got: source.threads(),
            });
        }
        Ok(self.run_loop(&mut source, u64::MAX))
    }

    /// Runs the simulation driven by an arbitrary [`TraceSource`] whose
    /// stream count matches the configured thread count. Each thread
    /// executes at most `per_thread_budget` units (pass `u64::MAX` to let
    /// finite sources define the work).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the stream count differs
    /// from `config().threads`, or the source fails mid-run.
    pub fn run_with_source(
        &self,
        source: &mut dyn TraceSource,
        per_thread_budget: u64,
    ) -> SimResult {
        self.run_loop(source, per_thread_budget)
    }

    fn run_loop(&self, source: &mut dyn TraceSource, per_thread_budget: u64) -> SimResult {
        let cfg = &self.cfg;
        cfg.validate().expect("invalid simulation configuration");
        assert_eq!(
            source.threads(),
            cfg.threads,
            "trace source must provide one stream per configured thread"
        );
        let cores = cfg.cpu.cores as usize;
        let threads = cfg.threads;
        let spec = self.scale.workload_spec(self.workload);

        let core_model = CoreTimingModel::new(&cfg.cpu);
        let mut ssd = SsdController::new(cfg);
        let mut port = CxlPort::new(cfg.ssd.cxl_protocol_latency, cfg.ssd.link_bandwidth_bps);
        let mut host_dram = HostDram::new(&cfg.host_dram);
        let mut sched = Scheduler::new(
            cfg.sched_policy,
            cfg.context_switch_overhead,
            self.scale.seed,
        );
        let mut page_table = PageTable::new();
        let mut tlb = Tlb::new(cfg.cpu.tlb.entries as usize, cfg.cpu.tlb.miss_latency);
        let mut migration = MigrationEngine::new(cfg);
        let mut execs: Vec<ThreadExecutor> = (0..threads)
            .map(|t| ThreadExecutor::new(t, per_thread_budget, source))
            .collect();
        for _ in 0..threads {
            sched.spawn();
        }

        // Precondition the SSD so garbage collection can trigger (§VI-A).
        if !cfg.infinite_host_dram {
            let footprint_pages = spec.footprint_pages();
            let precondition_pages = ((footprint_pages as f64 * self.scale.precondition_fraction)
                as u64)
                .min(ssd.logical_pages());
            ssd.precondition((0..precondition_pages).map(Lpa::new));
        }

        let mut core_clock = vec![Nanos::ZERO; cores];
        let mut boundedness = vec![Boundedness::default(); cores];
        let mut amat = AmatBreakdown::default();
        let mut requests = RequestBreakdown::default();
        let mut hist = LatencyHistogram::new();
        let mut instructions: u64 = 0;
        // Counts every SSD access, including squashed (context-switched) ones
        // that never reach the classified `requests` breakdown; the migration
        // cadence below must advance on those too, otherwise a request total
        // parked on a multiple of the period would re-fire the policy on
        // every access.
        let mut ssd_accesses: u64 = 0;
        // Squashed accesses alone: the audit's requests-conservation
        // invariant ties `classified SSD requests + squashed == ssd_accesses`.
        let mut squashed_accesses: u64 = 0;

        let max_steps = threads as u64 * self.scale.accesses_per_thread * 64 + 1_000_000;
        let mut steps: u64 = 0;
        let mut truncated = false;

        while !sched.all_finished() {
            steps += 1;
            if steps > max_steps {
                truncated = true;
                break;
            }
            let core = (0..cores)
                .min_by_key(|&c| core_clock[c])
                .expect("at least one core");
            let now = core_clock[core];

            // Make sure a thread is running on this core.
            let tid = match sched.running_on(core as u32) {
                Some(t) => t,
                None => match sched.schedule_on(core as u32, now) {
                    Some(t) => t,
                    None => {
                        // Nothing runnable: idle until the next wake-up.
                        let wake = sched
                            .next_wakeup()
                            .unwrap_or(now + Nanos::from_micros(1))
                            .max(now + Nanos::new(100));
                        boundedness[core].idle += wake - now;
                        core_clock[core] = wake;
                        continue;
                    }
                },
            };

            let unit = match execs[tid.0 as usize].next_unit(source) {
                Some(u) => u,
                None => {
                    sched.finish_thread(tid);
                    continue;
                }
            };

            // Compute burst.
            let compute = core_model.compute_time(unit.instructions);
            instructions += unit.instructions;
            boundedness[core].compute += compute;
            sched.account_runtime(tid, compute);
            let mut t = now + compute;

            // Address translation.
            let vpage = unit.access.addr.page();
            let walk = tlb.access(vpage);
            boundedness[core].memory += walk;
            t += walk;
            let placement = if cfg.infinite_host_dram {
                PagePlacement::HostDram(PageNumber(vpage.index()))
            } else {
                page_table.translate(vpage)
            };

            match placement {
                PagePlacement::HostDram(_) => {
                    let done = host_dram.access(t);
                    let latency = done - t;
                    let stall = core_model.effective_stall(latency);
                    boundedness[core].memory += stall;
                    sched.account_runtime(tid, stall);
                    t += stall;
                    amat.host_dram += latency;
                    amat.accesses += 1;
                    requests.host += 1;
                    hist.record(latency);
                    if !cfg.infinite_host_dram {
                        migration.record_host_access(Lpa::new(vpage.index()));
                    }
                }
                PagePlacement::CxlSsd(lpa) => {
                    ssd_accesses += 1;
                    let cl = unit.access.addr.cacheline_in_page() as u8;
                    let arrival = port.deliver_request(t);
                    let outcome = if unit.access.kind.is_write() {
                        ssd.handle_write(lpa, cl, arrival)
                    } else {
                        ssd.handle_read(lpa, cl, arrival)
                    };
                    migration.record_ssd_access(lpa, t);
                    let will_switch = outcome.delay_hint && cfg.device_triggered_ctx_swt;
                    if !will_switch {
                        // Squashed accesses are excluded; their replays are
                        // classified when they retire (§VI-D).
                        if unit.access.kind.is_write() {
                            requests.ssd_write += 1;
                        } else if outcome.served_by == ServedBy::Flash {
                            requests.ssd_read_miss += 1;
                        } else {
                            requests.ssd_read_hit += 1;
                        }
                    }

                    if will_switch {
                        // Long Delay Exception: squash, block, switch.
                        squashed_accesses += 1;
                        let cs = cfg.context_switch_overhead;
                        boundedness[core].context_switch += cs;
                        execs[tid.0 as usize].push_back(unit);
                        let wake = outcome.ready_at.max(outcome.estimated_ready_at);
                        sched.yield_current(core as u32, t, wake, BlockReason::LongSsdAccess);
                        t += cs;
                        // The squashed access is excluded from AMAT (§VI-D).
                    } else {
                        let response = if unit.access.kind.is_write() {
                            // A write completion carries no payload back to
                            // the host; it is a response, not a new request.
                            port.deliver_response(outcome.ready_at)
                        } else {
                            port.deliver_cacheline(outcome.ready_at)
                        };
                        // Monotone by construction (the port never answers
                        // before the request); `since` fails loudly if an
                        // accounting bug ever breaks that, instead of the old
                        // `saturating_sub` masking it as a zero latency.
                        let latency = response.since(t);
                        let stall = core_model.effective_stall(latency);
                        boundedness[core].memory += stall;
                        sched.account_runtime(tid, stall);
                        t += stall;
                        amat.cxl_protocol += cfg.ssd.cxl_protocol_latency * 2;
                        amat.indexing += outcome.breakdown.indexing;
                        amat.ssd_dram += outcome.breakdown.ssd_dram;
                        amat.flash += outcome.breakdown.flash;
                        amat.accesses += 1;
                        hist.record(latency);

                        if outcome.served_by == ServedBy::Flash {
                            let mut ctx = MigrationContext {
                                ssd: &mut ssd,
                                page_table: &mut page_table,
                                tlb: &mut tlb,
                                port: &mut port,
                                host_dram: &mut host_dram,
                            };
                            migration.on_demand_fill(lpa, t, &mut ctx);
                        }
                    }

                    if migration.enabled() && ssd_accesses.is_multiple_of(MIGRATION_PERIOD_ACCESSES)
                    {
                        let mut ctx = MigrationContext {
                            ssd: &mut ssd,
                            page_table: &mut page_table,
                            tlb: &mut tlb,
                            port: &mut port,
                            host_dram: &mut host_dram,
                        };
                        migration.run(t, &mut ctx);
                    }
                }
            }

            core_clock[core] = t;
            if execs[tid.0 as usize].is_finished() && sched.running_on(core as u32) == Some(tid) {
                sched.finish_thread(tid);
            }
        }

        let exec_time = core_clock.iter().copied().fold(Nanos::ZERO, Nanos::max);
        // Busy-time figures describe the measured window [0, exec_time], so
        // they are sampled *before* the end-of-run flush: service committed
        // to a still-draining backlog (and the flush traffic itself) must not
        // inflate utilisation past the window's physical capacity.
        let flash_busy_time = ssd.flash_busy_time_within(exec_time);
        let compaction_time = ssd.compaction_time_within(exec_time);
        // Flush all dirty state (cached dirty pages / the write log) so the
        // flash write traffic of page-granular and log-structured designs is
        // compared on equal footing.
        ssd.flush_all(exec_time);
        let mut total_boundedness = Boundedness::default();
        for b in &boundedness {
            total_boundedness.merge(b);
        }

        // Raw per-layer counters, snapshot after the flush so they describe
        // the complete run (the conservation laws only close once every
        // dirty page and log entry has reached flash).
        let layers = LayerCounters {
            ssd: *ssd.stats(),
            flash: *ssd.flash_stats(),
            ftl: *ssd.ftl_stats(),
            write_log: ssd.write_log_stats().copied(),
            write_log_resident_entries: ssd.write_log_resident_entries().unwrap_or(0),
            migration: *migration.stats(),
        };

        SimResult {
            variant: cfg.variant,
            workload: spec.name().to_string(),
            threads,
            cores: cfg.cpu.cores,
            exec_time,
            instructions,
            boundedness: total_boundedness,
            amat,
            requests,
            latency_hist: hist,
            flash_pages_programmed: ssd.flash_stats().pages_programmed,
            flash_pages_read: ssd.flash_stats().pages_read,
            avg_flash_read_latency: ssd.flash_stats().avg_read_latency(),
            write_amplification: ssd.ftl_stats().write_amplification(),
            context_switches: sched.stats().context_switches,
            pages_promoted: migration.stats().promotions,
            pages_demoted: migration.stats().demotions,
            compactions: ssd.stats().compactions,
            compaction_time,
            log_index_bytes: ssd.write_log_index_bytes().unwrap_or(0),
            flash_busy_time,
            flash_channels: cfg.ssd.geometry.channels,
            gc_campaigns: ssd.ftl_stats().gc_campaigns,
            ssd_accesses,
            squashed_accesses,
            migration_runs: migration.stats().runs,
            truncated,
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(variant: VariantKind, workload: WorkloadKind) -> SimResult {
        Simulation::build(variant, workload, &ExperimentScale::tiny()).run()
    }

    #[test]
    fn every_variant_completes_on_a_sample_workload() {
        for variant in VariantKind::ALL {
            let r = run(variant, WorkloadKind::Ycsb);
            assert!(r.exec_time > Nanos::ZERO, "{variant}: zero exec time");
            assert!(r.total_accesses() > 0, "{variant}: no accesses");
            assert_eq!(r.variant, variant);
        }
    }

    #[test]
    fn dram_only_is_the_fastest_and_base_cssd_the_slowest() {
        // The Figure 2 / Figure 14 shape: DRAM-Only ≪ SkyByte-Full < Base.
        let base = run(VariantKind::BaseCssd, WorkloadKind::Bc);
        let full = run(VariantKind::SkyByteFull, WorkloadKind::Bc);
        let dram = run(VariantKind::DramOnly, WorkloadKind::Bc);
        assert!(
            dram.exec_time < full.exec_time,
            "DRAM-Only ({}) should beat SkyByte-Full ({})",
            dram.exec_time,
            full.exec_time
        );
        assert!(
            full.exec_time < base.exec_time,
            "SkyByte-Full ({}) should beat Base-CSSD ({})",
            full.exec_time,
            base.exec_time
        );
        // DRAM-only never touches the SSD.
        assert_eq!(dram.requests.ssd_read_miss, 0);
        assert_eq!(dram.requests.host, dram.total_accesses());
    }

    #[test]
    fn write_log_reduces_flash_write_traffic() {
        // The Figure 18 shape for a write-heavy workload.
        let base = run(VariantKind::BaseCssd, WorkloadKind::Tpcc);
        let w = run(VariantKind::SkyByteW, WorkloadKind::Tpcc);
        assert!(
            w.flash_pages_programmed < base.flash_pages_programmed,
            "write log must reduce flash programs: {} vs {}",
            w.flash_pages_programmed,
            base.flash_pages_programmed
        );
        assert!(w.compactions > 0 || w.flash_pages_programmed == 0);
        assert!(w.log_index_bytes > 0);
    }

    #[test]
    fn context_switches_only_happen_with_the_mechanism_enabled() {
        let base = run(VariantKind::BaseCssd, WorkloadKind::Srad);
        let c = run(VariantKind::SkyByteC, WorkloadKind::Srad);
        assert_eq!(base.context_switches, 0);
        assert!(c.context_switches > 0, "SkyByte-C must context switch");
        assert!(c.boundedness.context_switch > Nanos::ZERO);
    }

    #[test]
    fn promotion_only_happens_with_migration_enabled() {
        let base = run(VariantKind::BaseCssd, WorkloadKind::Ycsb);
        let p = run(VariantKind::SkyByteP, WorkloadKind::Ycsb);
        assert_eq!(base.pages_promoted, 0);
        assert!(p.pages_promoted > 0, "SkyByte-P must promote hot pages");
        assert!(p.requests.host > 0, "promoted pages must serve host hits");
    }

    #[test]
    fn migration_cadence_is_bounded_under_context_switching() {
        // SkyByte-CP squashes long accesses without classifying them; the
        // cadence counter must still advance on those, so the policy fires at
        // most once per MIGRATION_PERIOD_ACCESSES-access window.
        for workload in [WorkloadKind::Srad, WorkloadKind::Tpcc] {
            let r = run(VariantKind::SkyByteCP, workload);
            assert!(r.context_switches > 0, "{workload:?}: expected squashes");
            assert!(r.ssd_accesses > 0);
            let windows = r.ssd_accesses / MIGRATION_PERIOD_ACCESSES + 1;
            assert!(
                r.migration_runs <= windows,
                "{workload:?}: migration ran {} times over {} SSD accesses \
                 (max one per {MIGRATION_PERIOD_ACCESSES}-access window)",
                r.migration_runs,
                r.ssd_accesses
            );
        }
    }

    #[test]
    fn squashed_accesses_are_counted_by_the_ssd_access_counter() {
        let r = run(VariantKind::SkyByteC, WorkloadKind::Srad);
        // The classified SSD requests exclude squashed accesses, so the raw
        // counter must be at least as large.
        let classified = r.requests.ssd_read_hit + r.requests.ssd_read_miss + r.requests.ssd_write;
        assert!(r.ssd_accesses >= classified);
        assert!(
            r.context_switches == 0 || r.ssd_accesses > classified,
            "squashed accesses must show up in ssd_accesses"
        );
    }

    #[test]
    fn tiny_scale_runs_never_truncate() {
        for variant in [
            VariantKind::BaseCssd,
            VariantKind::SkyByteFull,
            VariantKind::DramOnly,
            VariantKind::AstriFlashCxl,
        ] {
            let r = run(variant, WorkloadKind::Ycsb);
            assert!(!r.truncated, "{variant}: tiny-scale run truncated");
        }
    }

    #[test]
    fn tlb_configuration_is_respected() {
        let scale = ExperimentScale::tiny();
        // A 1-entry TLB with a huge walk penalty must slow execution down
        // versus the Table II default.
        let default_cfg = scale.apply(SimConfig::default().with_variant(VariantKind::BaseCssd));
        let tiny_tlb_cfg = default_cfg.clone().with_tlb(1, Nanos::from_micros(5));
        let fast = Simulation::with_config(default_cfg, WorkloadKind::Ycsb, &scale).run();
        let slow = Simulation::with_config(tiny_tlb_cfg, WorkloadKind::Ycsb, &scale).run();
        assert!(
            slow.exec_time > fast.exec_time,
            "1-entry TLB ({}) must be slower than the default ({})",
            slow.exec_time,
            fast.exec_time
        );
    }

    #[test]
    fn record_then_replay_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "skybyte-engine-record-{}-{}",
            std::process::id(),
            line!()
        ));
        let scale = ExperimentScale::tiny().with_accesses_per_thread(120);
        let sim = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Tpcc, &scale);
        let live = sim
            .clone()
            .with_drive(TraceDrive::Record { dir: dir.clone() })
            .run();
        assert!(dir.join(sim.trace_file_name()).exists());
        let replayed = sim
            .clone()
            .with_drive(TraceDrive::Replay { dir: dir.clone() })
            .run();
        assert_eq!(live, replayed, "replay must be bit-identical to live");
        // Recording is a pure tee: it does not perturb the simulation.
        assert_eq!(sim.run(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaying_a_missing_trace_is_a_typed_error() {
        let scale = ExperimentScale::tiny();
        let sim = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale).with_drive(
            TraceDrive::Replay {
                dir: std::path::PathBuf::from("/nonexistent/skybyte-traces"),
            },
        );
        assert!(matches!(
            sim.try_run(),
            Err(skybyte_trace::TraceError::Io(_))
        ));
    }

    #[test]
    fn trace_file_names_cover_the_stream_inputs_only() {
        let scale = ExperimentScale::tiny();
        let a = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        // The variant never influences generation, so variants with the
        // same thread count share a recorded trace… (SkyByte variants
        // oversubscribe threads, so they get their own stream per §VI-A)
        let cfg_b = scale
            .apply(SimConfig::default().with_variant(VariantKind::SkyByteW))
            .with_threads(a.config().threads);
        let b = Simulation::with_config(cfg_b, WorkloadKind::Ycsb, &scale);
        assert_eq!(a.trace_file_name(), b.trace_file_name());
        // …while anything the stream depends on gets its own file.
        let c = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Bc, &scale);
        assert_ne!(a.trace_file_name(), c.trace_file_name());
        let d = Simulation::build(
            VariantKind::BaseCssd,
            WorkloadKind::Ycsb,
            &scale.with_accesses_per_thread(scale.accesses_per_thread + 1),
        );
        assert_ne!(a.trace_file_name(), d.trace_file_name());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(VariantKind::SkyByteFull, WorkloadKind::Dlrm);
        let b = run(VariantKind::SkyByteFull, WorkloadKind::Dlrm);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.flash_pages_programmed, b.flash_pages_programmed);
        assert_eq!(a.context_switches, b.context_switches);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn boundedness_is_dominated_by_memory_on_the_baseline() {
        // Figure 4: with a CXL-SSD the workloads are 77–99.8 % memory bound.
        let base = run(VariantKind::BaseCssd, WorkloadKind::BfsDense);
        assert!(
            base.boundedness.memory_fraction() > 0.6,
            "expected memory-bound execution, got {:.2}",
            base.boundedness.memory_fraction()
        );
    }

    #[test]
    fn amat_improves_with_skybyte() {
        let base = run(VariantKind::BaseCssd, WorkloadKind::Srad);
        let full = run(VariantKind::SkyByteFull, WorkloadKind::Srad);
        assert!(full.amat.amat() < base.amat.amat());
        assert!(base.amat.accesses > 0 && full.amat.accesses > 0);
    }

    #[test]
    fn custom_config_knobs_are_respected() {
        let scale = ExperimentScale::tiny();
        let mut cfg = scale.apply(
            SimConfig::default()
                .with_variant(VariantKind::SkyByteFull)
                .with_threads(4)
                .with_cores(2),
        );
        cfg.cs_threshold = Nanos::from_micros(80);
        let sim = Simulation::with_config(cfg, WorkloadKind::Radix, &scale);
        let r = sim.run();
        assert_eq!(r.threads, 4);
        assert_eq!(r.cores, 2);
        // A very high threshold suppresses almost every context switch for
        // ULL flash (only GC-blocked accesses still trigger).
        let low = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Radix, &scale).run();
        assert!(r.context_switches <= low.context_switches);
    }
}
