//! The discrete-event queue at the heart of the engine.
//!
//! The engine used to advance by scanning every core's clock with
//! `min_by_key` once per work unit and letting idle cores crawl forward in
//! bounded 1 µs increments. [`EventQueue`] replaces that scan: each core has
//! (at most) one outstanding *next-activity* event, and the run loop simply
//! pops the earliest one. Ties are broken deterministically on
//! `(time, core, seq)` — first by timestamp, then by core index (matching
//! the old scan's "first minimal clock wins" rule bit for bit), and finally
//! by a monotonically increasing sequence number so re-armed events of the
//! same core retire in insertion order.

use skybyte_types::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled engine activity: core `core` becomes actionable at `time`.
///
/// The `seq` number is assigned by the queue at push time and makes the pop
/// order a total order even for events that agree on `(time, core)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated instant at which the event fires.
    pub time: Nanos,
    /// The core the event belongs to.
    pub core: u32,
    /// Queue-assigned insertion sequence number (monotone across pushes).
    pub seq: u64,
}

/// A monotone min-heap of [`Event`]s keyed on `(time, core, seq)`.
///
/// "Monotone" is a property of how the engine uses it — events are only ever
/// pushed at or after the time of the most recent pop — not something the
/// queue enforces; the queue itself is a plain deterministic priority queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Nanos, u32, u64)>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `core` to act at `time` and returns the sequence number the
    /// event was tagged with.
    pub fn push(&mut self, time: Nanos, core: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, core, seq)));
        seq
    }

    /// Pops the earliest event in `(time, core, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap
            .pop()
            .map(|Reverse((time, core, seq))| Event { time, core, seq })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::new(30), 0);
        q.push(Nanos::new(10), 1);
        q.push(Nanos::new(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.core).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_timestamps_retire_in_core_then_seq_order_for_any_insertion_order() {
        // Build every insertion order of four events that tie on the
        // timestamp: two cores, and for core 1 two pushes whose relative
        // insertion order (their seq) must be preserved.
        let t = Nanos::new(500);
        // (core, payload) — payload distinguishes the two core-1 pushes.
        let events: [(u32, char); 4] = [(2, 'a'), (1, 'b'), (1, 'c'), (0, 'd')];
        let permutations: Vec<Vec<usize>> = {
            let mut perms = Vec::new();
            let mut idx = [0usize, 1, 2, 3];
            heap_permutations(&mut idx, 4, &mut perms);
            perms
        };
        for perm in permutations {
            let mut q = EventQueue::new();
            // seq is assigned at push time, so track which payload got which
            // seq in this insertion order.
            let mut seq_of = std::collections::HashMap::new();
            for &i in &perm {
                let (core, payload) = events[i];
                let seq = q.push(t, core);
                seq_of.insert(seq, (core, payload));
            }
            let popped: Vec<(u32, u64)> = std::iter::from_fn(|| q.pop())
                .map(|e| (e.core, e.seq))
                .collect();
            // Cores ascend; within a core, seq ascends.
            let mut sorted = popped.clone();
            sorted.sort();
            assert_eq!(
                popped, sorted,
                "insertion order {perm:?} broke the tie-break"
            );
            // The two core-1 events retire in the order they were pushed
            // (i.e. payload order follows seq order within the core).
            let core1: Vec<u64> = popped
                .iter()
                .filter(|(c, _)| *c == 1)
                .map(|&(_, s)| s)
                .collect();
            assert!(core1[0] < core1[1]);
        }
    }

    #[test]
    fn seq_is_monotone_across_pushes() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::new(1), 0);
        let b = q.push(Nanos::new(1), 0);
        assert!(b > a);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().seq, a);
        assert_eq!(q.pop().unwrap().seq, b);
        assert!(q.is_empty());
    }

    /// Heap's algorithm, collecting every permutation of `idx[..k]`.
    fn heap_permutations(idx: &mut [usize; 4], k: usize, out: &mut Vec<Vec<usize>>) {
        if k == 1 {
            out.push(idx.to_vec());
            return;
        }
        for i in 0..k {
            heap_permutations(idx, k - 1, out);
            if k.is_multiple_of(2) {
                idx.swap(i, k - 1);
            } else {
                idx.swap(0, k - 1);
            }
        }
    }
}
