//! End-to-end metrics produced by a simulation run.

use crate::migration::MigrationStats;
use serde::{Deserialize, Serialize};
use skybyte_cpu::Boundedness;
use skybyte_cxl::CxlPortStats;
use skybyte_ssd::{FlashStats, FtlStats, SsdStats, WriteLogStats};
use skybyte_types::{LatencyHistogram, Nanos, PolicyConfig, RatioBreakdown, TenantId, VariantKind};

/// Average-memory-access-time accounting in the five components of
/// Figure 17: host DRAM, CXL protocol, SSD index lookup, SSD DRAM and flash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmatBreakdown {
    /// Total latency spent in host DRAM accesses.
    pub host_dram: Nanos,
    /// Total CXL protocol latency (both directions).
    pub cxl_protocol: Nanos,
    /// Total SSD index-lookup latency.
    pub indexing: Nanos,
    /// Total SSD DRAM access latency.
    pub ssd_dram: Nanos,
    /// Total flash access latency (queueing + tR/tProg).
    pub flash: Nanos,
    /// Number of memory accesses included (context-switched accesses are
    /// excluded, their replays are included, following §VI-D).
    pub accesses: u64,
}

impl AmatBreakdown {
    /// Total latency across all components.
    pub fn total(&self) -> Nanos {
        self.host_dram + self.cxl_protocol + self.indexing + self.ssd_dram + self.flash
    }

    /// The average memory access time.
    pub fn amat(&self) -> Nanos {
        if self.accesses == 0 {
            Nanos::ZERO
        } else {
            self.total() / self.accesses
        }
    }

    /// The component fractions as a named breakdown (Figure 17b).
    pub fn fractions(&self) -> RatioBreakdown {
        let mut b = RatioBreakdown::new();
        b.add("host_dram", self.host_dram.as_nanos() as f64);
        b.add("cxl_protocol", self.cxl_protocol.as_nanos() as f64);
        b.add("indexing", self.indexing.as_nanos() as f64);
        b.add("ssd_dram", self.ssd_dram.as_nanos() as f64);
        b.add("flash", self.flash.as_nanos() as f64);
        b
    }
}

/// The Figure 16 request classification: host DRAM read/write (H-R/W),
/// CXL-SSD DRAM read hit (S-R-H), CXL-SSD DRAM read miss (S-R-M) and
/// CXL-SSD write (S-W).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestBreakdown {
    /// Accesses served by host DRAM (including promoted pages).
    pub host: u64,
    /// CXL-SSD reads that hit in SSD DRAM (write log, data cache or
    /// zero-fill).
    pub ssd_read_hit: u64,
    /// CXL-SSD reads that required a flash access.
    pub ssd_read_miss: u64,
    /// CXL-SSD writes (all absorbed by the write log in SkyByte).
    pub ssd_write: u64,
}

impl RequestBreakdown {
    /// Total classified accesses.
    pub fn total(&self) -> u64 {
        self.host + self.ssd_read_hit + self.ssd_read_miss + self.ssd_write
    }

    /// Fraction helper.
    fn frac(&self, x: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            x as f64 / t as f64
        }
    }

    /// Fraction of accesses served by host DRAM.
    pub fn host_fraction(&self) -> f64 {
        self.frac(self.host)
    }

    /// Fraction of accesses that are SSD reads missing in SSD DRAM.
    pub fn ssd_read_miss_fraction(&self) -> f64 {
        self.frac(self.ssd_read_miss)
    }

    /// Fraction of accesses that are SSD writes.
    pub fn ssd_write_fraction(&self) -> f64 {
        self.frac(self.ssd_write)
    }

    /// Fraction of accesses that are SSD reads hitting in SSD DRAM.
    pub fn ssd_read_hit_fraction(&self) -> f64 {
        self.frac(self.ssd_read_hit)
    }
}

/// Per-tenant slice of a run's metrics, accumulated by the engine at its
/// attribution points (every access retires against the issuing thread's
/// tenant; see `skybyte_sim::system`).
///
/// The conservation audit ties the per-tenant sums back to the global
/// counters (`tenant-*` invariants), so attribution can never silently leak
/// an access. A single-tenant run carries exactly one entry covering the
/// whole run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// The tenant these counters describe.
    pub tenant: TenantId,
    /// Number of threads the tenant ran.
    pub threads: u32,
    /// Instructions executed by the tenant's threads (compute bursts).
    pub instructions: u64,
    /// The tenant's classified memory requests (Figure 16 classes).
    pub requests: RequestBreakdown,
    /// AMAT component accounting over the tenant's accesses.
    pub amat: AmatBreakdown,
    /// Distribution of the tenant's end-to-end memory latencies.
    pub latency_hist: LatencyHistogram,
    /// SSD accesses the tenant issued over the CXL port (incl. squashed).
    pub ssd_accesses: u64,
    /// The tenant's accesses squashed by a `SkyByte-Delay` exception.
    pub squashed_accesses: u64,
    /// Context switches the tenant's threads suffered (== squashes, the
    /// device-triggered switch being the only yield source).
    pub context_switches: u64,
    /// Simulated instant the tenant's last thread finished its stream —
    /// the per-tenant completion time interference is measured against.
    pub finish_time: Nanos,
}

impl TenantCounters {
    /// Total classified accesses of this tenant.
    pub fn accesses(&self) -> u64 {
        self.requests.total()
    }

    /// The tenant's completion time relative to a solo (uncontended) run of
    /// the same tenant — the per-tenant slowdown an interference experiment
    /// reports. Values above 1 mean co-location cost the tenant time.
    pub fn slowdown_over(&self, solo: &TenantCounters) -> f64 {
        if solo.finish_time == Nanos::ZERO {
            return 0.0;
        }
        self.finish_time.as_nanos() as f64 / solo.finish_time.as_nanos() as f64
    }
}

/// A post-run snapshot of every device layer's raw counters.
///
/// The headline [`SimResult`] fields are *derived* figures (the quantities
/// the paper plots); this snapshot preserves the underlying per-layer
/// counters they were derived from, so the conservation audit
/// (`skybyte_sim::audit`) can reconcile the layers against each other —
/// e.g. FTL page conservation against the flash array's program count, or
/// the write log's entry population against the controller's append count.
/// Taken *after* the end-of-run flush, so it describes the complete run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerCounters {
    /// CXL link traffic counters (requests, responses, payload bytes).
    ///
    /// `#[serde(default)]` so golden results pinned before the port joined
    /// the snapshot still deserialize (they carry no link counters).
    #[serde(default)]
    pub cxl: CxlPortStats,
    /// SSD-controller counters (request routing, compaction, prefetch).
    pub ssd: SsdStats,
    /// Flash-array traffic counters (reads/programs/erases and latencies).
    pub flash: FlashStats,
    /// FTL counters (host writes, GC relocations, erases).
    pub ftl: FtlStats,
    /// Write-log counters, when the log is enabled.
    pub write_log: Option<WriteLogStats>,
    /// Entries resident in the write log's active buffer after the final
    /// flush (0 when the log is disabled or fully drained).
    pub write_log_resident_entries: u64,
    /// Page-migration counters (promotions, demotions, shootdowns).
    pub migration: MigrationStats,
}

/// Everything measured by one simulation run.
///
/// `PartialEq` compares every field, which is how the trace subsystem's
/// keystone tests assert that a recorded-then-replayed run is bit-identical
/// to the live run that recorded it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// The design variant simulated.
    pub variant: VariantKind,
    /// The policy selection the run executed under (eviction, admission,
    /// hotness, tenant scheduling) — surfaced so an ablation row is
    /// self-describing and the audit can hold per policy.
    ///
    /// `#[serde(default)]` so golden results pinned before the policy seam
    /// deserialize to the default block (which is what they ran under).
    #[serde(default)]
    pub policy: PolicyConfig,
    /// Workload name (Table I).
    pub workload: String,
    /// Number of application threads.
    pub threads: u32,
    /// Number of cores.
    pub cores: u32,
    /// End-to-end execution time (max over cores).
    pub exec_time: Nanos,
    /// Total instructions executed (compute bursts).
    pub instructions: u64,
    /// Memory/compute/context-switch boundedness (Figures 4 and 10).
    pub boundedness: Boundedness,
    /// AMAT component accounting (Figure 17).
    pub amat: AmatBreakdown,
    /// Request classification (Figure 16).
    pub requests: RequestBreakdown,
    /// Distribution of end-to-end memory latencies (Figure 3).
    pub latency_hist: LatencyHistogram,
    /// Pages programmed to flash (Figure 18 / 20).
    pub flash_pages_programmed: u64,
    /// Pages read from flash.
    pub flash_pages_read: u64,
    /// Average flash read latency including queueing (Table III).
    pub avg_flash_read_latency: Nanos,
    /// Write amplification factor reported by the FTL.
    pub write_amplification: f64,
    /// Context switches performed by the CXL-aware scheduler.
    pub context_switches: u64,
    /// Pages promoted to host DRAM.
    pub pages_promoted: u64,
    /// Pages evicted from host DRAM back to the SSD.
    pub pages_demoted: u64,
    /// Log compactions executed.
    pub compactions: u64,
    /// Compaction busy time inside the measured window `[0, exec_time]`:
    /// a union measure of the campaign windows (overlapping campaigns are
    /// counted once; a campaign arriving on a lagging core clock entirely
    /// inside an already-covered gap is conservatively dropped rather than
    /// double-counted), clamped to the execution horizon. The audit asserts
    /// it never exceeds `exec_time`.
    pub compaction_time: Nanos,
    /// Peak memory footprint of the write-log index (0 when disabled).
    pub log_index_bytes: u64,
    /// Aggregate busy time of all flash channels inside the measured window
    /// `[0, exec_time]`. Service committed to a backlog still draining when
    /// the run ends (and the end-of-run flush) is excluded, so this is
    /// bounded by `exec_time × flash_channels` — which makes
    /// [`Self::ssd_bandwidth_utilisation`] a true fraction with no clamp.
    pub flash_busy_time: Nanos,
    /// Number of flash channels (for bandwidth-utilisation normalisation).
    pub flash_channels: u32,
    /// GC campaigns run by the FTL.
    pub gc_campaigns: u64,
    /// SSD accesses issued over the CXL port, including squashed
    /// (context-switched) accesses that are excluded from [`Self::requests`].
    pub ssd_accesses: u64,
    /// SSD accesses squashed by a `SkyByte-Delay` long-delay exception (the
    /// thread blocked and re-issued the access later). Together with the
    /// classified SSD requests these must add up to [`Self::ssd_accesses`].
    pub squashed_accesses: u64,
    /// Invocations of the background page-migration policy.
    pub migration_runs: u64,
    /// True when the run hit the engine's step limit before every thread
    /// finished — the metrics then describe a truncated execution.
    pub truncated: bool,
    /// Raw per-layer counter snapshot backing the derived figures above.
    pub layers: LayerCounters,
    /// Per-tenant attribution of the counters above, one entry per tenant
    /// in tenant-id order (a single-tenant run has exactly one).
    ///
    /// `#[serde(default)]` so golden results pinned before multi-tenancy
    /// still deserialize; [`Self::diff_fields`] treats such a golden as
    /// pre-tenant schema and skips the fields it cannot have pinned.
    #[serde(default)]
    pub per_tenant: Vec<TenantCounters>,
}

impl SimResult {
    /// Total memory accesses classified.
    pub fn total_accesses(&self) -> u64 {
        self.requests.total()
    }

    /// Work throughput in accesses per second (the Figure 15 bar metric).
    pub fn throughput_accesses_per_sec(&self) -> f64 {
        if self.exec_time == Nanos::ZERO {
            return 0.0;
        }
        self.total_accesses() as f64 * 1e9 / self.exec_time.as_nanos() as f64
    }

    /// Instructions per second.
    pub fn throughput_instructions_per_sec(&self) -> f64 {
        if self.exec_time == Nanos::ZERO {
            return 0.0;
        }
        self.instructions as f64 * 1e9 / self.exec_time.as_nanos() as f64
    }

    /// Average flash-channel utilisation over the run (the Figure 15 line
    /// metric, "SSD bandwidth utilisation").
    ///
    /// Reports the raw ratio: over-unity utilisation is an accounting bug,
    /// not a display issue, so there is deliberately no `.min(1.0)` clamp —
    /// the `flash-busy-bounded` audit invariant flags any violation instead
    /// of silently hiding it.
    pub fn ssd_bandwidth_utilisation(&self) -> f64 {
        if self.exec_time == Nanos::ZERO || self.flash_channels == 0 {
            return 0.0;
        }
        self.flash_busy_time.as_nanos() as f64
            / (self.exec_time.as_nanos() as f64 * self.flash_channels as f64)
    }

    /// Speed-up of this run over a baseline run of the same workload
    /// (baseline execution time divided by this execution time).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.exec_time == Nanos::ZERO {
            return 0.0;
        }
        baseline.exec_time.as_nanos() as f64 / self.exec_time.as_nanos() as f64
    }

    /// Execution time normalised to a baseline (lower is better, as plotted
    /// in Figures 14, 21, 22 and 23).
    pub fn normalized_exec_time(&self, baseline: &SimResult) -> f64 {
        if baseline.exec_time == Nanos::ZERO {
            return 0.0;
        }
        self.exec_time.as_nanos() as f64 / baseline.exec_time.as_nanos() as f64
    }

    /// Field-by-field comparison against another result, returning one
    /// `"path: expected X, got Y"` line per differing field.
    ///
    /// This is the diff the golden-corpus verifier prints when a replayed
    /// trace no longer reproduces its pinned result: a plain `PartialEq`
    /// failure says *that* the numbers drifted, the field list says *where*.
    pub fn diff_fields(&self, golden: &SimResult) -> Vec<String> {
        let mut out = Vec::new();
        macro_rules! cmp {
            ($path:expr, $a:expr, $b:expr) => {
                if $a != $b {
                    out.push(format!("{}: expected {:?}, got {:?}", $path, $b, $a));
                }
            };
        }
        cmp!("variant", self.variant, golden.variant);
        cmp!("policy", self.policy, golden.policy);
        cmp!("workload", &self.workload, &golden.workload);
        cmp!("threads", self.threads, golden.threads);
        cmp!("cores", self.cores, golden.cores);
        cmp!("exec_time", self.exec_time, golden.exec_time);
        cmp!("instructions", self.instructions, golden.instructions);
        cmp!(
            "boundedness.compute",
            self.boundedness.compute,
            golden.boundedness.compute
        );
        cmp!(
            "boundedness.memory",
            self.boundedness.memory,
            golden.boundedness.memory
        );
        cmp!(
            "boundedness.context_switch",
            self.boundedness.context_switch,
            golden.boundedness.context_switch
        );
        cmp!(
            "boundedness.idle",
            self.boundedness.idle,
            golden.boundedness.idle
        );
        cmp!("amat.host_dram", self.amat.host_dram, golden.amat.host_dram);
        cmp!(
            "amat.cxl_protocol",
            self.amat.cxl_protocol,
            golden.amat.cxl_protocol
        );
        cmp!("amat.indexing", self.amat.indexing, golden.amat.indexing);
        cmp!("amat.ssd_dram", self.amat.ssd_dram, golden.amat.ssd_dram);
        cmp!("amat.flash", self.amat.flash, golden.amat.flash);
        cmp!("amat.accesses", self.amat.accesses, golden.amat.accesses);
        cmp!("requests.host", self.requests.host, golden.requests.host);
        cmp!(
            "requests.ssd_read_hit",
            self.requests.ssd_read_hit,
            golden.requests.ssd_read_hit
        );
        cmp!(
            "requests.ssd_read_miss",
            self.requests.ssd_read_miss,
            golden.requests.ssd_read_miss
        );
        cmp!(
            "requests.ssd_write",
            self.requests.ssd_write,
            golden.requests.ssd_write
        );
        if self.latency_hist != golden.latency_hist {
            out.push(format!(
                "latency_hist: expected count {} mean {} max {}, \
                 got count {} mean {} max {}",
                golden.latency_hist.count(),
                golden.latency_hist.mean(),
                golden.latency_hist.max(),
                self.latency_hist.count(),
                self.latency_hist.mean(),
                self.latency_hist.max()
            ));
        }
        cmp!(
            "flash_pages_programmed",
            self.flash_pages_programmed,
            golden.flash_pages_programmed
        );
        cmp!(
            "flash_pages_read",
            self.flash_pages_read,
            golden.flash_pages_read
        );
        cmp!(
            "avg_flash_read_latency",
            self.avg_flash_read_latency,
            golden.avg_flash_read_latency
        );
        cmp!(
            "write_amplification",
            self.write_amplification,
            golden.write_amplification
        );
        cmp!(
            "context_switches",
            self.context_switches,
            golden.context_switches
        );
        cmp!("pages_promoted", self.pages_promoted, golden.pages_promoted);
        cmp!("pages_demoted", self.pages_demoted, golden.pages_demoted);
        cmp!("compactions", self.compactions, golden.compactions);
        cmp!(
            "compaction_time",
            self.compaction_time,
            golden.compaction_time
        );
        cmp!(
            "log_index_bytes",
            self.log_index_bytes,
            golden.log_index_bytes
        );
        cmp!(
            "flash_busy_time",
            self.flash_busy_time,
            golden.flash_busy_time
        );
        cmp!("flash_channels", self.flash_channels, golden.flash_channels);
        cmp!("gc_campaigns", self.gc_campaigns, golden.gc_campaigns);
        cmp!("ssd_accesses", self.ssd_accesses, golden.ssd_accesses);
        cmp!(
            "squashed_accesses",
            self.squashed_accesses,
            golden.squashed_accesses
        );
        cmp!("migration_runs", self.migration_runs, golden.migration_runs);
        cmp!("truncated", self.truncated, golden.truncated);
        // A golden pinned before the tenant schema carries neither
        // per-tenant counters nor the CXL-port snapshot; such fields are
        // additive attribution (the global counters above pin the same
        // physics), so they are skipped rather than forcing a re-pin of
        // every legacy golden.
        let legacy_golden = golden.per_tenant.is_empty() && !self.per_tenant.is_empty();
        if !legacy_golden {
            cmp!("layers.cxl", self.layers.cxl, golden.layers.cxl);
            if self.per_tenant.len() != golden.per_tenant.len() {
                out.push(format!(
                    "per_tenant: expected {} tenant(s), got {}",
                    golden.per_tenant.len(),
                    self.per_tenant.len()
                ));
            } else {
                for (mine, theirs) in self.per_tenant.iter().zip(&golden.per_tenant) {
                    let tenant = theirs.tenant;
                    cmp!(
                        format!("per_tenant[{tenant}].tenant"),
                        mine.tenant,
                        theirs.tenant
                    );
                    cmp!(
                        format!("per_tenant[{tenant}].threads"),
                        mine.threads,
                        theirs.threads
                    );
                    cmp!(
                        format!("per_tenant[{tenant}].instructions"),
                        mine.instructions,
                        theirs.instructions
                    );
                    cmp!(
                        format!("per_tenant[{tenant}].requests"),
                        mine.requests,
                        theirs.requests
                    );
                    cmp!(format!("per_tenant[{tenant}].amat"), mine.amat, theirs.amat);
                    if mine.latency_hist != theirs.latency_hist {
                        out.push(format!(
                            "per_tenant[{tenant}].latency_hist: expected count {} \
                             mean {} max {}, got count {} mean {} max {}",
                            theirs.latency_hist.count(),
                            theirs.latency_hist.mean(),
                            theirs.latency_hist.max(),
                            mine.latency_hist.count(),
                            mine.latency_hist.mean(),
                            mine.latency_hist.max()
                        ));
                    }
                    cmp!(
                        format!("per_tenant[{tenant}].ssd_accesses"),
                        mine.ssd_accesses,
                        theirs.ssd_accesses
                    );
                    cmp!(
                        format!("per_tenant[{tenant}].squashed_accesses"),
                        mine.squashed_accesses,
                        theirs.squashed_accesses
                    );
                    cmp!(
                        format!("per_tenant[{tenant}].context_switches"),
                        mine.context_switches,
                        theirs.context_switches
                    );
                    cmp!(
                        format!("per_tenant[{tenant}].finish_time"),
                        mine.finish_time,
                        theirs.finish_time
                    );
                }
            }
        }
        // A golden pinned before the hotness tracker exposed its page gauge
        // carries `tracked_pages: None`; the gauge is additive (no physics
        // behind it), so it is normalised away rather than forcing a re-pin.
        let mut ssd_mine = self.layers.ssd;
        if golden.layers.ssd.tracked_pages.is_none() {
            ssd_mine.tracked_pages = None;
        }
        cmp!("layers.ssd", ssd_mine, golden.layers.ssd);
        cmp!("layers.flash", self.layers.flash, golden.layers.flash);
        cmp!("layers.ftl", self.layers.ftl, golden.layers.ftl);
        cmp!(
            "layers.write_log",
            self.layers.write_log,
            golden.layers.write_log
        );
        cmp!(
            "layers.write_log_resident_entries",
            self.layers.write_log_resident_entries,
            golden.layers.write_log_resident_entries
        );
        cmp!(
            "layers.migration",
            self.layers.migration,
            golden.layers.migration
        );
        // Completeness guard: if a future SimResult field is added without a
        // `cmp!` line above, a drift in it must not slip through the golden
        // corpus as an empty diff. Legacy goldens are normalised first so
        // the deliberately skipped fields do not trip the guard.
        if out.is_empty() {
            let mut normalised = self.clone();
            if legacy_golden {
                normalised.per_tenant.clear();
                normalised.layers.cxl = golden.layers.cxl;
            }
            if golden.layers.ssd.tracked_pages.is_none() {
                normalised.layers.ssd.tracked_pages = None;
            }
            if normalised != *golden {
                out.push(
                    "results differ in a field diff_fields does not enumerate — \
                     update SimResult::diff_fields"
                        .to_string(),
                );
            }
        }
        out
    }
}

/// Geometric mean of a sequence of positive ratios (used for "geo. mean"
/// columns of Figures 14 and 23).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(exec_ns: u64) -> SimResult {
        SimResult {
            variant: VariantKind::BaseCssd,
            policy: PolicyConfig::default(),
            workload: "bc".to_string(),
            threads: 8,
            cores: 8,
            exec_time: Nanos::new(exec_ns),
            instructions: 1_000_000,
            boundedness: Boundedness::default(),
            amat: AmatBreakdown::default(),
            requests: RequestBreakdown {
                host: 10,
                ssd_read_hit: 60,
                ssd_read_miss: 10,
                ssd_write: 20,
            },
            latency_hist: LatencyHistogram::new(),
            flash_pages_programmed: 5,
            flash_pages_read: 9,
            avg_flash_read_latency: Nanos::from_micros(3),
            write_amplification: 1.2,
            context_switches: 0,
            pages_promoted: 0,
            pages_demoted: 0,
            compactions: 0,
            compaction_time: Nanos::ZERO,
            log_index_bytes: 0,
            flash_busy_time: Nanos::new(exec_ns / 2),
            flash_channels: 4,
            gc_campaigns: 0,
            ssd_accesses: 90,
            squashed_accesses: 0,
            migration_runs: 0,
            truncated: false,
            layers: LayerCounters::default(),
            per_tenant: vec![TenantCounters {
                tenant: TenantId::ZERO,
                threads: 8,
                instructions: 1_000_000,
                requests: RequestBreakdown {
                    host: 10,
                    ssd_read_hit: 60,
                    ssd_read_miss: 10,
                    ssd_write: 20,
                },
                amat: AmatBreakdown::default(),
                latency_hist: LatencyHistogram::new(),
                ssd_accesses: 90,
                squashed_accesses: 0,
                context_switches: 0,
                finish_time: Nanos::new(exec_ns),
            }],
        }
    }

    #[test]
    fn amat_breakdown_math() {
        let a = AmatBreakdown {
            host_dram: Nanos::new(100),
            cxl_protocol: Nanos::new(80),
            indexing: Nanos::new(20),
            ssd_dram: Nanos::new(200),
            flash: Nanos::new(600),
            accesses: 10,
        };
        assert_eq!(a.total(), Nanos::new(1000));
        assert_eq!(a.amat(), Nanos::new(100));
        assert!((a.fractions().fraction("flash") - 0.6).abs() < 1e-9);
        assert_eq!(AmatBreakdown::default().amat(), Nanos::ZERO);
    }

    #[test]
    fn request_breakdown_fractions() {
        let r = RequestBreakdown {
            host: 25,
            ssd_read_hit: 50,
            ssd_read_miss: 5,
            ssd_write: 20,
        };
        assert_eq!(r.total(), 100);
        assert!((r.host_fraction() - 0.25).abs() < 1e-12);
        assert!((r.ssd_read_hit_fraction() - 0.5).abs() < 1e-12);
        assert!((r.ssd_read_miss_fraction() - 0.05).abs() < 1e-12);
        assert!((r.ssd_write_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(RequestBreakdown::default().host_fraction(), 0.0);
    }

    #[test]
    fn sim_result_derived_metrics() {
        let fast = dummy(1_000_000);
        let slow = dummy(4_000_000);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.normalized_exec_time(&fast) - 4.0).abs() < 1e-9);
        assert!(fast.throughput_accesses_per_sec() > slow.throughput_accesses_per_sec());
        assert!(fast.throughput_instructions_per_sec() > 0.0);
        let util = fast.ssd_bandwidth_utilisation();
        assert!(util > 0.1 && util <= 0.2, "util {util}");
        assert_eq!(fast.total_accesses(), 100);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geometric_mean([5.0]) - 5.0).abs() < 1e-9);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        // Non-positive values are ignored rather than poisoning the mean.
        assert!((geometric_mean([2.0, 0.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sim_result_serialises() {
        let r = dummy(1000);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.exec_time, r.exec_time);
        assert_eq!(back.workload, "bc");
        // The full round trip is lossless (what the golden corpus relies on).
        assert_eq!(back, r);
    }

    #[test]
    fn utilisation_reports_raw_over_unity_ratios() {
        // Over-unity utilisation must be *visible* (the audit flags it), not
        // clamped away as it used to be.
        let mut r = dummy(1_000_000);
        r.flash_busy_time = r.exec_time * (r.flash_channels as u64) * 2;
        assert!((r.ssd_bandwidth_utilisation() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diff_fields_pinpoints_divergent_fields() {
        let golden = dummy(1_000_000);
        assert!(golden.diff_fields(&golden).is_empty());
        let mut run = golden.clone();
        run.requests.ssd_write += 1;
        run.exec_time += Nanos::new(5);
        run.layers.flash.pages_read = 77;
        let diff = run.diff_fields(&golden);
        assert_eq!(diff.len(), 3, "{diff:?}");
        assert!(diff.iter().any(|d| d.starts_with("requests.ssd_write:")));
        assert!(diff.iter().any(|d| d.starts_with("exec_time:")));
        assert!(diff.iter().any(|d| d.starts_with("layers.flash:")));
    }

    #[test]
    fn diff_fields_covers_tenant_and_port_counters() {
        let golden = dummy(1_000_000);
        let mut run = golden.clone();
        run.per_tenant[0].ssd_accesses += 1;
        run.per_tenant[0].finish_time += Nanos::new(9);
        run.layers.cxl.requests = 42;
        let diff = run.diff_fields(&golden);
        assert_eq!(diff.len(), 3, "{diff:?}");
        assert!(diff
            .iter()
            .any(|d| d.starts_with("per_tenant[t0].ssd_accesses:")));
        assert!(diff
            .iter()
            .any(|d| d.starts_with("per_tenant[t0].finish_time:")));
        assert!(diff.iter().any(|d| d.starts_with("layers.cxl:")));
        // A differing tenant count is reported as such.
        let mut extra = golden.clone();
        extra.per_tenant.push(extra.per_tenant[0].clone());
        let diff = extra.diff_fields(&golden);
        assert!(diff.iter().any(|d| d.starts_with("per_tenant: expected 1")));
    }

    #[test]
    fn legacy_goldens_without_tenant_counters_diff_clean() {
        // A golden pinned before the tenant schema deserializes with an
        // empty per-tenant vector and a zero port snapshot; a new-schema
        // run must diff clean against it as long as the shared fields agree.
        let run = dummy(1_000_000);
        let mut legacy = run.clone();
        legacy.per_tenant.clear();
        legacy.layers.cxl = Default::default();
        assert!(run.diff_fields(&legacy).is_empty());
        // …while a drift in a shared field is still caught.
        let mut drifted = run.clone();
        drifted.exec_time += Nanos::new(1);
        assert_eq!(drifted.diff_fields(&legacy).len(), 1);
    }

    #[test]
    fn tenant_counters_report_slowdowns() {
        let solo = TenantCounters {
            finish_time: Nanos::new(1_000),
            ..TenantCounters::default()
        };
        let contended = TenantCounters {
            finish_time: Nanos::new(2_500),
            ..TenantCounters::default()
        };
        assert!((contended.slowdown_over(&solo) - 2.5).abs() < 1e-12);
        assert_eq!(solo.slowdown_over(&TenantCounters::default()), 0.0);
        assert_eq!(solo.accesses(), 0);
    }

    #[test]
    fn sim_result_deserialises_without_new_schema_fields() {
        // Simulates reading a pre-tenant golden: serialize, strip the new
        // fields from the JSON, and deserialize through #[serde(default)].
        let r = dummy(1000);
        let json = serde_json::to_string(&r).unwrap();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        // Rebuild the object without `per_tenant` / `layers.cxl`.
        let stripped = match value {
            serde::Value::Map(fields) => serde::Value::Map(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "per_tenant")
                    .map(|(k, v)| {
                        if k == "layers" {
                            let layers = match v {
                                serde::Value::Map(lf) => serde::Value::Map(
                                    lf.into_iter().filter(|(lk, _)| lk != "cxl").collect(),
                                ),
                                other => other,
                            };
                            (k, layers)
                        } else {
                            (k, v)
                        }
                    })
                    .collect(),
            ),
            other => other,
        };
        let legacy_json = serde_json::to_string(&stripped).unwrap();
        let back: SimResult = serde_json::from_str(&legacy_json).unwrap();
        assert!(back.per_tenant.is_empty());
        assert_eq!(back.layers.cxl, Default::default());
        assert_eq!(back.exec_time, r.exec_time);
    }
}
