//! The tenant-scheduling seam of the [`SystemState`](crate::SystemState)
//! pipeline.
//!
//! The pipeline's `schedule` stage asks a [`TenantScheduler`] to place a
//! thread on an empty core. The default [`PassthroughScheduler`] delegates
//! straight to the OS scheduler's configured policy (RR / Random / CFS) and
//! is bit-identical to the pipeline before this seam existed.
//! [`FairShareScheduler`] reuses the pipeline's per-tenant attribution: it
//! favours threads of the tenant that has issued the fewest SSD accesses so
//! far, throttling a noisy neighbour at the scheduler rather than in the
//! device — but stays work-conserving (if the favoured tenants have nothing
//! runnable, any runnable thread is picked). [`QosScheduler`] does the same
//! using the write-log partition accounting
//! ([`skybyte_cache::WriteLogPartitions`]): tenants whose recent log appends
//! exceed their even share of the log are deprioritised.
//!
//! No implementation ever blocks a thread or charges a context switch;
//! the seam only biases *which* runnable thread an empty core picks, so the
//! audit's squash/context-switch agreement invariant holds under every
//! contender.

use crate::metrics::TenantCounters;
use skybyte_cache::WriteLogPartitions;
use skybyte_os::{Scheduler, ThreadId};
use skybyte_types::{Nanos, TenantMap, TenantSchedKind};
use std::fmt;

/// Read-only view of the pipeline's tenant attribution state, handed to the
/// scheduler at each placement decision.
pub struct TenantView<'a> {
    /// The thread → tenant partition of the run.
    pub map: &'a TenantMap,
    /// Per-tenant counters accumulated so far, indexed by dense tenant id.
    pub counters: &'a [TenantCounters],
    /// Windowed per-tenant write-log append accounting, present only when
    /// the pipeline maintains partitions (the `qos` contender).
    pub log_pressure: Option<&'a WriteLogPartitions>,
}

/// Places a thread on an empty core, optionally biased by per-tenant
/// attribution. Constructed by [`tenant_scheduler`] from the configured
/// [`TenantSchedKind`].
pub trait TenantScheduler: fmt::Debug {
    /// The policy this scheduler implements.
    fn kind(&self) -> TenantSchedKind;

    /// Picks a thread for `core` at `now`, or `None` if nothing is runnable.
    fn schedule_on(
        &mut self,
        sched: &mut Scheduler,
        core: u32,
        now: Nanos,
        tenants: &TenantView<'_>,
    ) -> Option<ThreadId>;
}

/// Default: defer entirely to the OS scheduler's policy. Bit-identical to
/// the pre-seam pipeline.
#[derive(Debug, Default)]
pub struct PassthroughScheduler;

impl TenantScheduler for PassthroughScheduler {
    fn kind(&self) -> TenantSchedKind {
        TenantSchedKind::Passthrough
    }

    fn schedule_on(
        &mut self,
        sched: &mut Scheduler,
        core: u32,
        now: Nanos,
        _tenants: &TenantView<'_>,
    ) -> Option<ThreadId> {
        sched.schedule_on(core, now)
    }
}

/// Favour the tenant with the fewest attributed SSD accesses so far; fall
/// back to any runnable thread when the favoured tenants have none
/// (work-conserving).
#[derive(Debug, Default)]
pub struct FairShareScheduler;

impl TenantScheduler for FairShareScheduler {
    fn kind(&self) -> TenantSchedKind {
        TenantSchedKind::FairShare
    }

    fn schedule_on(
        &mut self,
        sched: &mut Scheduler,
        core: u32,
        now: Nanos,
        tenants: &TenantView<'_>,
    ) -> Option<ThreadId> {
        let min = tenants
            .counters
            .iter()
            .map(|c| c.ssd_accesses)
            .min()
            .unwrap_or(0);
        let map = tenants.map;
        let counters = tenants.counters;
        sched.schedule_on_filtered(core, now, &mut |tid| {
            counters
                .get(map.tenant_of(tid.0).index())
                .is_none_or(|c| c.ssd_accesses == min)
        })
    }
}

/// Deprioritise tenants whose windowed write-log appends exceed their even
/// share of the log ([`WriteLogPartitions`]); fall back to any runnable
/// thread when every in-quota tenant is busy (work-conserving). Without
/// partition accounting (single-tenant runs before the pipeline wires it
/// up) this is plain passthrough.
#[derive(Debug, Default)]
pub struct QosScheduler;

impl TenantScheduler for QosScheduler {
    fn kind(&self) -> TenantSchedKind {
        TenantSchedKind::Qos
    }

    fn schedule_on(
        &mut self,
        sched: &mut Scheduler,
        core: u32,
        now: Nanos,
        tenants: &TenantView<'_>,
    ) -> Option<ThreadId> {
        let Some(pressure) = tenants.log_pressure else {
            return sched.schedule_on(core, now);
        };
        let map = tenants.map;
        sched.schedule_on_filtered(core, now, &mut |tid| {
            let tenant = map.tenant_of(tid.0).index();
            tenant >= pressure.tenant_count() || !pressure.over_quota(tenant)
        })
    }
}

/// Constructs the scheduler implementing `kind`.
pub fn tenant_scheduler(kind: TenantSchedKind) -> Box<dyn TenantScheduler> {
    match kind {
        TenantSchedKind::Passthrough => Box::new(PassthroughScheduler),
        TenantSchedKind::FairShare => Box::new(FairShareScheduler),
        TenantSchedKind::Qos => Box::new(QosScheduler),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::{SchedPolicy, TenantId};

    fn two_tenant_view(map: &TenantMap, a_accesses: u64, b_accesses: u64) -> Vec<TenantCounters> {
        let mut a = TenantCounters {
            tenant: TenantId(0),
            threads: map.threads_of(TenantId(0)),
            ..TenantCounters::default()
        };
        a.ssd_accesses = a_accesses;
        let mut b = TenantCounters {
            tenant: TenantId(1),
            threads: map.threads_of(TenantId(1)),
            ..TenantCounters::default()
        };
        b.ssd_accesses = b_accesses;
        vec![a, b]
    }

    #[test]
    fn passthrough_matches_plain_scheduler() {
        let map = TenantMap::single(4);
        let counters = vec![TenantCounters::default()];
        let view = TenantView {
            map: &map,
            counters: &counters,
            log_pressure: None,
        };
        let mut a = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        let mut b = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        for _ in 0..4 {
            a.spawn();
            b.spawn();
        }
        let mut ts = PassthroughScheduler;
        for core in 0..4u32 {
            assert_eq!(
                ts.schedule_on(&mut a, core, Nanos::ZERO, &view),
                b.schedule_on(core, Nanos::ZERO),
            );
        }
    }

    #[test]
    fn fair_share_prefers_the_lightest_tenant() {
        // Threads 0,1 belong to tenant 0; threads 2,3 to tenant 1.
        let map = TenantMap::from_fn(4, |t| TenantId(u32::from(t >= 2)));
        let counters = two_tenant_view(&map, 100, 3);
        let view = TenantView {
            map: &map,
            counters: &counters,
            log_pressure: None,
        };
        let mut sched = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        for _ in 0..4 {
            sched.spawn();
        }
        let mut ts = FairShareScheduler;
        let picked = ts
            .schedule_on(&mut sched, 0, Nanos::ZERO, &view)
            .expect("runnable");
        assert!(
            picked.0 >= 2,
            "tenant 1 has fewer SSD accesses; its threads must be favoured"
        );
    }

    #[test]
    fn fair_share_is_work_conserving() {
        let map = TenantMap::from_fn(2, TenantId);
        let counters = two_tenant_view(&map, 50, 0);
        let view = TenantView {
            map: &map,
            counters: &counters,
            log_pressure: None,
        };
        let mut sched = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        sched.spawn();
        sched.spawn();
        // Tenant 1's only thread is already running elsewhere; tenant 0's
        // thread must still be picked rather than idling the core.
        let mut ts = FairShareScheduler;
        let first = ts
            .schedule_on(&mut sched, 0, Nanos::ZERO, &view)
            .expect("runnable");
        assert_eq!(first.0, 1);
        let second = ts
            .schedule_on(&mut sched, 1, Nanos::ZERO, &view)
            .expect("work-conserving fallback");
        assert_eq!(second.0, 0);
    }

    #[test]
    fn qos_deprioritises_the_over_quota_tenant() {
        // Threads 0,1 belong to tenant 0; threads 2,3 to tenant 1.
        let map = TenantMap::from_fn(4, |t| TenantId(u32::from(t >= 2)));
        let counters = two_tenant_view(&map, 0, 0);
        // Tenant 0 hogs the write log: 8 of 10 windowed appends.
        let mut parts = WriteLogPartitions::new(2, 10);
        for _ in 0..8 {
            parts.note_append(0);
        }
        let view = TenantView {
            map: &map,
            counters: &counters,
            log_pressure: Some(&parts),
        };
        let mut sched = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        for _ in 0..4 {
            sched.spawn();
        }
        let mut ts = QosScheduler;
        let picked = ts
            .schedule_on(&mut sched, 0, Nanos::ZERO, &view)
            .expect("runnable");
        assert!(
            picked.0 >= 2,
            "tenant 0 is over its log quota; tenant 1's threads must be favoured"
        );
    }

    #[test]
    fn qos_is_work_conserving_and_passthrough_without_partitions() {
        let map = TenantMap::from_fn(2, TenantId);
        let counters = two_tenant_view(&map, 0, 0);
        // Only tenant 0 has a runnable thread, and it is over quota: the
        // filtered pick must still fall back to it rather than idle.
        let mut parts = WriteLogPartitions::new(2, 10);
        for _ in 0..9 {
            parts.note_append(0);
        }
        let view = TenantView {
            map: &map,
            counters: &counters,
            log_pressure: Some(&parts),
        };
        let mut sched = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        sched.spawn();
        sched.spawn();
        let mut ts = QosScheduler;
        let first = ts
            .schedule_on(&mut sched, 0, Nanos::ZERO, &view)
            .expect("runnable");
        assert_eq!(first.0, 1, "the in-quota tenant goes first");
        let second = ts
            .schedule_on(&mut sched, 1, Nanos::ZERO, &view)
            .expect("work-conserving fallback");
        assert_eq!(second.0, 0);

        // Without partition accounting, qos must match the plain scheduler.
        let no_parts = TenantView {
            map: &map,
            counters: &counters,
            log_pressure: None,
        };
        let mut a = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        let mut b = Scheduler::new(SchedPolicy::RoundRobin, Nanos::new(100), 1);
        for _ in 0..2 {
            a.spawn();
            b.spawn();
        }
        for core in 0..2u32 {
            assert_eq!(
                ts.schedule_on(&mut a, core, Nanos::ZERO, &no_parts),
                b.schedule_on(core, Nanos::ZERO),
            );
        }
    }
}
