//! Per-thread trace execution state.
//!
//! Each application thread replays a bounded synthetic trace. When the
//! coordinated context switch yields a thread in the middle of a memory
//! access (the instruction is squashed, §III-A), the access is *pushed back*
//! so that the thread re-issues it when it is scheduled again, exactly like
//! the replayed instruction of step C4 in Figure 7.

use skybyte_workloads::{TraceGenerator, WorkUnit, WorkloadSpec};

/// The execution state of one thread: its trace generator, its remaining
/// work budget, and an optional access pending re-issue.
#[derive(Debug, Clone)]
pub struct ThreadExecutor {
    generator: TraceGenerator,
    budget: u64,
    issued: u64,
    pending: Option<WorkUnit>,
    reissues: u64,
}

impl ThreadExecutor {
    /// Creates the executor for `thread` of `threads`, limited to `budget`
    /// work units.
    pub fn new(spec: &WorkloadSpec, thread: u32, threads: u32, seed: u64, budget: u64) -> Self {
        ThreadExecutor {
            generator: TraceGenerator::new(spec, thread, threads, seed),
            budget,
            issued: 0,
            pending: None,
            reissues: 0,
        }
    }

    /// The next work unit to execute, or `None` when the trace is finished.
    /// A pushed-back access is returned first (with zero compute, since the
    /// compute burst before it already executed).
    pub fn next_unit(&mut self) -> Option<WorkUnit> {
        if let Some(p) = self.pending.take() {
            return Some(p);
        }
        if self.issued >= self.budget {
            return None;
        }
        self.issued += 1;
        Some(self.generator.next_unit())
    }

    /// Pushes an access back for re-issue after a context switch. The compute
    /// part is zeroed: it has already been accounted.
    pub fn push_back(&mut self, unit: WorkUnit) {
        debug_assert!(self.pending.is_none(), "only one access can be pending");
        self.reissues += 1;
        self.pending = Some(WorkUnit {
            instructions: 0,
            access: unit.access,
        });
    }

    /// Whether the trace is exhausted and nothing is pending.
    pub fn is_finished(&self) -> bool {
        self.pending.is_none() && self.issued >= self.budget
    }

    /// Completed fraction of the work budget.
    pub fn progress(&self) -> f64 {
        if self.budget == 0 {
            1.0
        } else {
            self.issued as f64 / self.budget as f64
        }
    }

    /// Number of accesses re-issued after context switches.
    pub fn reissues(&self) -> u64 {
        self.reissues
    }

    /// Number of work units issued from the generator.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_workloads::WorkloadKind;

    fn exec(budget: u64) -> ThreadExecutor {
        let spec = WorkloadKind::Ycsb.spec().scaled_to(8 << 20);
        ThreadExecutor::new(&spec, 0, 2, 1, budget)
    }

    #[test]
    fn budget_bounds_the_trace() {
        let mut e = exec(5);
        let mut count = 0;
        while e.next_unit().is_some() {
            count += 1;
        }
        assert_eq!(count, 5);
        assert!(e.is_finished());
        assert_eq!(e.progress(), 1.0);
        assert_eq!(e.issued(), 5);
    }

    #[test]
    fn push_back_reissues_the_same_access_without_compute() {
        let mut e = exec(3);
        let first = e.next_unit().unwrap();
        e.push_back(first);
        let reissued = e.next_unit().unwrap();
        assert_eq!(reissued.access, first.access);
        assert_eq!(reissued.instructions, 0);
        assert_eq!(e.reissues(), 1);
        // The re-issue does not consume budget.
        let mut remaining = 0;
        while e.next_unit().is_some() {
            remaining += 1;
        }
        assert_eq!(remaining, 2);
    }

    #[test]
    fn pending_access_defers_finish() {
        let mut e = exec(1);
        let u = e.next_unit().unwrap();
        assert!(!e.is_finished() || e.pending.is_none());
        e.push_back(u);
        assert!(!e.is_finished());
        assert!(e.next_unit().is_some());
        assert!(e.next_unit().is_none());
        assert!(e.is_finished());
    }

    #[test]
    fn zero_budget_is_immediately_finished() {
        let mut e = exec(0);
        assert!(e.next_unit().is_none());
        assert!(e.is_finished());
        assert_eq!(e.progress(), 1.0);
    }
}
