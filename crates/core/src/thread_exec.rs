//! Per-thread trace execution state.
//!
//! Each application thread replays a bounded stream of work units pulled
//! from the simulation's [`TraceSource`] — a live synthetic generator, a
//! recorded `.sbt` trace, or a composition. When the coordinated context
//! switch yields a thread in the middle of a memory access (the instruction
//! is squashed, §III-A), the access is *pushed back* so that the thread
//! re-issues it when it is scheduled again, exactly like the replayed
//! instruction of step C4 in Figure 7.
//!
//! The executor prefetches exactly one unit ahead of execution. That keeps
//! [`is_finished`](ThreadExecutor::is_finished) exact for *finite* sources
//! too (a replayed trace ends when the stream does, a generator when the
//! budget is spent), so the engine observes the same thread-completion
//! instants — and therefore makes the same scheduling decisions — whether
//! it runs live or from a recording.

use skybyte_workloads::{TraceSource, WorkUnit};

/// The execution state of one thread: its stream position, its remaining
/// work budget, and an optional access pending re-issue.
#[derive(Debug, Clone)]
pub struct ThreadExecutor {
    thread: u32,
    budget: u64,
    issued: u64,
    /// Access pending re-issue after a context switch.
    pending: Option<WorkUnit>,
    /// The next unit of the stream, pulled one step ahead.
    prefetched: Option<WorkUnit>,
    reissues: u64,
}

impl ThreadExecutor {
    /// Creates the executor for stream `thread` of `source`, limited to
    /// `budget` work units, and prefetches the first unit.
    ///
    /// # Panics
    ///
    /// Panics if the source fails (I/O error or corruption in a replayed
    /// trace).
    pub fn new(thread: u32, budget: u64, source: &mut dyn TraceSource) -> Self {
        let mut exec = ThreadExecutor {
            thread,
            budget,
            issued: 0,
            pending: None,
            prefetched: None,
            reissues: 0,
        };
        if budget > 0 {
            exec.prefetch(source);
        }
        exec
    }

    fn prefetch(&mut self, source: &mut dyn TraceSource) {
        debug_assert!(self.prefetched.is_none());
        self.prefetched = source
            .next_record(self.thread)
            .unwrap_or_else(|e| panic!("trace source failed on thread {}: {e}", self.thread))
            .map(WorkUnit::from);
    }

    /// The next work unit to execute, or `None` when the trace is finished.
    /// A pushed-back access is returned first (with zero compute, since the
    /// compute burst before it already executed).
    ///
    /// # Panics
    ///
    /// Panics if the source fails while prefetching the successor.
    pub fn next_unit(&mut self, source: &mut dyn TraceSource) -> Option<WorkUnit> {
        if let Some(p) = self.pending.take() {
            return Some(p);
        }
        let unit = self.prefetched.take()?;
        self.issued += 1;
        if self.issued < self.budget {
            self.prefetch(source);
        }
        Some(unit)
    }

    /// Pushes an access back for re-issue after a context switch. The compute
    /// part is zeroed: it has already been accounted.
    pub fn push_back(&mut self, unit: WorkUnit) {
        debug_assert!(self.pending.is_none(), "only one access can be pending");
        self.reissues += 1;
        self.pending = Some(WorkUnit {
            instructions: 0,
            access: unit.access,
        });
    }

    /// Whether the trace is exhausted and nothing is pending. Exact even
    /// for finite sources, thanks to the one-unit prefetch.
    pub fn is_finished(&self) -> bool {
        self.pending.is_none() && self.prefetched.is_none()
    }

    /// Completed fraction of the work budget (1.0 once the stream ended,
    /// even if a finite source ended before the budget).
    pub fn progress(&self) -> f64 {
        if self.budget == 0 || self.is_finished() {
            1.0
        } else {
            self.issued as f64 / self.budget as f64
        }
    }

    /// Number of accesses re-issued after context switches.
    pub fn reissues(&self) -> u64 {
        self.reissues
    }

    /// Number of work units issued from the source.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_workloads::{WorkloadKind, WorkloadSource};

    fn source() -> WorkloadSource {
        let spec = WorkloadKind::Ycsb.spec().scaled_to(8 << 20);
        WorkloadSource::new(&spec, 2, 1)
    }

    #[test]
    fn budget_bounds_the_trace() {
        let mut s = source();
        let mut e = ThreadExecutor::new(0, 5, &mut s);
        let mut count = 0;
        while e.next_unit(&mut s).is_some() {
            count += 1;
        }
        assert_eq!(count, 5);
        assert!(e.is_finished());
        assert_eq!(e.progress(), 1.0);
        assert_eq!(e.issued(), 5);
    }

    #[test]
    fn finite_sources_end_the_trace_before_the_budget() {
        let spec = WorkloadKind::Ycsb.spec().scaled_to(8 << 20);
        let mut live = WorkloadSource::new(&spec, 1, 3);
        let units: Vec<skybyte_workloads::TraceRecord> = (0..4)
            .map(|_| live.next_record(0).unwrap().unwrap())
            .collect();
        let mut replay = skybyte_trace::VecSource::new("finite", vec![units]);
        let mut e = ThreadExecutor::new(0, u64::MAX, &mut replay);
        let mut count = 0;
        while e.next_unit(&mut replay).is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
        assert!(e.is_finished());
        assert_eq!(e.progress(), 1.0);
    }

    #[test]
    fn push_back_reissues_the_same_access_without_compute() {
        let mut s = source();
        let mut e = ThreadExecutor::new(0, 3, &mut s);
        let first = e.next_unit(&mut s).unwrap();
        e.push_back(first);
        let reissued = e.next_unit(&mut s).unwrap();
        assert_eq!(reissued.access, first.access);
        assert_eq!(reissued.instructions, 0);
        assert_eq!(e.reissues(), 1);
        // The re-issue does not consume budget.
        let mut remaining = 0;
        while e.next_unit(&mut s).is_some() {
            remaining += 1;
        }
        assert_eq!(remaining, 2);
    }

    #[test]
    fn pending_access_defers_finish() {
        let mut s = source();
        let mut e = ThreadExecutor::new(0, 1, &mut s);
        let u = e.next_unit(&mut s).unwrap();
        assert!(e.is_finished());
        e.push_back(u);
        assert!(!e.is_finished());
        assert!(e.next_unit(&mut s).is_some());
        assert!(e.next_unit(&mut s).is_none());
        assert!(e.is_finished());
    }

    #[test]
    fn finish_is_observable_immediately_after_the_last_unit() {
        // The prefetch makes completion visible without an extra pull —
        // the property that keeps live and replayed scheduling identical.
        let mut s = source();
        let mut e = ThreadExecutor::new(1, 2, &mut s);
        assert!(!e.is_finished());
        let _ = e.next_unit(&mut s).unwrap();
        assert!(!e.is_finished());
        let _ = e.next_unit(&mut s).unwrap();
        assert!(e.is_finished());
    }

    #[test]
    fn zero_budget_is_immediately_finished() {
        let mut s = source();
        let mut e = ThreadExecutor::new(0, 0, &mut s);
        assert!(e.next_unit(&mut s).is_none());
        assert!(e.is_finished());
        assert_eq!(e.progress(), 1.0);
    }
}
