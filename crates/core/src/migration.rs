//! Page migration between the CXL-SSD and host DRAM (§III-C and §VI-H).
//!
//! The *when and what to promote* decision is the [`MigrationTrigger`] seam;
//! the engine owns the mechanism (PLB tracking, CXL page copies, PTE/TLB
//! updates, budget-driven demotion). The paper's promotion policies are the
//! trigger implementations:
//!
//! * [`AdaptiveTrigger`] (SkyByte): the SSD controller tracks per-page access
//!   counts and nominates hot, cache-resident pages; the OS copies them into
//!   its promotion pool, updates the PTE and shoots down the TLB entry. The
//!   Promotion Look-aside Buffer keeps concurrent accesses consistent while
//!   the copy is in flight.
//! * [`TppTrigger`] (SkyByte-CT / -WCT): the OS samples accesses periodically
//!   and promotes pages touched at least twice in a window — less accurate
//!   than the controller's exact counters. The per-period promotion budget
//!   is a policy parameter carried by the trigger's sampler.
//! * [`AstriFlashTrigger`]: the host DRAM acts as an on-demand page cache of
//!   the SSD; every SSD read miss fills the page into host DRAM, evicting on
//!   conflict. The background pass never promotes.
//! * [`DisabledTrigger`]: no migration at all.
//!
//! When the promotion budget is exhausted, a cold page (Linux-style
//! active/inactive reclamation) is evicted back to the SSD first.

use serde::{Deserialize, Serialize};
use skybyte_cpu::HostDram;
use skybyte_cxl::{CxlPort, PromotionLookasideBuffer};
use skybyte_os::{HostMemoryPool, PageTable, PoolDecision, Tlb, TppSampler};
use skybyte_ssd::SsdController;
use skybyte_types::{
    Lpa, MigrationConfig, MigrationPolicyKind, Nanos, PageNumber, SimConfig, PAGE_SIZE,
};
use std::fmt;

/// Counters of migration activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Invocations of the background promotion policy ([`MigrationEngine::run`]).
    pub runs: u64,
    /// Pages promoted from the SSD to host DRAM.
    pub promotions: u64,
    /// Pages evicted from host DRAM back to the SSD.
    pub demotions: u64,
    /// Promotions skipped because the PLB was full.
    pub plb_stalls: u64,
    /// TLB shootdowns issued for PTE updates.
    pub tlb_shootdowns: u64,
}

/// Everything the migration engine needs to touch when moving a page.
pub struct MigrationContext<'a> {
    /// The SSD controller (source/sink of migrated pages).
    pub ssd: &'a mut SsdController,
    /// The OS page table.
    pub page_table: &'a mut PageTable,
    /// The (shared) TLB model.
    pub tlb: &'a mut Tlb,
    /// The CXL link carrying the page copies.
    pub port: &'a mut CxlPort,
    /// Host DRAM receiving promoted pages.
    pub host_dram: &'a mut HostDram,
}

/// The *decision* half of page migration: when the background pass runs,
/// which page (if any) should move to host DRAM, and whether SSD read misses
/// promote on demand.
///
/// The [`MigrationEngine`] owns the *mechanism* (PLB tracking, CXL copies,
/// PTE/TLB updates, budget-driven demotion) and consults its trigger for the
/// decisions. Implementations are constructed by [`migration_trigger`] from
/// the configured [`MigrationPolicyKind`].
pub trait MigrationTrigger: fmt::Debug {
    /// The policy this trigger implements (drives reporting and the
    /// engine's [`MigrationEngine::policy`] accessor).
    fn kind(&self) -> MigrationPolicyKind;

    /// Observes an access to an SSD-resident page. Only sampling-based
    /// triggers (TPP) need this; the default is a no-op.
    fn record_ssd_access(&mut self, _lpa: Lpa, _now: Nanos) {}

    /// Nominates at most one page for promotion on a background run.
    fn background_candidate(&mut self, now: Nanos, ssd: &mut SsdController) -> Option<Lpa>;

    /// Whether SSD read misses should be promoted on demand (AstriFlash's
    /// page-cache semantics). Defaults to `false`.
    fn promotes_on_demand(&self) -> bool {
        false
    }
}

/// SkyByte's adaptive policy: defer to the SSD controller's hotness tracker,
/// which nominates hot cache-resident pages (§III-C).
#[derive(Debug, Default)]
pub struct AdaptiveTrigger;

impl MigrationTrigger for AdaptiveTrigger {
    fn kind(&self) -> MigrationPolicyKind {
        MigrationPolicyKind::Adaptive
    }

    fn background_candidate(&mut self, _now: Nanos, ssd: &mut SsdController) -> Option<Lpa> {
        ssd.promotion_candidate()
    }
}

/// OS-level TPP sampling: promote pages touched at least twice in a sampling
/// window, up to the per-period budget the sampler was configured with.
#[derive(Debug)]
pub struct TppTrigger {
    sampler: TppSampler,
}

impl TppTrigger {
    /// Builds the trigger with the sampling period and per-period promotion
    /// budget from `cfg` (`tpp_promotions_per_period` is the policy's budget
    /// parameter).
    pub fn new(cfg: &MigrationConfig) -> Self {
        TppTrigger {
            sampler: TppSampler::new(cfg),
        }
    }
}

impl MigrationTrigger for TppTrigger {
    fn kind(&self) -> MigrationPolicyKind {
        MigrationPolicyKind::Tpp
    }

    fn record_ssd_access(&mut self, lpa: Lpa, now: Nanos) {
        self.sampler.record_access(lpa, now);
    }

    fn background_candidate(&mut self, now: Nanos, _ssd: &mut SsdController) -> Option<Lpa> {
        self.sampler.roll_window(now);
        self.sampler.take_candidate()
    }
}

/// AstriFlash: host DRAM is an on-demand page cache of the SSD — every read
/// miss fills, the background pass never promotes.
#[derive(Debug, Default)]
pub struct AstriFlashTrigger;

impl MigrationTrigger for AstriFlashTrigger {
    fn kind(&self) -> MigrationPolicyKind {
        MigrationPolicyKind::AstriFlash
    }

    fn background_candidate(&mut self, _now: Nanos, _ssd: &mut SsdController) -> Option<Lpa> {
        None
    }

    fn promotes_on_demand(&self) -> bool {
        true
    }
}

/// No migration at all.
#[derive(Debug, Default)]
pub struct DisabledTrigger;

impl MigrationTrigger for DisabledTrigger {
    fn kind(&self) -> MigrationPolicyKind {
        MigrationPolicyKind::Disabled
    }

    fn background_candidate(&mut self, _now: Nanos, _ssd: &mut SsdController) -> Option<Lpa> {
        None
    }
}

/// Constructs the trigger implementing `policy`, parameterised by `cfg`.
pub fn migration_trigger(
    policy: MigrationPolicyKind,
    cfg: &MigrationConfig,
) -> Box<dyn MigrationTrigger> {
    match policy {
        MigrationPolicyKind::Adaptive => Box::new(AdaptiveTrigger),
        MigrationPolicyKind::Tpp => Box::new(TppTrigger::new(cfg)),
        MigrationPolicyKind::AstriFlash => Box::new(AstriFlashTrigger),
        MigrationPolicyKind::Disabled => Box::new(DisabledTrigger),
    }
}

/// The page-migration engine.
#[derive(Debug)]
pub struct MigrationEngine {
    trigger: Box<dyn MigrationTrigger>,
    pool: HostMemoryPool,
    plb: PromotionLookasideBuffer,
    page_copy_overhead: Nanos,
    stats: MigrationStats,
}

impl MigrationEngine {
    /// Creates the engine for the configuration's migration policy and host
    /// DRAM promotion budget.
    pub fn new(cfg: &SimConfig) -> Self {
        let policy = if cfg.promotion_enable {
            cfg.migration.policy
        } else {
            MigrationPolicyKind::Disabled
        };
        MigrationEngine {
            trigger: migration_trigger(policy, &cfg.migration),
            pool: HostMemoryPool::new(cfg.host_dram.promotion_capacity_bytes),
            plb: PromotionLookasideBuffer::new(cfg.migration.plb_entries.max(1)),
            page_copy_overhead: cfg.migration.page_copy_latency,
            stats: MigrationStats::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> MigrationPolicyKind {
        self.trigger.kind()
    }

    /// Whether any migration happens at all.
    pub fn enabled(&self) -> bool {
        self.trigger.kind() != MigrationPolicyKind::Disabled
    }

    /// Whether `lpa` currently resides in host DRAM.
    pub fn is_promoted(&self, lpa: Lpa) -> bool {
        self.pool.contains(lpa)
    }

    /// Number of pages currently promoted.
    pub fn promoted_pages(&self) -> u64 {
        self.pool.resident_pages()
    }

    /// Records an access to a promoted page (maintains the active/inactive
    /// reclamation lists).
    pub fn record_host_access(&mut self, lpa: Lpa) {
        self.pool.record_access(lpa);
    }

    /// Records an access to an SSD-resident page (feeds sampling-based
    /// triggers such as TPP).
    pub fn record_ssd_access(&mut self, lpa: Lpa, now: Nanos) {
        self.trigger.record_ssd_access(lpa, now);
    }

    /// Runs the background promotion policy once: asks the trigger for at
    /// most one candidate and migrates it. Returns the promoted page, if any.
    pub fn run(&mut self, now: Nanos, ctx: &mut MigrationContext<'_>) -> Option<Lpa> {
        self.stats.runs += 1;
        let lpa = self.trigger.background_candidate(now, ctx.ssd)?;
        self.promote_one(lpa, now, ctx)
    }

    /// On-demand fill: promote the page that just missed in SSD DRAM. Called
    /// by the engine on every SSD read miss; a no-op unless the trigger
    /// promotes on demand (AstriFlash).
    pub fn on_demand_fill(
        &mut self,
        lpa: Lpa,
        now: Nanos,
        ctx: &mut MigrationContext<'_>,
    ) -> Option<Lpa> {
        if !self.trigger.promotes_on_demand() {
            return None;
        }
        self.promote_one(lpa, now, ctx)
    }

    /// Migration statistics.
    pub fn stats(&self) -> &MigrationStats {
        &self.stats
    }

    fn promote_one(&mut self, lpa: Lpa, now: Nanos, ctx: &mut MigrationContext<'_>) -> Option<Lpa> {
        if self.pool.contains(lpa) {
            return None;
        }
        if self.plb.is_full() {
            self.stats.plb_stalls += 1;
            return None;
        }
        // Make room, evicting cold pages back to the SSD as needed.
        let frame = loop {
            match self.pool.promote(lpa) {
                PoolDecision::Allocated(frame) => break frame,
                PoolDecision::NeedsEviction(victim) => {
                    if victim == lpa {
                        // Zero-capacity pool: promotion impossible.
                        return None;
                    }
                    self.demote_one(victim, now, ctx);
                }
            }
        };

        // Track the in-flight copy in the PLB, copy the page over the CXL
        // link into host DRAM, then finalise PTE/TLB state.
        let source = PageNumber(lpa.index());
        let _ = self.plb.begin(source, frame);
        let copy_arrival = ctx.port.deliver_payload(now, PAGE_SIZE as u64);
        let copy_done = ctx.host_dram.transfer(copy_arrival, PAGE_SIZE as u64);
        for cl in 0..64u8 {
            self.plb.mark_migrated(source, cl);
        }
        self.plb.complete(source);

        ctx.ssd.promote_page(lpa);
        ctx.page_table.promote(source, frame);
        ctx.tlb.shootdown(source);
        self.stats.tlb_shootdowns += 1;
        self.stats.promotions += 1;
        let _ = copy_done + self.page_copy_overhead;
        Some(lpa)
    }

    fn demote_one(&mut self, victim: Lpa, now: Nanos, ctx: &mut MigrationContext<'_>) {
        let vpage = PageNumber(victim.index());
        // Copy the page back over the link and program it through the FTL.
        let copy_arrival = ctx.port.deliver_payload(now, PAGE_SIZE as u64);
        ctx.ssd.demote_page(victim, copy_arrival);
        ctx.page_table.demote(vpage, victim);
        ctx.tlb.shootdown(vpage);
        self.pool.evict(victim);
        self.stats.demotions += 1;
        self.stats.tlb_shootdowns += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::{SsdGeometry, VariantKind, KIB, MIB};

    fn test_setup(variant: VariantKind, host_pages: u64) -> (SimConfig, SsdController) {
        let mut cfg = SimConfig::default().with_variant(variant);
        cfg.ssd.geometry = SsdGeometry {
            channels: 4,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 32,
            page_size_bytes: 4096,
        };
        cfg.ssd.dram.data_cache_bytes = MIB;
        cfg.ssd.dram.write_log_bytes = 64 * KIB;
        cfg.host_dram.promotion_capacity_bytes = host_pages * PAGE_SIZE as u64;
        cfg.migration.hotness_threshold = 2;
        let ssd = SsdController::new(&cfg);
        (cfg, ssd)
    }

    fn full_ctx<'a>(
        ssd: &'a mut SsdController,
        pt: &'a mut PageTable,
        tlb: &'a mut Tlb,
        port: &'a mut CxlPort,
        dram: &'a mut HostDram,
    ) -> MigrationContext<'a> {
        MigrationContext {
            ssd,
            page_table: pt,
            tlb,
            port,
            host_dram: dram,
        }
    }

    #[test]
    fn adaptive_policy_promotes_hot_pages() {
        let (cfg, mut ssd) = test_setup(VariantKind::SkyByteFull, 16);
        let mut engine = MigrationEngine::new(&cfg);
        assert!(engine.enabled());
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(64, Nanos::new(100));
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let mut dram = HostDram::new(&cfg.host_dram);

        // Make page 5 hot in the SSD.
        ssd.precondition([Lpa::new(5)]);
        let mut now = Nanos::ZERO;
        for _ in 0..4 {
            let out = ssd.handle_read(Lpa::new(5), 0, now);
            now = out.ready_at + Nanos::new(50);
        }
        let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
        let promoted = engine.run(now, &mut ctx);
        assert_eq!(promoted, Some(Lpa::new(5)));
        assert!(engine.is_promoted(Lpa::new(5)));
        assert_eq!(engine.stats().promotions, 1);
        assert!(pt.translate(PageNumber(5)).is_host());
        assert_eq!(engine.promoted_pages(), 1);
        // Running again finds no new candidate.
        let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
        assert_eq!(engine.run(now, &mut ctx), None);
    }

    #[test]
    fn budget_exhaustion_demotes_cold_pages() {
        let (cfg, mut ssd) = test_setup(VariantKind::SkyByteFull, 2);
        let mut engine = MigrationEngine::new(&cfg);
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(64, Nanos::new(100));
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let mut dram = HostDram::new(&cfg.host_dram);

        ssd.precondition((0..4).map(Lpa::new));
        let mut now = Nanos::ZERO;
        // Heat pages 0..3 one after another; budget is only 2 pages.
        for p in 0..4u64 {
            for _ in 0..3 {
                let out = ssd.handle_read(Lpa::new(p), 0, now);
                now = out.ready_at + Nanos::new(50);
            }
            let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
            engine.run(now, &mut ctx);
        }
        assert!(engine.stats().promotions >= 3);
        assert!(engine.stats().demotions >= 1, "budget must force demotions");
        assert!(engine.promoted_pages() <= 2);
        assert!(engine.stats().tlb_shootdowns >= 4);
    }

    #[test]
    fn astriflash_fills_on_demand_only() {
        let (mut cfg, _) = test_setup(VariantKind::AstriFlashCxl, 8);
        cfg.migration.policy = MigrationPolicyKind::AstriFlash;
        let mut ssd = SsdController::new(&cfg);
        let mut engine = MigrationEngine::new(&cfg);
        assert_eq!(engine.policy(), MigrationPolicyKind::AstriFlash);
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(64, Nanos::new(100));
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let mut dram = HostDram::new(&cfg.host_dram);

        ssd.precondition([Lpa::new(9)]);
        // Background run does nothing for AstriFlash.
        let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
        assert_eq!(engine.run(Nanos::ZERO, &mut ctx), None);
        // An on-demand fill promotes the missed page.
        let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
        let got = engine.on_demand_fill(Lpa::new(9), Nanos::ZERO, &mut ctx);
        assert_eq!(got, Some(Lpa::new(9)));
        assert!(engine.is_promoted(Lpa::new(9)));
    }

    #[test]
    fn disabled_policy_never_promotes() {
        let (cfg, mut ssd) = test_setup(VariantKind::BaseCssd, 8);
        let mut engine = MigrationEngine::new(&cfg);
        assert!(!engine.enabled());
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(64, Nanos::new(100));
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let mut dram = HostDram::new(&cfg.host_dram);
        let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
        assert_eq!(engine.run(Nanos::ZERO, &mut ctx), None);
        assert_eq!(
            engine.on_demand_fill(Lpa::new(1), Nanos::ZERO, &mut ctx),
            None
        );
        assert_eq!(engine.stats().promotions, 0);
    }

    #[test]
    fn tpp_policy_uses_sampler_candidates() {
        let (mut cfg, _) = test_setup(VariantKind::SkyByteCT, 8);
        cfg.migration.tpp_sample_period = Nanos::from_micros(10);
        let mut ssd = SsdController::new(&cfg);
        let mut engine = MigrationEngine::new(&cfg);
        assert_eq!(engine.policy(), MigrationPolicyKind::Tpp);
        let mut pt = PageTable::new();
        let mut tlb = Tlb::new(64, Nanos::new(100));
        let mut port = CxlPort::new(Nanos::new(40), 16 << 30);
        let mut dram = HostDram::new(&cfg.host_dram);

        ssd.precondition([Lpa::new(0)]);
        // Page 0 is sampled by TPP (index 0 % 8 == 0); touch it repeatedly.
        for i in 0..50u64 {
            engine.record_ssd_access(Lpa::new(0), Nanos::new(i * 100));
        }
        let mut ctx = full_ctx(&mut ssd, &mut pt, &mut tlb, &mut port, &mut dram);
        let promoted = engine.run(Nanos::from_micros(50), &mut ctx);
        assert_eq!(promoted, Some(Lpa::new(0)));
    }
}
