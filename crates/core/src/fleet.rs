//! The fleet layer: many devices, pluggable tenant placement.
//!
//! SkyByte's deployment setting is pooled CXL-SSD capacity, so above the
//! single-device [`Simulation`](crate::engine::Simulation) sits a *fleet*: a
//! rack of `N` identical devices and a population of tenant demands that some
//! [`PlacementPolicy`] assigns to devices. Each placed device then compiles
//! down to an ordinary multi-tenant [`RunRequest`] (via
//! [`Simulation::build_multi`]), which makes the fleet embarrassingly
//! parallel under the existing memoizing [`Runner`]:
//!
//! * devices run concurrently on the runner's worker pool,
//! * two devices (or two whole placements) that agree on a tenant
//!   composition share one simulation through the memo table — placement is
//!   deliberately invisible to a device's fingerprint,
//! * every tenant also runs its uncontended solo twin (the `--fig mt`
//!   machinery), so [`FleetResult::slowdowns`] measures interference alone,
//!   and the twins of equal-composition devices are memoized too.
//!
//! A [`RebalancePolicy`] closes the loop: between rounds it may migrate
//! tenants using the measured per-tenant slowdowns, and only the devices
//! whose composition actually changed are re-simulated (the rest hit the
//! memo table).
//!
//! [`audit_fleet`] ties the per-device results back to the fleet totals with
//! five `fleet-*` conservation invariants, mirroring the per-device audit.

use crate::engine::Simulation;
use crate::experiments::{mt_solo_twin, ExperimentTable};
use crate::metrics::SimResult;
use crate::runner::{RunRequest, Runner};
use crate::scale::ExperimentScale;
use serde::{Deserialize, Serialize};
use skybyte_types::{AuditReport, PlacementPolicyKind, RebalancePolicyKind, VariantKind};
use skybyte_workloads::WorkloadKind;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// One tenant's demand on the fleet: what it runs and how much device
/// capacity it claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantDemand {
    /// The workload the tenant runs.
    pub workload: WorkloadKind,
    /// Threads the tenant brings to whichever device it lands on.
    pub threads: u32,
    /// Footprint the tenant claims for placement purposes. Placement packs
    /// these against [`FleetConfig::device_capacity`]; the device simulation
    /// itself divides its scaled footprint evenly among the tenants placed
    /// on it, exactly like every other multi-tenant run.
    pub footprint_bytes: u64,
}

/// A rack of identical devices plus the tenant population to place on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of identical devices in the fleet.
    pub devices: usize,
    /// The design variant every device runs.
    pub variant: VariantKind,
    /// The per-device scale (sizes, budgets, seed) — every device is
    /// identical, so one scale describes the whole rack.
    pub scale: ExperimentScale,
    /// The tenant population, in arrival order (placement tie-breaks are
    /// index-based, so this order is part of the fleet's identity).
    pub tenants: Vec<TenantDemand>,
    /// How tenants are assigned to devices.
    pub placement: PlacementPolicyKind,
    /// How tenants migrate between rounds.
    pub rebalance: RebalancePolicyKind,
    /// Number of measure-then-rebalance rounds (at least 1; with
    /// [`RebalancePolicyKind::Pin`] extra rounds are pure memo hits).
    pub rounds: u32,
}

impl FleetConfig {
    /// A fleet of `devices` identical devices running `variant` at `scale`,
    /// with first-fit placement, pinned tenants and a single round.
    pub fn new(devices: usize, variant: VariantKind, scale: ExperimentScale) -> Self {
        FleetConfig {
            devices,
            variant,
            scale,
            tenants: Vec::new(),
            placement: PlacementPolicyKind::FirstFit,
            rebalance: RebalancePolicyKind::Pin,
            rounds: 1,
        }
    }

    /// Footprint capacity of one device: the scaled workload footprint,
    /// i.e. the demand a device can serve at the scale's intended
    /// footprint : DRAM pressure ratio.
    pub fn device_capacity(&self) -> u64 {
        self.scale.footprint_bytes
    }

    /// Checks the fleet is well-formed: at least one device and one tenant,
    /// every tenant has threads and fits on *some* device, and the total
    /// demand fits in the rack.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("fleet needs at least one device".into());
        }
        if self.tenants.is_empty() {
            return Err("fleet needs at least one tenant".into());
        }
        if self.rounds == 0 {
            return Err("fleet needs at least one round".into());
        }
        let cap = self.device_capacity();
        for (i, t) in self.tenants.iter().enumerate() {
            if t.threads == 0 {
                return Err(format!("tenant {i} has zero threads"));
            }
            if t.footprint_bytes > cap {
                return Err(format!(
                    "tenant {i} demands {} bytes but a device holds {cap}",
                    t.footprint_bytes
                ));
            }
        }
        let total: u64 = self.tenants.iter().map(|t| t.footprint_bytes).sum();
        let rack = cap * self.devices as u64;
        if total > rack {
            return Err(format!(
                "total demand {total} exceeds rack capacity {rack} ({} devices x {cap})",
                self.devices
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Placement policies
// ---------------------------------------------------------------------------

/// A tenant-placement policy: assigns every tenant to a device before any
/// simulation runs.
///
/// `place` returns one device index per tenant (same order as `tenants`).
/// Implementations must be deterministic — ties broken by index — because
/// the assignment feeds device fingerprints and the fleet's byte-stable
/// output. `scores` carries one interference score per tenant (higher =
/// more interference-prone); policies that ignore interference receive the
/// scores anyway and may discard them.
pub trait PlacementPolicy {
    /// Which registry kind this policy implements.
    fn kind(&self) -> PlacementPolicyKind;

    /// Assigns each tenant a device in `0..devices`.
    fn place(
        &self,
        tenants: &[TenantDemand],
        devices: usize,
        capacity: u64,
        scores: &[f64],
    ) -> Vec<usize>;
}

/// First-fit bin packing: tenants in index order, each onto the first device
/// with enough remaining capacity (falling back to the device with the most
/// remaining capacity when none fits — the fleet audit then reports the
/// overflow).
pub struct FirstFitPlacement;

impl PlacementPolicy for FirstFitPlacement {
    fn kind(&self) -> PlacementPolicyKind {
        PlacementPolicyKind::FirstFit
    }

    fn place(
        &self,
        tenants: &[TenantDemand],
        devices: usize,
        capacity: u64,
        _scores: &[f64],
    ) -> Vec<usize> {
        let mut used = vec![0u64; devices];
        tenants
            .iter()
            .map(|t| {
                let d = (0..devices)
                    .find(|&d| used[d] + t.footprint_bytes <= capacity)
                    .unwrap_or_else(|| (0..devices).min_by_key(|&d| used[d]).expect("devices > 0"));
                used[d] += t.footprint_bytes;
                d
            })
            .collect()
    }
}

/// Round-robin: tenant `i` onto device `i mod devices`, ignoring footprints.
pub struct RoundRobinPlacement;

impl PlacementPolicy for RoundRobinPlacement {
    fn kind(&self) -> PlacementPolicyKind {
        PlacementPolicyKind::RoundRobin
    }

    fn place(
        &self,
        tenants: &[TenantDemand],
        devices: usize,
        _capacity: u64,
        _scores: &[f64],
    ) -> Vec<usize> {
        (0..tenants.len()).map(|i| i % devices).collect()
    }
}

/// Interference-aware placement: tenants in decreasing interference-score
/// order (ties by index), each onto the device with the least accumulated
/// score that still has capacity (ties by device index), so the most
/// interference-prone tenants are spread rather than stacked.
pub struct InterferenceAwarePlacement;

impl PlacementPolicy for InterferenceAwarePlacement {
    fn kind(&self) -> PlacementPolicyKind {
        PlacementPolicyKind::InterferenceAware
    }

    fn place(
        &self,
        tenants: &[TenantDemand],
        devices: usize,
        capacity: u64,
        scores: &[f64],
    ) -> Vec<usize> {
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        // Sort by score descending, index ascending: total order, so the
        // placement is deterministic for any score vector.
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut used = vec![0u64; devices];
        let mut load = vec![0f64; devices];
        let mut assignment = vec![0usize; tenants.len()];
        for i in order {
            let fits = |d: &usize| used[*d] + tenants[i].footprint_bytes <= capacity;
            let candidates: Vec<usize> = (0..devices).filter(|d| fits(d)).collect();
            let pool = if candidates.is_empty() {
                (0..devices).collect()
            } else {
                candidates
            };
            let d = pool
                .into_iter()
                .min_by(|&a, &b| {
                    load[a]
                        .partial_cmp(&load[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                })
                .expect("devices > 0");
            used[d] += tenants[i].footprint_bytes;
            load[d] += scores[i];
            assignment[i] = d;
        }
        assignment
    }
}

/// Resolves a placement kind to its implementation.
pub fn placement_policy(kind: PlacementPolicyKind) -> Box<dyn PlacementPolicy> {
    match kind {
        PlacementPolicyKind::FirstFit => Box::new(FirstFitPlacement),
        PlacementPolicyKind::RoundRobin => Box::new(RoundRobinPlacement),
        PlacementPolicyKind::InterferenceAware => Box::new(InterferenceAwarePlacement),
    }
}

// ---------------------------------------------------------------------------
// Rebalance policies
// ---------------------------------------------------------------------------

/// A cross-device rebalance policy: given the measured per-tenant slowdowns
/// of one round, produces the assignment for the next round.
///
/// Like placement, implementations must be deterministic with index-based
/// tie-breaks.
pub trait RebalancePolicy {
    /// Which registry kind this policy implements.
    fn kind(&self) -> RebalancePolicyKind;

    /// Returns the next round's assignment (one device index per tenant).
    fn rebalance(
        &self,
        assignment: &[usize],
        tenants: &[TenantDemand],
        devices: usize,
        capacity: u64,
        slowdowns: &[f64],
    ) -> Vec<usize>;
}

/// Never move a tenant after initial placement.
pub struct PinRebalance;

impl RebalancePolicy for PinRebalance {
    fn kind(&self) -> RebalancePolicyKind {
        RebalancePolicyKind::Pin
    }

    fn rebalance(
        &self,
        assignment: &[usize],
        _tenants: &[TenantDemand],
        _devices: usize,
        _capacity: u64,
        _slowdowns: &[f64],
    ) -> Vec<usize> {
        assignment.to_vec()
    }
}

/// Move the tenant with the worst measured slowdown to the device with the
/// lowest mean slowdown that can hold it (empty devices count as mean 0, so
/// spare devices absorb the victim first). If no other device has room, the
/// assignment is unchanged.
pub struct SwapWorstRebalance;

impl RebalancePolicy for SwapWorstRebalance {
    fn kind(&self) -> RebalancePolicyKind {
        RebalancePolicyKind::SwapWorst
    }

    fn rebalance(
        &self,
        assignment: &[usize],
        tenants: &[TenantDemand],
        devices: usize,
        capacity: u64,
        slowdowns: &[f64],
    ) -> Vec<usize> {
        let mut next = assignment.to_vec();
        // The victim: worst slowdown, ties by lowest tenant index.
        let Some(victim) = (0..tenants.len()).max_by(|&a, &b| {
            slowdowns[a]
                .partial_cmp(&slowdowns[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        }) else {
            return next;
        };
        let mut used = vec![0u64; devices];
        let mut sum = vec![0f64; devices];
        let mut count = vec![0usize; devices];
        for (t, &d) in assignment.iter().enumerate() {
            used[d] += tenants[t].footprint_bytes;
            sum[d] += slowdowns[t];
            count[d] += 1;
        }
        let from = assignment[victim];
        let mean = |d: usize| {
            if count[d] == 0 {
                0.0
            } else {
                sum[d] / count[d] as f64
            }
        };
        let target = (0..devices)
            .filter(|&d| d != from && used[d] + tenants[victim].footprint_bytes <= capacity)
            .min_by(|&a, &b| {
                mean(a)
                    .partial_cmp(&mean(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        if let Some(d) = target {
            if mean(d) < mean(from) {
                next[victim] = d;
            }
        }
        next
    }
}

/// Resolves a rebalance kind to its implementation.
pub fn rebalance_policy(kind: RebalancePolicyKind) -> Box<dyn RebalancePolicy> {
    match kind {
        RebalancePolicyKind::Pin => Box::new(PinRebalance),
        RebalancePolicyKind::SwapWorst => Box::new(SwapWorstRebalance),
    }
}

// ---------------------------------------------------------------------------
// Running a fleet
// ---------------------------------------------------------------------------

/// One device's share of a fleet round.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// Global tenant indices placed on this device, ascending.
    pub tenants: Vec<usize>,
    /// The device's simulation result (`None` for an empty device — nothing
    /// to simulate).
    pub result: Option<Arc<SimResult>>,
}

/// The aggregated outcome of a fleet's final round.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// The final tenant → device assignment.
    pub assignment: Vec<usize>,
    /// Per-device outcomes, indexed by device.
    pub devices: Vec<DeviceOutcome>,
    /// Per-tenant slowdown vs the tenant's memoized solo twin (> 1 means
    /// co-location cost the tenant time), indexed like
    /// [`FleetConfig::tenants`].
    pub slowdowns: Vec<f64>,
    /// Per-tenant placement demands (bytes), for capacity auditing.
    pub demands: Vec<u64>,
    /// Per-device footprint capacity (bytes).
    pub capacity: u64,
    /// Fleet-total SSD accesses (sum over devices; audited).
    pub total_ssd_accesses: u64,
    /// Fleet-total retired instructions (sum over devices; audited).
    pub total_instructions: u64,
    /// Fleet-total context switches (sum over devices; audited).
    pub total_context_switches: u64,
}

impl FleetResult {
    /// Number of tenants in the fleet.
    pub fn tenant_count(&self) -> usize {
        self.assignment.len()
    }

    /// The slowdown at quantile `q` in `[0, 1]` (exact order statistic over
    /// the per-tenant slowdowns, upper index on non-integer ranks).
    pub fn slowdown_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.slowdowns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.slowdowns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() - 1) as f64 * q).ceil() as usize;
        sorted[idx]
    }

    /// Jain's fairness index over the per-tenant slowdowns:
    /// `(Σx)² / (n · Σx²)`, 1.0 when every tenant suffers equally, → `1/n`
    /// as one tenant absorbs all the interference.
    pub fn jain_fairness(&self) -> f64 {
        let n = self.slowdowns.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.slowdowns.iter().sum();
        let sq: f64 = self.slowdowns.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (n as f64 * sq)
    }
}

/// The per-device tenant compositions implied by an assignment: for each
/// device, the global tenant indices placed on it, ascending.
pub fn device_groups(assignment: &[usize], devices: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); devices];
    for (t, &d) in assignment.iter().enumerate() {
        groups[d].push(t);
    }
    groups
}

/// Measures each tenant's interference-proneness with the `--fig mt` probe:
/// the tenant's workload co-located 1:1 against the write-heavy tpcc
/// antagonist, divided by its uncontended solo twin. One probe pair runs per
/// *distinct* workload (memoized across tenants and across fleets on the
/// same runner).
pub fn interference_scores(runner: &Runner, cfg: &FleetConfig) -> Vec<f64> {
    let mut uniq: Vec<WorkloadKind> = Vec::new();
    for t in &cfg.tenants {
        if !uniq.contains(&t.workload) {
            uniq.push(t.workload);
        }
    }
    let mut runs = Vec::new();
    for &w in &uniq {
        let pair = [(w, 1), (WorkloadKind::Tpcc, 1)];
        let co = Simulation::build_multi(cfg.variant, &pair, &cfg.scale);
        let slice = co.tenant_slice_bytes();
        runs.push(RunRequest::from_simulation(co));
        runs.push(RunRequest::from_simulation(mt_solo_twin(
            cfg.variant,
            &pair,
            0,
            w,
            1,
            slice,
            &cfg.scale,
        )));
    }
    let results = runner.run_all(&runs);
    let score_of = |w: WorkloadKind| {
        let i = uniq.iter().position(|&u| u == w).expect("probed workload");
        let co = &results[2 * i];
        let solo = &results[2 * i + 1];
        co.per_tenant[0].slowdown_over(&solo.per_tenant[0])
    };
    cfg.tenants.iter().map(|t| score_of(t.workload)).collect()
}

/// Runs one round: compiles each non-empty device down to a multi-tenant
/// [`RunRequest`] plus one solo twin per placed tenant, executes the whole
/// batch through the runner (parallel, memoized), and reads back per-tenant
/// slowdowns.
fn run_round(runner: &Runner, cfg: &FleetConfig, assignment: &[usize]) -> FleetResult {
    let groups = device_groups(assignment, cfg.devices);
    // Enumerate every run up front in a fixed order (device-major, co-located
    // run first, then that device's solo twins) so results map back
    // positionally and output is byte-identical at any parallelism.
    let mut runs = Vec::new();
    let mut compositions: Vec<Vec<(WorkloadKind, u32)>> = Vec::with_capacity(cfg.devices);
    for group in &groups {
        let composition: Vec<(WorkloadKind, u32)> = group
            .iter()
            .map(|&t| (cfg.tenants[t].workload, cfg.tenants[t].threads))
            .collect();
        if !composition.is_empty() {
            let co = Simulation::build_multi(cfg.variant, &composition, &cfg.scale);
            let slice = co.tenant_slice_bytes();
            runs.push(RunRequest::from_simulation(co));
            for (slot, &(workload, threads)) in composition.iter().enumerate() {
                runs.push(RunRequest::from_simulation(mt_solo_twin(
                    cfg.variant,
                    &composition,
                    slot,
                    workload,
                    threads,
                    slice,
                    &cfg.scale,
                )));
            }
        }
        compositions.push(composition);
    }
    let results = runner.run_all(&runs);
    let mut results = results.iter();

    let mut devices = Vec::with_capacity(cfg.devices);
    let mut slowdowns = vec![0.0; cfg.tenants.len()];
    let (mut ssd, mut instr, mut cs) = (0u64, 0u64, 0u64);
    for (d, group) in groups.iter().enumerate() {
        if compositions[d].is_empty() {
            devices.push(DeviceOutcome {
                tenants: group.clone(),
                result: None,
            });
            continue;
        }
        let co = results.next().expect("one co-located result per device");
        for (slot, &tenant) in group.iter().enumerate() {
            let solo = results.next().expect("one solo result per placed tenant");
            slowdowns[tenant] = co.per_tenant[slot].slowdown_over(&solo.per_tenant[0]);
        }
        ssd += co.ssd_accesses;
        instr += co.instructions;
        cs += co.context_switches;
        devices.push(DeviceOutcome {
            tenants: group.clone(),
            result: Some(Arc::clone(co)),
        });
    }
    FleetResult {
        assignment: assignment.to_vec(),
        devices,
        slowdowns,
        demands: cfg.tenants.iter().map(|t| t.footprint_bytes).collect(),
        capacity: cfg.device_capacity(),
        total_ssd_accesses: ssd,
        total_instructions: instr,
        total_context_switches: cs,
    }
}

/// Runs a fleet to completion: place, then `rounds` × (measure, rebalance),
/// returning the final round's [`FleetResult`].
///
/// All simulation goes through `runner`, so devices run in parallel,
/// identical compositions are memoized (within a round, across rounds, and
/// across fleets sharing the runner), and the result is bit-identical at any
/// `jobs` setting.
///
/// # Panics
///
/// Panics if `cfg` fails [`FleetConfig::validate`].
pub fn run_fleet(runner: &Runner, cfg: &FleetConfig) -> FleetResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid FleetConfig: {e}");
    }
    let scores = if cfg.placement == PlacementPolicyKind::InterferenceAware {
        interference_scores(runner, cfg)
    } else {
        vec![0.0; cfg.tenants.len()]
    };
    let mut assignment = placement_policy(cfg.placement).place(
        &cfg.tenants,
        cfg.devices,
        cfg.device_capacity(),
        &scores,
    );
    let mut outcome = run_round(runner, cfg, &assignment);
    for _ in 1..cfg.rounds {
        assignment = rebalance_policy(cfg.rebalance).rebalance(
            &assignment,
            &cfg.tenants,
            cfg.devices,
            cfg.device_capacity(),
            &outcome.slowdowns,
        );
        outcome = run_round(runner, cfg, &assignment);
    }
    outcome
}

// ---------------------------------------------------------------------------
// Fleet audit
// ---------------------------------------------------------------------------

/// Audits a [`FleetResult`] against the five `fleet-*` invariants that tie
/// per-device results to fleet totals:
///
/// 1. `fleet-placement-conservation` — the device tenant lists partition the
///    tenant population: every tenant appears on exactly the device the
///    assignment names, and on no other.
/// 2. `fleet-capacity` — each device's placed demand fits its capacity.
/// 3. `fleet-access-conservation` — device SSD accesses, instructions and
///    context switches sum to the fleet totals.
/// 4. `fleet-tenant-attribution` — each simulated device carries exactly one
///    per-tenant entry per placed tenant, and their thread counts sum to the
///    device's thread count.
/// 5. `fleet-slowdown-positive` — one finite, positive slowdown per tenant.
pub fn audit_fleet(r: &FleetResult) -> AuditReport {
    let mut a = AuditReport::new();
    let n = r.tenant_count();

    let mut seen = vec![0usize; n];
    let mut consistent = true;
    for (d, dev) in r.devices.iter().enumerate() {
        for &t in &dev.tenants {
            if t < n {
                seen[t] += 1;
            }
            consistent &= t < n && r.assignment[t] == d;
        }
    }
    a.check(
        "fleet-placement-conservation",
        consistent && seen.iter().all(|&c| c == 1),
        || {
            format!(
                "tenant placement counts {seen:?} (want all 1) or device lists disagree \
                 with assignment {:?}",
                r.assignment
            )
        },
    );

    for (d, dev) in r.devices.iter().enumerate() {
        let placed: u64 = dev.tenants.iter().map(|&t| r.demands[t]).sum();
        a.check("fleet-capacity", placed <= r.capacity, || {
            format!(
                "device {d} holds {placed} bytes of demand but its capacity is {}",
                r.capacity
            )
        });
    }

    let sum = |f: fn(&SimResult) -> u64| -> u64 {
        r.devices
            .iter()
            .filter_map(|d| d.result.as_deref())
            .map(f)
            .sum()
    };
    let (ssd, instr, cs) = (
        sum(|s| s.ssd_accesses),
        sum(|s| s.instructions),
        sum(|s| s.context_switches),
    );
    a.check(
        "fleet-access-conservation",
        ssd == r.total_ssd_accesses
            && instr == r.total_instructions
            && cs == r.total_context_switches,
        || {
            format!(
                "device sums (ssd {ssd}, instr {instr}, cs {cs}) != fleet totals \
                 (ssd {}, instr {}, cs {})",
                r.total_ssd_accesses, r.total_instructions, r.total_context_switches
            )
        },
    );

    for (d, dev) in r.devices.iter().enumerate() {
        let Some(res) = dev.result.as_deref() else {
            continue;
        };
        let threads: u32 = res.per_tenant.iter().map(|t| t.threads).sum();
        a.check(
            "fleet-tenant-attribution",
            res.per_tenant.len() == dev.tenants.len() && threads == res.threads,
            || {
                format!(
                    "device {d}: {} per-tenant entries for {} placed tenants, \
                     tenant threads {threads} vs device threads {}",
                    res.per_tenant.len(),
                    dev.tenants.len(),
                    res.threads
                )
            },
        );
    }

    a.check(
        "fleet-slowdown-positive",
        r.slowdowns.len() == n && r.slowdowns.iter().all(|s| s.is_finite() && *s > 0.0),
        || {
            format!(
                "slowdowns {:?} (want {n} finite positive values)",
                r.slowdowns
            )
        },
    );

    a
}

// ---------------------------------------------------------------------------
// The fleet figure
// ---------------------------------------------------------------------------

/// The placement policies `figures --fig fleet` sweeps.
pub const FLEET_PLACEMENTS: [PlacementPolicyKind; 3] = PlacementPolicyKind::ALL;

/// The (devices, tenants) grid points of the fleet sweep.
pub const FLEET_GRID: [(usize, usize); 2] = [(4, 64), (16, 256)];

/// The tenant population of a fleet sweep point: `tenants` single-threaded
/// tenants cycling through ycsb / tpcc / bc / srad, each demanding an equal
/// share of the rack (`capacity × devices / tenants` bytes), so a perfect
/// packing fills every device exactly.
pub fn fleet_population(
    scale: &ExperimentScale,
    devices: usize,
    tenants: usize,
) -> Vec<TenantDemand> {
    const MIX: [WorkloadKind; 4] = [
        WorkloadKind::Ycsb,
        WorkloadKind::Tpcc,
        WorkloadKind::Bc,
        WorkloadKind::Srad,
    ];
    let demand = scale.footprint_bytes * devices as u64 / tenants as u64;
    (0..tenants)
        .map(|i| TenantDemand {
            workload: MIX[i % MIX.len()],
            threads: 1,
            footprint_bytes: demand,
        })
        .collect()
}

/// Figure "fleet" (beyond the paper): tail slowdown and fairness across a
/// rack, sweeping placement policy × fleet size.
///
/// Every placement policy runs the same tenant population on the same grid —
/// up to 16 devices × 256 tenants — plus one first-fit + swap-worst row on a
/// deliberately loose 4-device rack (48 tenants leave one device empty, so
/// the rebalance round has somewhere to move the worst tenant). Per row:
///
/// * `p50/p99/p999_slowdown` — order statistics of the per-tenant slowdown
///   vs each tenant's memoized solo twin,
/// * `jain_fairness` — Jain's index over those slowdowns (1 = perfectly
///   even interference),
/// * `worst_dev_p99_ns` / `worst_dev_p999_ns` — the worst per-device access
///   tail latency in the rack.
///
/// Placement is invisible to device fingerprints, so policies that agree on
/// a device's composition share its simulation through the runner's memo
/// table; with `--audit`, every fleet is checked against the `fleet-*`
/// invariants.
pub fn fig_fleet(runner: &Runner, scale: &ExperimentScale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "figure-fleet",
        "Fleet sweep: per-tenant tail slowdown and fairness by placement policy",
        &[
            "devices",
            "tenants",
            "p50_slowdown",
            "p99_slowdown",
            "p999_slowdown",
            "jain_fairness",
            "worst_dev_p99_ns",
            "worst_dev_p999_ns",
        ],
    );
    let mut points: Vec<(String, FleetConfig)> = Vec::new();
    for &placement in &FLEET_PLACEMENTS {
        for &(devices, tenants) in &FLEET_GRID {
            let mut cfg = FleetConfig::new(devices, VariantKind::SkyByteFull, *scale);
            cfg.tenants = fleet_population(scale, devices, tenants);
            cfg.placement = placement;
            points.push((format!("{placement}/{devices}d-{tenants}t"), cfg));
        }
    }
    // The rebalance row: 48 equal tenants first-fit onto a 4-device rack
    // fill three devices and leave the fourth empty; round two moves the
    // worst-slowdown tenant there.
    let mut cfg = FleetConfig::new(4, VariantKind::SkyByteFull, *scale);
    cfg.tenants = fleet_population(scale, 3, 48);
    cfg.rebalance = RebalancePolicyKind::SwapWorst;
    cfg.rounds = 2;
    points.push(("first-fit+swap-worst/4d-48t".to_string(), cfg));

    for (label, cfg) in points {
        let fr = run_fleet(runner, &cfg);
        if runner.audits() {
            audit_fleet(&fr).assert_clean(&format!("fleet {label}"));
        }
        let worst_p99 = fr
            .devices
            .iter()
            .filter_map(|d| d.result.as_deref())
            .map(|r| r.latency_hist.p99().as_nanos())
            .max()
            .unwrap_or(0);
        let worst_p999 = fr
            .devices
            .iter()
            .filter_map(|d| d.result.as_deref())
            .map(|r| r.latency_hist.p999().as_nanos())
            .max()
            .unwrap_or(0);
        t.push(
            label,
            vec![
                cfg.devices as f64,
                fr.tenant_count() as f64,
                fr.slowdown_percentile(0.5),
                fr.slowdown_percentile(0.99),
                fr.slowdown_percentile(0.999),
                fr.jain_fairness(),
                worst_p99 as f64,
                worst_p999 as f64,
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(workload: WorkloadKind, footprint_bytes: u64) -> TenantDemand {
        TenantDemand {
            workload,
            threads: 1,
            footprint_bytes,
        }
    }

    fn tiny_fleet(devices: usize, tenants: usize) -> FleetConfig {
        let scale = ExperimentScale::tiny();
        let mut cfg = FleetConfig::new(devices, VariantKind::SkyByteFull, scale);
        cfg.tenants = fleet_population(&scale, devices, tenants);
        cfg
    }

    #[test]
    fn first_fit_packs_in_index_order() {
        let tenants = vec![
            demand(WorkloadKind::Ycsb, 60),
            demand(WorkloadKind::Tpcc, 50),
            demand(WorkloadKind::Bc, 50),
            demand(WorkloadKind::Srad, 40),
        ];
        let got = FirstFitPlacement.place(&tenants, 3, 100, &[0.0; 4]);
        // 60 -> dev 0; 50 -> dev 1 (0 is too full); 50 -> dev 1; 40 -> dev 0.
        assert_eq!(got, vec![0, 1, 1, 0]);
        // When nothing fits, overflow lands on the emptiest device instead
        // of panicking (the fleet-capacity audit reports it).
        let big = vec![
            demand(WorkloadKind::Ycsb, 90),
            demand(WorkloadKind::Tpcc, 90),
        ];
        assert_eq!(FirstFitPlacement.place(&big, 1, 100, &[0.0; 2]), vec![0, 0]);
    }

    #[test]
    fn round_robin_strides_devices() {
        let tenants = vec![demand(WorkloadKind::Ycsb, 1); 5];
        assert_eq!(
            RoundRobinPlacement.place(&tenants, 3, 100, &[0.0; 5]),
            vec![0, 1, 2, 0, 1]
        );
    }

    #[test]
    fn interference_aware_spreads_hot_tenants() {
        let tenants = vec![demand(WorkloadKind::Ycsb, 10); 4];
        // Two hot tenants (indices 2, 3) must land on different devices.
        let scores = [1.0, 1.0, 5.0, 5.0];
        let got = InterferenceAwarePlacement.place(&tenants, 2, 100, &scores);
        assert_ne!(got[2], got[3], "hot tenants stacked: {got:?}");
        assert_ne!(got[0], got[1], "cold tenants stacked: {got:?}");
    }

    #[test]
    fn swap_worst_moves_the_victim_to_the_calmest_device_with_room() {
        let tenants = vec![
            demand(WorkloadKind::Ycsb, 40),
            demand(WorkloadKind::Tpcc, 40),
            demand(WorkloadKind::Bc, 40),
        ];
        // Device 0 holds tenants 0+1 (suffering), device 1 holds tenant 2,
        // device 2 is empty: the worst tenant (1) moves to the empty device.
        let next = SwapWorstRebalance.rebalance(&[0, 0, 1], &tenants, 3, 100, &[2.0, 3.0, 1.1]);
        assert_eq!(next, vec![0, 2, 1]);
        // Pin never moves anyone.
        let pinned = PinRebalance.rebalance(&[0, 0, 1], &tenants, 3, 100, &[2.0, 3.0, 1.1]);
        assert_eq!(pinned, vec![0, 0, 1]);
    }

    #[test]
    fn validate_rejects_malformed_fleets() {
        let scale = ExperimentScale::tiny();
        let mut cfg = FleetConfig::new(0, VariantKind::SkyByteFull, scale);
        assert!(cfg.validate().is_err(), "zero devices");
        cfg.devices = 1;
        assert!(cfg.validate().is_err(), "no tenants");
        cfg.tenants = vec![demand(WorkloadKind::Ycsb, scale.footprint_bytes + 1)];
        assert!(cfg.validate().is_err(), "tenant bigger than a device");
        cfg.tenants = vec![
            demand(WorkloadKind::Ycsb, scale.footprint_bytes),
            demand(WorkloadKind::Tpcc, scale.footprint_bytes),
        ];
        assert!(cfg.validate().is_err(), "rack overcommitted");
        cfg.devices = 2;
        assert!(cfg.validate().is_ok());
        cfg.tenants[0].threads = 0;
        assert!(cfg.validate().is_err(), "zero threads");
    }

    #[test]
    fn run_fleet_places_everyone_and_audits_clean() {
        let runner = Runner::new(2);
        let cfg = tiny_fleet(2, 4);
        let fr = run_fleet(&runner, &cfg);
        assert_eq!(fr.tenant_count(), 4);
        let report = audit_fleet(&fr);
        assert!(report.is_clean(), "{:?}", report.violations());
        assert!(report.checked_names().len() >= 5);
        assert!(fr.slowdowns.iter().all(|s| *s > 0.0));
        assert!(fr.jain_fairness() > 0.0 && fr.jain_fairness() <= 1.0 + 1e-12);
        // Totals really are the device sums.
        let ssd: u64 = fr
            .devices
            .iter()
            .filter_map(|d| d.result.as_deref())
            .map(|r| r.ssd_accesses)
            .sum();
        assert_eq!(ssd, fr.total_ssd_accesses);
    }

    #[test]
    fn agreeing_placements_hit_the_memo_table() {
        let runner = Runner::new(2);
        // A homogeneous population: first-fit and round-robin disagree on
        // *which* tenants share a device but agree on every device's
        // (workload, threads) composition, so the second fleet re-simulates
        // nothing.
        let scale = ExperimentScale::tiny();
        let mut cfg = FleetConfig::new(2, VariantKind::SkyByteFull, scale);
        cfg.tenants = vec![demand(WorkloadKind::Ycsb, scale.footprint_bytes / 2); 4];
        run_fleet(&runner, &cfg);
        let executed = runner.runs_executed();
        assert!(executed > 0);
        cfg.placement = PlacementPolicyKind::RoundRobin;
        run_fleet(&runner, &cfg);
        assert_eq!(
            runner.runs_executed(),
            executed,
            "equal compositions must be served from the memo table"
        );
        assert!(runner.memo_hits() > 0);
    }

    #[test]
    fn fleet_result_is_identical_across_jobs() {
        let cfg = tiny_fleet(2, 6);
        let a = run_fleet(&Runner::new(1), &cfg);
        let b = run_fleet(&Runner::new(4), &cfg);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.slowdowns, b.slowdowns);
        assert_eq!(a.total_ssd_accesses, b.total_ssd_accesses);
        assert_eq!(a.total_instructions, b.total_instructions);
    }

    fn corrupted(f: impl FnOnce(&mut FleetResult)) -> AuditReport {
        let runner = Runner::new(2);
        let mut fr = run_fleet(&runner, &tiny_fleet(2, 4));
        f(&mut fr);
        audit_fleet(&fr)
    }

    #[test]
    fn audit_catches_placement_corruption() {
        let r = corrupted(|fr| fr.devices[0].tenants.push(1));
        assert!(r.violated("fleet-placement-conservation"), "{r:?}");
    }

    #[test]
    fn audit_catches_capacity_corruption() {
        let r = corrupted(|fr| fr.capacity = 1);
        assert!(r.violated("fleet-capacity"), "{r:?}");
    }

    #[test]
    fn audit_catches_total_corruption() {
        let r = corrupted(|fr| fr.total_ssd_accesses += 1);
        assert!(r.violated("fleet-access-conservation"), "{r:?}");
    }

    #[test]
    fn audit_catches_attribution_corruption() {
        let r = corrupted(|fr| {
            fr.devices[0].tenants.pop();
        });
        // Dropping a placed tenant breaks both the partition and the
        // device's per-tenant attribution.
        assert!(r.violated("fleet-tenant-attribution"), "{r:?}");
        assert!(r.violated("fleet-placement-conservation"), "{r:?}");
    }

    #[test]
    fn audit_catches_slowdown_corruption() {
        let r = corrupted(|fr| fr.slowdowns[0] = f64::NAN);
        assert!(r.violated("fleet-slowdown-positive"), "{r:?}");
    }
}
