//! The system state and access pipeline of the simulation engine.
//!
//! `Simulation::run_loop` used to be a ~280-line monolith that owned every
//! device and counter as loose locals and assumed exactly one workload per
//! run. This module decomposes it into a [`SystemState`] — every simulated
//! component (SSD, CXL port, host DRAM, scheduler, page table, TLB,
//! migration engine, per-core clocks and boundedness) plus all run counters
//! — and a pipeline of composable steps executed once per work unit:
//!
//! 1. [`schedule`](SystemState::schedule) — ensure a thread runs on the
//!    core whose event fired (or advance through idle time); which runnable
//!    thread an empty core picks is the pluggable
//!    [`TenantScheduler`](crate::tenant_sched::TenantScheduler) seam,
//! 2. [`translate`](SystemState::translate) — compute burst, TLB walk and
//!    page-table lookup,
//! 3. [`host_access`](SystemState::host_access) /
//!    [`ssd_access`](SystemState::ssd_access) — resolve the access in host
//!    DRAM or across the CXL port (squashing it on a `SkyByte-Delay`
//!    exception), with background migration between accesses,
//! 4. [`retire`](SystemState::retire) — commit the core clock and detect
//!    thread completion.
//!
//! Every access, squash and latency sample is attributed to the issuing
//! thread's tenant ([`TenantMap`]) at the same points the global counters
//! are bumped, so multi-tenancy is native to the pipeline rather than a
//! post-processing pass: the per-tenant counters and the global counters
//! are two views of one event stream, and the conservation audit ties them
//! together. For a single-tenant source the pipeline performs exactly the
//! operations of the old monolith in the same order — the golden-trace
//! corpus pins that the refactor is behaviour-preserving bit for bit.
//!
//! Passes are sequenced by a discrete-event core ([`crate::event`]): each
//! live core keeps one pending event in a monotone queue, idle cores jump
//! straight to their next wake-up, and cores with no possible wake-up park
//! until scheduler activity elsewhere revives them. The legacy per-step
//! min-clock scan survives as [`SystemState::run_reference`], the
//! executable specification the event engine is property-tested against.

use crate::event::EventQueue;
use crate::metrics::{AmatBreakdown, LayerCounters, RequestBreakdown, SimResult, TenantCounters};
use crate::migration::{MigrationContext, MigrationEngine};
use crate::telemetry::{MetricsSample, Telemetry, TelemetryOutput, SAMPLER_CORE};
use crate::tenant_sched::{tenant_scheduler, TenantScheduler, TenantView};
use crate::thread_exec::ThreadExecutor;
use skybyte_cache::WriteLogPartitions;
use skybyte_cpu::{Boundedness, CoreTimingModel, HostDram};
use skybyte_cxl::CxlPort;
use skybyte_os::{BlockReason, PagePlacement, PageTable, Scheduler, ThreadId, Tlb};
use skybyte_ssd::{ServedBy, SsdController};
use skybyte_types::{LatencyHistogram, Lpa, Nanos, PageNumber, SimConfig, TenantMap};
use skybyte_workloads::{TraceSource, WorkUnit};

/// How often (in SSD accesses, squashed or not) the background migration
/// policy gets a chance to promote a page. Public so the conservation audit
/// can bound `migration_runs` per access window.
pub const MIGRATION_PERIOD_ACCESSES: u64 = 64;

/// The idle fallback quantum: with no pending wake-up at all, an idle core
/// advances its clock in bounded hops of this size (1 µs), exactly as the
/// legacy min-clock loop did. The event engine coalesces runs of such hops
/// — see [`SystemState::unpark`] — but the per-hop accounting is identical.
const IDLE_HOP: Nanos = Nanos::from_micros(1);

/// The outcome of the scheduling step for one core.
enum Scheduled {
    /// A thread runs on the core.
    Run(ThreadId),
    /// No thread was runnable; the core idled forward to the next pending
    /// wake-up (its new clock value).
    Idle,
    /// No thread was runnable and no wake-up is pending anywhere: the core
    /// advanced one bounded [`IDLE_HOP`] and should be parked — every
    /// unfinished thread is running on some other core, so only another
    /// core's scheduler activity can make this one useful again.
    Park,
}

/// What one pipeline pass did, telling the event loop how to re-arm the
/// core's next event.
enum Pass {
    /// The core ran (or finished) a thread; its clock is now this value.
    Advance(Nanos),
    /// The core idled to a known wake-up; its clock is now this value.
    Idle(Nanos),
    /// The core took one idle hop into the void and parked (no re-arm).
    Parked,
    /// The work-unit budget is exhausted: stop the run as truncated.
    Truncated,
}

/// Everything one simulation run owns: the simulated devices, the OS-side
/// models, per-core execution state and every counter the run accumulates —
/// global and per tenant.
pub struct SystemState {
    cfg: SimConfig,
    // Devices and OS models.
    core_model: CoreTimingModel,
    ssd: SsdController,
    port: CxlPort,
    host_dram: HostDram,
    sched: Scheduler,
    tenant_sched: Box<dyn TenantScheduler>,
    // Windowed per-tenant write-log append accounting, maintained only for
    // the `qos` tenant scheduler (None otherwise, so the default pipeline
    // carries no extra state).
    log_partitions: Option<WriteLogPartitions>,
    page_table: PageTable,
    tlb: Tlb,
    migration: MigrationEngine,
    // Per-core and per-thread execution state.
    core_clock: Vec<Nanos>,
    boundedness: Vec<Boundedness>,
    execs: Vec<ThreadExecutor>,
    tenant_map: TenantMap,
    // Global counters.
    amat: AmatBreakdown,
    requests: RequestBreakdown,
    hist: LatencyHistogram,
    instructions: u64,
    // Counts every SSD access, including squashed (context-switched) ones
    // that never reach the classified `requests` breakdown; the migration
    // cadence must advance on those too, otherwise a request total parked on
    // a multiple of the period would re-fire the policy on every access.
    ssd_accesses: u64,
    // Squashed accesses alone: the audit's requests-conservation invariant
    // ties `classified SSD requests + squashed == ssd_accesses`.
    squashed_accesses: u64,
    // Per-tenant attribution, indexed by dense tenant id.
    per_tenant: Vec<TenantCounters>,
    // Work accounting: `units` counts retired work units (every unit pulled
    // from an executor and pushed through the access pipeline, squashed
    // re-issues included). The truncation guard compares it against
    // `max_units` — idle iterations deliberately do not count, so the guard
    // keeps its meaning now that blocked/idle time costs O(events) instead
    // of O(ticks).
    units: u64,
    max_units: u64,
    truncated: bool,
    // Event-engine state: which cores are parked (removed from the event
    // queue because nothing can wake them until another core's scheduler
    // activity), and whether the current pass changed scheduler state
    // (a yield or a thread finish) — the signal that unparks them.
    parked: Vec<bool>,
    parked_count: usize,
    sched_dirty: bool,
    // Observe-only telemetry recorder, allocated only when enabled. Every
    // hook below is gated on this `Option`, so a disabled run pays one
    // branch per pass and nothing else.
    telemetry: Option<Telemetry>,
}

impl SystemState {
    /// Builds the full system for one run: devices from `cfg`, one executor
    /// per thread of `source` (bounded by `per_thread_budget`), the thread →
    /// tenant partition read from the source, and the SSD preconditioned
    /// with `precondition_fraction` of `footprint_pages` so garbage
    /// collection can trigger (§VI-A).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the source's stream count
    /// differs from `cfg.threads`.
    pub(crate) fn new(
        cfg: &SimConfig,
        seed: u64,
        source: &mut dyn TraceSource,
        per_thread_budget: u64,
        footprint_pages: u64,
        precondition_fraction: f64,
        max_units: u64,
    ) -> Self {
        cfg.validate().expect("invalid simulation configuration");
        assert_eq!(
            source.threads(),
            cfg.threads,
            "trace source must provide one stream per configured thread"
        );
        let cores = cfg.cpu.cores as usize;
        let threads = cfg.threads;

        let core_model = CoreTimingModel::new(&cfg.cpu);
        let mut ssd = SsdController::new(cfg);
        let port = CxlPort::new(cfg.ssd.cxl_protocol_latency, cfg.ssd.link_bandwidth_bps);
        let host_dram = HostDram::new(&cfg.host_dram);
        let mut sched = Scheduler::new(cfg.sched_policy, cfg.context_switch_overhead, seed);
        let page_table = PageTable::new();
        let tlb = Tlb::new(cfg.cpu.tlb.entries as usize, cfg.cpu.tlb.miss_latency);
        let migration = MigrationEngine::new(cfg);
        let tenant_map = source.tenant_map();
        let execs: Vec<ThreadExecutor> = (0..threads)
            .map(|t| ThreadExecutor::new(t, per_thread_budget, source))
            .collect();
        for _ in 0..threads {
            sched.spawn();
        }

        // Precondition the SSD so garbage collection can trigger (§VI-A).
        if !cfg.infinite_host_dram {
            let precondition_pages =
                ((footprint_pages as f64 * precondition_fraction) as u64).min(ssd.logical_pages());
            ssd.precondition((0..precondition_pages).map(Lpa::new));
        }

        let per_tenant: Vec<TenantCounters> = (0..tenant_map.tenant_count())
            .map(|i| TenantCounters {
                tenant: skybyte_types::TenantId(i as u32),
                threads: tenant_map.threads_of(skybyte_types::TenantId(i as u32)),
                ..TenantCounters::default()
            })
            .collect();

        let telemetry = cfg.telemetry.enabled.then(|| {
            Telemetry::new(
                cfg.telemetry,
                cfg.cpu.cores,
                ssd.channel_depths().len(),
                per_tenant.len(),
            )
        });

        SystemState {
            cfg: cfg.clone(),
            core_model,
            ssd,
            port,
            host_dram,
            sched,
            tenant_sched: tenant_scheduler(cfg.policy.tenant_sched),
            log_partitions: (cfg.policy.tenant_sched == skybyte_types::TenantSchedKind::Qos).then(
                || {
                    // One window per log fill: the log holds one 64-byte
                    // cacheline entry per 64 bytes of capacity.
                    WriteLogPartitions::new(
                        tenant_map.tenant_count(),
                        cfg.ssd.dram.write_log_bytes / 64,
                    )
                },
            ),
            page_table,
            tlb,
            migration,
            core_clock: vec![Nanos::ZERO; cores],
            boundedness: vec![Boundedness::default(); cores],
            execs,
            tenant_map,
            amat: AmatBreakdown::default(),
            requests: RequestBreakdown::default(),
            hist: LatencyHistogram::new(),
            instructions: 0,
            ssd_accesses: 0,
            squashed_accesses: 0,
            per_tenant,
            units: 0,
            max_units,
            truncated: false,
            parked: vec![false; cores],
            parked_count: 0,
            sched_dirty: false,
            telemetry,
        }
    }

    /// Runs the pipeline until every thread finished (or the work-unit
    /// budget trips, which sets the `truncated` flag on the eventual
    /// result).
    ///
    /// This is the discrete-event loop: each live core has exactly one
    /// pending event — the instant it next becomes actionable — in a
    /// monotone [`EventQueue`] keyed `(time, core, seq)`. Popping the
    /// earliest event is the same pick the old per-step `min_by_key` clock
    /// scan made (lowest clock, lowest core index on ties), so the
    /// schedule order — and therefore every counter, including the
    /// golden-corpus-pinned ones — is bit-identical to
    /// [`SystemState::run_reference`]. Cores with nothing to do and no
    /// pending wake-up are *parked* (their event removed) instead of
    /// re-queued for 1 µs crawl hops; the hops they would have taken are
    /// applied in one closed-form batch when scheduler activity on another
    /// core wakes them — see [`SystemState::unpark`].
    pub(crate) fn run(&mut self, source: &mut dyn TraceSource) {
        let mut queue = EventQueue::new();
        for c in 0..self.core_clock.len() {
            queue.push(self.core_clock[c], c as u32);
        }
        // The telemetry sampler rides the same queue as a sentinel-core
        // event re-armed at its cadence. It cannot reorder real events:
        // each core has at most one pending event, so `(time, core)`
        // already totally orders them, and the sentinel core id sorts
        // after every real core at an equal timestamp — the sampler
        // observes the state *after* all passes at that instant.
        let sample_interval = self
            .telemetry
            .as_ref()
            .map(|tel| tel.config().sample_interval);
        if let Some(interval) = sample_interval {
            queue.push(interval, SAMPLER_CORE);
        }
        let mut last = (Nanos::ZERO, 0usize);
        while !self.sched.all_finished() {
            let ev = queue
                .pop()
                .expect("event queue starved with unfinished threads");
            if ev.core == SAMPLER_CORE {
                // Keep the starvation failure loud: with every real core
                // parked the sampler would otherwise spin the loop forever.
                assert!(
                    self.parked_count < self.core_clock.len(),
                    "event queue starved with unfinished threads"
                );
                let sample = self.collect_sample(ev.time);
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.record_sample(sample);
                }
                let interval = sample_interval.expect("sampler events imply a cadence");
                queue.push(ev.time + interval, SAMPLER_CORE);
                continue;
            }
            let core = ev.core as usize;
            debug_assert_eq!(ev.time, self.core_clock[core]);
            last = (ev.time, core);
            match self.pass(core, ev.time, source) {
                Pass::Advance(next) | Pass::Idle(next) => {
                    queue.push(next, ev.core);
                }
                Pass::Parked => {
                    self.parked[core] = true;
                    self.parked_count += 1;
                }
                Pass::Truncated => {
                    self.truncated = true;
                    break;
                }
            }
            if self.sched_dirty {
                self.sched_dirty = false;
                if self.parked_count > 0 {
                    self.unpark(ev.time, core, Some(&mut queue));
                }
            }
        }
        // A truncated exit can leave cores parked with idle hops still
        // pending (the reference interleaving performed every hop that
        // precedes the final pass); settle them so clocks and idle
        // boundedness match the reference bit for bit.
        if self.parked_count > 0 {
            self.unpark(last.0, last.1, None);
        }
    }

    /// The legacy engine: scan every core's clock per iteration, advance the
    /// laggard, and let idle cores crawl in bounded hops. Kept as the
    /// executable specification the event-driven [`SystemState::run`] is
    /// property-tested against — both share [`SystemState::pass`], so what
    /// this pins is exactly the event ordering (queue + parking vs. scan +
    /// per-tick hops).
    pub(crate) fn run_reference(&mut self, source: &mut dyn TraceSource) {
        while !self.sched.all_finished() {
            let core = (0..self.core_clock.len())
                .min_by_key(|&c| self.core_clock[c])
                .expect("at least one core");
            let now = self.core_clock[core];
            match self.pass(core, now, source) {
                Pass::Truncated => {
                    self.truncated = true;
                    break;
                }
                Pass::Advance(_) | Pass::Idle(_) | Pass::Parked => {}
            }
            self.sched_dirty = false;
        }
    }

    /// One pipeline pass over `core` at time `now`: schedule, pull a unit,
    /// translate, access (host or SSD), retire.
    fn pass(&mut self, core: usize, now: Nanos, source: &mut dyn TraceSource) -> Pass {
        let tid = match self.schedule(core, now) {
            Scheduled::Run(tid) => tid,
            Scheduled::Idle => return Pass::Idle(self.core_clock[core]),
            Scheduled::Park => return Pass::Parked,
        };

        let unit = match self.execs[tid.0 as usize].next_unit(source) {
            Some(u) => u,
            None => {
                self.finish_thread(tid, now);
                return Pass::Advance(now);
            }
        };

        if self.units >= self.max_units {
            return Pass::Truncated;
        }
        self.units += 1;

        let (t, placement) = self.translate(core, tid, &unit, now);
        let t = match placement {
            PagePlacement::HostDram(_) => self.host_access(core, tid, &unit, t),
            PagePlacement::CxlSsd(lpa) => self.ssd_access(core, tid, unit, lpa, t),
        };
        if let Some(tel) = self.telemetry.as_mut() {
            tel.thread_pass(core, tid.0, now, t);
        }
        self.retire(core, tid, t);
        Pass::Advance(t)
    }

    /// Wakes every parked core after scheduler activity during the pass
    /// that ran on `pass_core` at `pass_time`, applying — in one batch —
    /// the 1 µs idle hops the legacy loop interleaved before that pass.
    ///
    /// A core parks only when no thread is runnable or blocked (everything
    /// unfinished is running elsewhere), so until the state change that
    /// triggered this call, the reference loop could do nothing with the
    /// parked core except hop it: each hop advances its clock by
    /// [`IDLE_HOP`], charges the hop to idle boundedness, and counts an
    /// idle pick. A hop with pre-hop clock `t` precedes the pass iff
    /// `t < pass_time`, or `t == pass_time` and the parked core's index is
    /// lower (the scan picks the first minimal clock), which gives the
    /// closed-form hop count below.
    fn unpark(&mut self, pass_time: Nanos, pass_core: usize, queue: Option<&mut EventQueue>) {
        let hop = IDLE_HOP.as_nanos();
        let mut queue = queue;
        for core in 0..self.parked.len() {
            if !self.parked[core] {
                continue;
            }
            self.parked[core] = false;
            self.parked_count -= 1;
            let clock = self.core_clock[core];
            let hops = if clock > pass_time {
                0
            } else {
                let d = pass_time.since(clock).as_nanos();
                if !d.is_multiple_of(hop) {
                    d / hop + 1
                } else {
                    d / hop + u64::from(core < pass_core)
                }
            };
            if hops > 0 {
                let advance = IDLE_HOP * hops;
                self.core_clock[core] += advance;
                self.boundedness[core].idle += advance;
                self.sched.record_idle_picks(hops);
            }
            if let Some(q) = queue.as_deref_mut() {
                q.push(self.core_clock[core], core as u32);
            }
        }
    }

    /// Scheduling step: make sure a thread runs on `core`, or idle the core
    /// forward to the next wake-up.
    ///
    /// A fully blocked core cannot spin: the idle advance moves its clock by
    /// at least 100 ns per pass (and to the earliest blocked wake-up when
    /// one exists), with the idle time accounted in [`Boundedness::idle`].
    fn schedule(&mut self, core: usize, now: Nanos) -> Scheduled {
        let view = TenantView {
            map: &self.tenant_map,
            counters: &self.per_tenant,
            log_pressure: self.log_partitions.as_ref(),
        };
        match self.sched.running_on(core as u32) {
            Some(t) => Scheduled::Run(t),
            None => match self
                .tenant_sched
                .schedule_on(&mut self.sched, core as u32, now, &view)
            {
                Some(t) => Scheduled::Run(t),
                None => match self.sched.next_wakeup() {
                    // Nothing runnable: idle until the next wake-up (never
                    // less than the 100 ns minimum step, the spin guard).
                    Some(w) => {
                        let wake = w.max(now + Nanos::new(100));
                        self.boundedness[core].idle += wake - now;
                        self.core_clock[core] = wake;
                        Scheduled::Idle
                    }
                    // Nothing runnable and nothing blocked either — every
                    // unfinished thread runs on another core. Take one
                    // bounded fallback hop (the legacy idle crawl quantum)
                    // and tell the engine to park this core.
                    None => {
                        let wake = now + IDLE_HOP;
                        self.boundedness[core].idle += wake - now;
                        self.core_clock[core] = wake;
                        Scheduled::Park
                    }
                },
            },
        }
    }

    /// Translation step: account the compute burst, walk the TLB and
    /// resolve the page's placement through the OS page table. Returns the
    /// time the access issues and where it goes.
    fn translate(
        &mut self,
        core: usize,
        tid: ThreadId,
        unit: &WorkUnit,
        now: Nanos,
    ) -> (Nanos, PagePlacement) {
        let tenant = self.tenant_map.tenant_of(tid.0).index();

        // Compute burst.
        let compute = self.core_model.compute_time(unit.instructions);
        self.instructions += unit.instructions;
        self.per_tenant[tenant].instructions += unit.instructions;
        self.boundedness[core].compute += compute;
        self.sched.account_runtime(tid, compute);
        let mut t = now + compute;

        // Address translation.
        let vpage = unit.access.addr.page();
        let walk = self.tlb.access(vpage);
        self.boundedness[core].memory += walk;
        t += walk;
        let placement = if self.cfg.infinite_host_dram {
            PagePlacement::HostDram(PageNumber(vpage.index()))
        } else {
            self.page_table.translate(vpage)
        };
        (t, placement)
    }

    /// Host-DRAM access step: the page is host-resident (or the run models
    /// infinite host DRAM); the access resolves locally and feeds the
    /// migration engine's recency state.
    fn host_access(&mut self, core: usize, tid: ThreadId, unit: &WorkUnit, t: Nanos) -> Nanos {
        let tenant = self.tenant_map.tenant_of(tid.0).index();
        let vpage = unit.access.addr.page();
        let done = self.host_dram.access(t);
        let latency = done - t;
        let stall = self.core_model.effective_stall(latency);
        self.boundedness[core].memory += stall;
        self.sched.account_runtime(tid, stall);
        let t = t + stall;
        self.amat.host_dram += latency;
        self.amat.accesses += 1;
        self.requests.host += 1;
        self.hist.record(latency);
        let counters = &mut self.per_tenant[tenant];
        counters.amat.host_dram += latency;
        counters.amat.accesses += 1;
        counters.requests.host += 1;
        counters.latency_hist.record(latency);
        if !self.cfg.infinite_host_dram {
            self.migration.record_host_access(Lpa::new(vpage.index()));
        }
        t
    }

    /// SSD access step: the access crosses the CXL port to the controller.
    /// A `SkyByte-Delay` hint (with the coordinated context switch enabled)
    /// squashes the access and yields the core; otherwise the access
    /// retires with its full latency classified and attributed. Background
    /// migration runs on its access-count cadence either way.
    fn ssd_access(
        &mut self,
        core: usize,
        tid: ThreadId,
        unit: WorkUnit,
        lpa: Lpa,
        t: Nanos,
    ) -> Nanos {
        let tenant = self.tenant_map.tenant_of(tid.0).index();
        let mut t = t;
        self.ssd_accesses += 1;
        self.per_tenant[tenant].ssd_accesses += 1;
        let cl = unit.access.addr.cacheline_in_page() as u8;
        let arrival = self.port.deliver_request(t);
        // Snapshot the device-activity counters the timeline derives its
        // compaction/GC windows from (deltas across the handle call).
        let device_before = self.telemetry.as_ref().map(|_| {
            (
                self.ssd.stats().compactions,
                self.ssd.ftl_stats().gc_campaigns,
            )
        });
        let appends_before = (self.log_partitions.is_some() && unit.access.kind.is_write())
            .then(|| self.ssd.stats().write_log_appends);
        let outcome = if unit.access.kind.is_write() {
            self.ssd.handle_write(lpa, cl, arrival)
        } else {
            self.ssd.handle_read(lpa, cl, arrival)
        };
        if let Some(before) = appends_before {
            let delta = self.ssd.stats().write_log_appends - before;
            if let Some(parts) = self.log_partitions.as_mut() {
                for _ in 0..delta {
                    parts.note_append(tenant);
                }
            }
        }
        self.migration.record_ssd_access(lpa, t);
        if let Some((compactions_before, gc_before)) = device_before {
            let compactions = self.ssd.stats().compactions;
            let gc = self.ssd.ftl_stats().gc_campaigns;
            let until = self.ssd.compaction_active_until();
            if let Some(tel) = self.telemetry.as_mut() {
                if compactions > compactions_before {
                    tel.compaction_window(arrival, until, compactions - compactions_before);
                }
                if gc > gc_before {
                    tel.gc_campaign(arrival, gc - gc_before);
                }
            }
        }
        let will_switch = outcome.delay_hint && self.cfg.device_triggered_ctx_swt;
        if !will_switch {
            // Squashed accesses are excluded; their replays are classified
            // when they retire (§VI-D).
            let counters = &mut self.per_tenant[tenant];
            if unit.access.kind.is_write() {
                self.requests.ssd_write += 1;
                counters.requests.ssd_write += 1;
            } else if outcome.served_by == ServedBy::Flash {
                self.requests.ssd_read_miss += 1;
                counters.requests.ssd_read_miss += 1;
            } else {
                self.requests.ssd_read_hit += 1;
                counters.requests.ssd_read_hit += 1;
            }
        }

        if will_switch {
            // Long Delay Exception: squash, block, switch.
            self.squashed_accesses += 1;
            let counters = &mut self.per_tenant[tenant];
            counters.squashed_accesses += 1;
            counters.context_switches += 1;
            let cs = self.cfg.context_switch_overhead;
            self.boundedness[core].context_switch += cs;
            self.execs[tid.0 as usize].push_back(unit);
            let wake = outcome.ready_at.max(outcome.estimated_ready_at);
            if let Some(tel) = self.telemetry.as_mut() {
                tel.context_switch(core, t, tid.0, wake);
            }
            self.sched
                .yield_current(core as u32, t, wake, BlockReason::LongSsdAccess);
            // The yield changed scheduler state (a thread became blocked or
            // runnable): parked cores may have something to react to.
            self.sched_dirty = true;
            t += cs;
            // The squashed access is excluded from AMAT (§VI-D).
        } else {
            let response = if unit.access.kind.is_write() {
                // A write completion carries no payload back to the host;
                // it is a response, not a new request.
                self.port.deliver_response(outcome.ready_at)
            } else {
                self.port.deliver_cacheline(outcome.ready_at)
            };
            // Monotone by construction (the port never answers before the
            // request); `since` fails loudly if an accounting bug ever
            // breaks that, instead of the old `saturating_sub` masking it
            // as a zero latency.
            let latency = response.since(t);
            let stall = self.core_model.effective_stall(latency);
            self.boundedness[core].memory += stall;
            self.sched.account_runtime(tid, stall);
            t += stall;
            let cxl = self.cfg.ssd.cxl_protocol_latency * 2;
            self.amat.cxl_protocol += cxl;
            self.amat.indexing += outcome.breakdown.indexing;
            self.amat.ssd_dram += outcome.breakdown.ssd_dram;
            self.amat.flash += outcome.breakdown.flash;
            self.amat.accesses += 1;
            self.hist.record(latency);
            let counters = &mut self.per_tenant[tenant];
            counters.amat.cxl_protocol += cxl;
            counters.amat.indexing += outcome.breakdown.indexing;
            counters.amat.ssd_dram += outcome.breakdown.ssd_dram;
            counters.amat.flash += outcome.breakdown.flash;
            counters.amat.accesses += 1;
            counters.latency_hist.record(latency);

            if outcome.served_by == ServedBy::Flash {
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.flash_window(
                        unit.access.kind.is_write(),
                        arrival,
                        outcome.ready_at,
                        outcome.breakdown.indexing,
                        outcome.breakdown.ssd_dram,
                        outcome.breakdown.flash,
                    );
                }
                let mut ctx = MigrationContext {
                    ssd: &mut self.ssd,
                    page_table: &mut self.page_table,
                    tlb: &mut self.tlb,
                    port: &mut self.port,
                    host_dram: &mut self.host_dram,
                };
                self.migration.on_demand_fill(lpa, t, &mut ctx);
            }
        }

        if self.migration.enabled() && self.ssd_accesses.is_multiple_of(MIGRATION_PERIOD_ACCESSES) {
            let migration_before = self.telemetry.as_ref().map(|_| {
                let s = self.migration.stats();
                (s.promotions, s.demotions)
            });
            let mut ctx = MigrationContext {
                ssd: &mut self.ssd,
                page_table: &mut self.page_table,
                tlb: &mut self.tlb,
                port: &mut self.port,
                host_dram: &mut self.host_dram,
            };
            self.migration.run(t, &mut ctx);
            if let Some((promoted_before, demoted_before)) = migration_before {
                let s = self.migration.stats();
                let (promoted, demoted) =
                    (s.promotions - promoted_before, s.demotions - demoted_before);
                if promoted > 0 || demoted > 0 {
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.migration_event(t, promoted, demoted);
                    }
                }
            }
        }
        t
    }

    /// Retire step: commit the core's clock and finish the thread if its
    /// stream is exhausted.
    fn retire(&mut self, core: usize, tid: ThreadId, t: Nanos) {
        self.core_clock[core] = t;
        if self.execs[tid.0 as usize].is_finished()
            && self.sched.running_on(core as u32) == Some(tid)
        {
            self.finish_thread(tid, t);
        }
    }

    /// Marks `tid` finished and records the instant against its tenant's
    /// completion time (the per-tenant slowdown metric of the interference
    /// experiments).
    fn finish_thread(&mut self, tid: ThreadId, at: Nanos) {
        self.sched.finish_thread(tid);
        // Scheduler state changed: a finish can end the run (or free the
        // last obstacle to it), so parked cores must be settled.
        self.sched_dirty = true;
        let counters = &mut self.per_tenant[self.tenant_map.tenant_of(tid.0).index()];
        counters.finish_time = counters.finish_time.max(at);
    }

    /// Snapshots the observable state into one telemetry metrics sample.
    /// Strictly read-only: this is the periodic sampler's handler body and
    /// must never perturb the simulation.
    fn collect_sample(&self, now: Nanos) -> MetricsSample {
        let cores_running = (0..self.core_clock.len())
            .filter(|&c| self.sched.running_on(c as u32).is_some())
            .count() as u64;
        let runnable_threads = self.sched.runnable_count() as u64;
        let unfinished = self.sched.unfinished_threads() as u64;
        let (write_log_entries, write_log_capacity) =
            self.ssd.write_log_occupancy().unwrap_or((0, 0));
        let cache = self.ssd.data_cache_stats();
        let migration = self.migration.stats();
        MetricsSample {
            time: now,
            cores_running: cores_running as u32,
            cores_parked: self.parked_count as u32,
            runnable_threads,
            blocked_threads: unfinished.saturating_sub(runnable_threads + cores_running),
            channel_depths: self
                .ssd
                .channel_depths()
                .into_iter()
                .map(|d| d as u64)
                .collect(),
            inflight_fills: self.ssd.inflight_fill_count() as u64,
            write_log_entries,
            write_log_capacity,
            write_log_draining: self.ssd.compaction_active(now),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            window_hit_rate: 0.0, // derived by the recorder per window
            pages_promoted: migration.promotions,
            pages_demoted: migration.demotions,
            migration_runs: migration.runs,
            compactions: self.ssd.stats().compactions,
            gc_campaigns: self.ssd.ftl_stats().gc_campaigns,
            flash_pages_programmed: self.ssd.flash_stats().pages_programmed,
            flash_pages_read: self.ssd.flash_stats().pages_read,
            ssd_reads: self.ssd.stats().reads,
            ssd_writes: self.ssd.stats().writes,
            write_log_appends: self.ssd.stats().write_log_appends,
            cxl_requests: self.port.stats().requests,
            ssd_accesses: self.ssd_accesses,
            squashed_accesses: self.squashed_accesses,
            context_switches: self.sched.stats().context_switches,
            per_tenant_accesses: self
                .per_tenant
                .iter()
                .map(|t| t.ssd_accesses + t.requests.host)
                .collect(),
        }
    }

    /// Closes the run: samples the busy-time windows, flushes all dirty
    /// device state, snapshots every layer's counters (including the CXL
    /// port) and assembles the [`SimResult`] labelled `workload_label`.
    pub(crate) fn into_result(self, workload_label: &str) -> SimResult {
        self.into_result_with_telemetry(workload_label).0
    }

    /// [`into_result`](Self::into_result), additionally returning the
    /// telemetry captured over the run (when enabled). The final cumulative
    /// sample is taken at `exec_time` *after* the end-of-run flush, beside
    /// the `layers` snapshot, so the `telemetry-final-agreement` audit
    /// invariant can tie the two exactly. Telemetry never lives on the
    /// [`SimResult`] itself — results stay bit-identical (and goldens
    /// unchanged) whether or not capture was on.
    pub(crate) fn into_result_with_telemetry(
        mut self,
        workload_label: &str,
    ) -> (SimResult, Option<TelemetryOutput>) {
        let exec_time = self
            .core_clock
            .iter()
            .copied()
            .fold(Nanos::ZERO, Nanos::max);
        // Busy-time figures describe the measured window [0, exec_time], so
        // they are sampled *before* the end-of-run flush: service committed
        // to a still-draining backlog (and the flush traffic itself) must
        // not inflate utilisation past the window's physical capacity.
        let flash_busy_time = self.ssd.flash_busy_time_within(exec_time);
        let compaction_time = self.ssd.compaction_time_within(exec_time);
        // Flush all dirty state (cached dirty pages / the write log) so the
        // flash write traffic of page-granular and log-structured designs
        // is compared on equal footing.
        self.ssd.flush_all(exec_time);
        let mut total_boundedness = Boundedness::default();
        for b in &self.boundedness {
            total_boundedness.merge(b);
        }

        // Raw per-layer counters, snapshot after the flush so they describe
        // the complete run (the conservation laws only close once every
        // dirty page and log entry has reached flash).
        let layers = LayerCounters {
            cxl: *self.port.stats(),
            ssd: *self.ssd.stats(),
            flash: *self.ssd.flash_stats(),
            ftl: *self.ssd.ftl_stats(),
            write_log: self.ssd.write_log_stats().copied(),
            write_log_resident_entries: self.ssd.write_log_resident_entries().unwrap_or(0),
            migration: *self.migration.stats(),
        };

        let telemetry = self.telemetry.take().map(|tel| {
            let final_sample = self.collect_sample(exec_time);
            tel.finish(final_sample)
        });

        let result = SimResult {
            variant: self.cfg.variant,
            policy: self.cfg.policy,
            workload: workload_label.to_string(),
            threads: self.cfg.threads,
            cores: self.cfg.cpu.cores,
            exec_time,
            instructions: self.instructions,
            boundedness: total_boundedness,
            amat: self.amat,
            requests: self.requests,
            latency_hist: self.hist,
            flash_pages_programmed: self.ssd.flash_stats().pages_programmed,
            flash_pages_read: self.ssd.flash_stats().pages_read,
            avg_flash_read_latency: self.ssd.flash_stats().avg_read_latency(),
            write_amplification: self.ssd.ftl_stats().write_amplification(),
            context_switches: self.sched.stats().context_switches,
            pages_promoted: self.migration.stats().promotions,
            pages_demoted: self.migration.stats().demotions,
            compactions: self.ssd.stats().compactions,
            compaction_time,
            log_index_bytes: self.ssd.write_log_index_bytes().unwrap_or(0),
            flash_busy_time,
            flash_channels: self.cfg.ssd.geometry.channels,
            gc_campaigns: self.ssd.ftl_stats().gc_campaigns,
            ssd_accesses: self.ssd_accesses,
            squashed_accesses: self.squashed_accesses,
            migration_runs: self.migration.stats().runs,
            truncated: self.truncated,
            layers,
            per_tenant: self.per_tenant,
        };
        (result, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_trace::VecSource;
    use skybyte_types::{TenantId, VariantKind};
    use skybyte_workloads::TraceRecord;

    fn tiny_cfg(threads: u32, cores: u32) -> SimConfig {
        let scale = crate::scale::ExperimentScale::tiny();
        scale
            .apply(SimConfig::default().with_variant(VariantKind::SkyByteC))
            .with_threads(threads)
            .with_cores(cores)
    }

    fn build(cfg: &SimConfig, source: &mut dyn TraceSource, budget: u64) -> SystemState {
        SystemState::new(cfg, 7, source, budget, 1024, 0.8, 1_000_000)
    }

    #[test]
    fn idle_core_advances_to_the_next_wakeup_and_accounts_idle_time() {
        let mut source = VecSource::new("idle", vec![vec![TraceRecord::read(5, 0)]]);
        let cfg = tiny_cfg(1, 1);
        let mut sys = build(&cfg, &mut source, u64::MAX);
        // Block the only thread far in the future, then ask the core for
        // work: the scheduler has nothing runnable, so the core must idle
        // exactly to the wake-up instant — not spin at `now`.
        let tid = sys.sched.schedule_on(0, Nanos::ZERO).expect("runnable");
        let wake = Nanos::from_micros(50);
        sys.sched
            .yield_current(0, Nanos::ZERO, wake, BlockReason::LongSsdAccess);
        assert!(matches!(sys.schedule(0, Nanos::ZERO), Scheduled::Idle));
        assert_eq!(sys.core_clock[0], wake);
        assert_eq!(sys.boundedness[0].idle, wake);
        // At the wake-up the thread is runnable again.
        match sys.schedule(0, wake) {
            Scheduled::Run(t) => assert_eq!(t, tid),
            Scheduled::Idle | Scheduled::Park => panic!("thread must wake at its wake-up time"),
        }
    }

    #[test]
    fn idle_core_with_no_wakeup_falls_back_to_a_bounded_advance() {
        // Two threads, one core: finish neither, just block both without a
        // wake-up in the past. With no blocked thread at all (all finished
        // is handled by the loop), next_wakeup() is None and the core must
        // still advance by the 1 µs fallback instead of spinning.
        let mut source = VecSource::new(
            "idle2",
            vec![
                vec![TraceRecord::read(5, 0)],
                vec![TraceRecord::read(5, 64)],
            ],
        );
        let cfg = tiny_cfg(2, 1);
        let mut sys = build(&cfg, &mut source, u64::MAX);
        // Exhaust both threads' runnability by blocking them.
        for _ in 0..2 {
            let _ = sys.sched.schedule_on(0, Nanos::ZERO).expect("runnable");
            sys.sched.yield_current(
                0,
                Nanos::ZERO,
                Nanos::from_secs(1),
                BlockReason::LongSsdAccess,
            );
        }
        let now = Nanos::ZERO;
        assert!(matches!(sys.schedule(0, now), Scheduled::Idle));
        // The advance lands on the earliest wake-up (1 s), clamped below by
        // the 100 ns minimum step.
        assert_eq!(sys.core_clock[0], Nanos::from_secs(1));
        assert!(sys.boundedness[0].idle >= Nanos::new(100));
    }

    #[test]
    fn idle_advance_is_never_smaller_than_the_minimum_step() {
        // A wake-up in the immediate past must not produce a zero-width
        // idle advance (the spin guard).
        let mut source = VecSource::new("spin", vec![vec![TraceRecord::read(5, 0)]]);
        let cfg = tiny_cfg(1, 1);
        let mut sys = build(&cfg, &mut source, u64::MAX);
        let _ = sys.sched.schedule_on(0, Nanos::ZERO).expect("runnable");
        sys.sched
            .yield_current(0, Nanos::ZERO, Nanos::new(1), BlockReason::LongSsdAccess);
        // Pretend the core clock already passed the wake-up: schedule_on
        // unblocks the thread, so force the idle path by blocking again
        // after consuming the wake-up.
        sys.core_clock[0] = Nanos::new(1_000);
        let tid = sys.sched.schedule_on(0, Nanos::new(1_000)).expect("woken");
        sys.sched.yield_current(
            0,
            Nanos::new(1_000),
            Nanos::new(900), // wake-up already in the past relative to now
            BlockReason::LongSsdAccess,
        );
        // The thread is immediately runnable again (wake <= now), so the
        // core keeps running it rather than idling — no spin either way.
        match sys.schedule(0, Nanos::new(1_000)) {
            Scheduled::Run(t) => assert_eq!(t, tid),
            Scheduled::Idle | Scheduled::Park => {
                assert!(sys.core_clock[0] >= Nanos::new(1_100));
            }
        }
    }

    #[test]
    fn fully_blocked_single_core_run_lands_idle_time_in_boundedness() {
        // End to end: SkyByte-C on one core with one thread squashes long
        // accesses; while the thread is blocked the core has nothing to run
        // and must account genuine idle time (not spin the step counter).
        let scale = crate::scale::ExperimentScale::tiny().with_accesses_per_thread(100);
        let cfg = scale
            .apply(SimConfig::default().with_variant(VariantKind::SkyByteC))
            .with_threads(1)
            .with_cores(1);
        let sim = crate::engine::Simulation::with_config(
            cfg,
            skybyte_workloads::WorkloadKind::Srad,
            &scale,
        );
        let r = sim.run();
        assert!(!r.truncated, "a blocked core must advance, not spin");
        assert!(r.context_switches > 0, "squashes expected under SkyByte-C");
        assert!(
            r.boundedness.idle > Nanos::ZERO,
            "blocked-core time must land in Boundedness::idle"
        );
    }

    #[test]
    fn tenant_counters_are_attributed_by_thread() {
        // Two threads of two different tenants via a stacked source: every
        // counter must land on the issuing thread's tenant.
        use skybyte_trace::{BoxedSource, Tenants};
        let a: BoxedSource = Box::new(VecSource::new(
            "a",
            vec![(0..40).map(|i| TraceRecord::read(5, i * 64)).collect()],
        ));
        let b: BoxedSource = Box::new(VecSource::new(
            "b",
            vec![(0..10)
                .map(|i| TraceRecord::write(5, 4096 + i * 64))
                .collect()],
        ));
        let mut stacked = Tenants::new(vec![a, b]);
        let scale = crate::scale::ExperimentScale::tiny();
        let cfg = scale
            .apply(SimConfig::default().with_variant(VariantKind::BaseCssd))
            .with_threads(2)
            .with_cores(2);
        let mut sys = SystemState::new(&cfg, 7, &mut stacked, u64::MAX, 1024, 0.8, 1_000_000);
        sys.run(&mut stacked);
        let r = sys.into_result("stacked");
        assert_eq!(r.per_tenant.len(), 2);
        assert_eq!(r.per_tenant[0].tenant, TenantId(0));
        assert_eq!(r.per_tenant[1].tenant, TenantId(1));
        assert_eq!(r.per_tenant[0].threads, 1);
        assert_eq!(r.per_tenant[0].accesses(), 40);
        assert_eq!(r.per_tenant[1].accesses(), 10);
        // Tenant 0 only reads, tenant 1 only writes.
        assert_eq!(r.per_tenant[0].requests.ssd_write, 0);
        assert_eq!(
            r.per_tenant[1].requests.ssd_write + r.per_tenant[1].requests.host,
            10
        );
        // Sums close against the global counters.
        assert_eq!(
            r.per_tenant.iter().map(|t| t.accesses()).sum::<u64>(),
            r.requests.total()
        );
        assert_eq!(
            r.per_tenant.iter().map(|t| t.ssd_accesses).sum::<u64>(),
            r.ssd_accesses
        );
        assert!(r.per_tenant.iter().all(|t| t.finish_time <= r.exec_time));
        assert!(r.per_tenant.iter().all(|t| t.finish_time > Nanos::ZERO));
    }

    #[test]
    fn parked_cores_match_the_reference_engine_bit_for_bit() {
        // More cores than threads: whenever the sole thread is running,
        // every other core has nothing runnable and no wake-up to sleep to.
        // The reference loop crawls those cores forward in 1 µs hops; the
        // event engine parks them and settles the hops in closed form. The
        // results — including idle boundedness and exec time, which see
        // every individual hop — must agree exactly.
        let scale = crate::scale::ExperimentScale::tiny().with_accesses_per_thread(300);
        for variant in [VariantKind::BaseCssd, VariantKind::SkyByteFull] {
            let cfg = scale
                .apply(SimConfig::default().with_variant(variant))
                .with_threads(1)
                .with_cores(4);
            let workload = skybyte_workloads::WorkloadKind::Ycsb;
            let event = crate::engine::Simulation::with_config(cfg.clone(), workload, &scale).run();
            let reference =
                crate::engine::Simulation::with_config(cfg, workload, &scale).run_reference();
            assert!(
                event.boundedness.idle > Nanos::ZERO,
                "a 4-core/1-thread run must accumulate idle time"
            );
            assert_eq!(event, reference);
        }
    }

    mod event_vs_reference {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            // The event-driven engine and the legacy min-clock reference
            // must agree on the complete result — every counter, clock and
            // histogram bucket — across random design points: this is what
            // pins that the queue + parking machinery reorders nothing
            // observable.
            #[test]
            fn event_engine_is_result_identical_to_the_reference(
                variant_idx in 0usize..5,
                workload_idx in 0usize..3,
                threads in 1u32..6,
                cores in 1u32..5,
                seed in 0u64..1_000_000,
            ) {
                let variant = [
                    VariantKind::BaseCssd,
                    VariantKind::SkyByteC,
                    VariantKind::SkyByteFull,
                    VariantKind::DramOnly,
                    VariantKind::SkyByteCT,
                ][variant_idx];
                let workload = [
                    skybyte_workloads::WorkloadKind::Tpcc,
                    skybyte_workloads::WorkloadKind::Ycsb,
                    skybyte_workloads::WorkloadKind::Srad,
                ][workload_idx];
                let mut scale =
                    crate::scale::ExperimentScale::tiny().with_accesses_per_thread(120);
                scale.seed = seed;
                let cfg = scale
                    .apply(SimConfig::default().with_variant(variant))
                    .with_threads(threads)
                    .with_cores(cores);
                let event = crate::engine::Simulation::with_config(cfg.clone(), workload, &scale)
                    .run();
                let reference = crate::engine::Simulation::with_config(cfg, workload, &scale)
                    .run_reference();
                prop_assert_eq!(event, reference);
            }
        }
    }
}
